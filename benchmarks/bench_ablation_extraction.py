"""Ablation — function-extraction back-ends.

Not part of the paper's tables, but of its design space: once a partition is
known, ``fA`` / ``fB`` can be synthesised by cofactor-based quantification,
by Craig interpolation from the refutation proof (the Lee–Jiang route the
paper builds on), or by BDD quantification.  This benchmark compares the
three back-ends on the same partition and records their runtimes; all three
must of course produce equivalent, verified decompositions.
"""

import pytest

from harness import emit, format_table
from repro.aig.function import BooleanFunction
from repro.circuits.generators import decomposable_by_construction
from repro.core.checks import RelaxationChecker
from repro.core.extract import extract_functions
from repro.core.mus_partition import mus_find_partition
from repro.core.verify import verify_decomposition
from repro.utils.timer import Stopwatch

METHODS = ["quantification", "interpolation", "bdd"]


def _instance():
    aig, *_ = decomposable_by_construction("or", 4, 4, 2, seed="ablation-extract")
    function = BooleanFunction.from_output(aig, "f")
    checker = RelaxationChecker(function, "or")
    partition = mus_find_partition(checker)
    assert partition is not None
    return function, partition


@pytest.mark.benchmark(group="ablation-extraction")
@pytest.mark.parametrize("method", METHODS)
def test_ablation_extraction_backend(benchmark, method):
    function, partition = _instance()
    fa, fb = benchmark(extract_functions, function, "or", partition, method)
    assert verify_decomposition(function, "or", fa, fb, partition)


@pytest.mark.benchmark(group="ablation-extraction")
def test_ablation_extraction_summary(benchmark):
    """Emit a side-by-side summary of the three extraction back-ends."""
    function, partition = _instance()

    def build_summary() -> str:
        rows = []
        for method in METHODS:
            watch = Stopwatch().start()
            fa, fb = extract_functions(function, "or", partition, method=method)
            elapsed = watch.stop()
            rows.append(
                [
                    method,
                    f"{elapsed * 1000:.2f}",
                    fa.aig.num_ands,
                    fb.aig.num_ands,
                    verify_decomposition(function, "or", fa, fb, partition, raise_on_failure=False),
                ]
            )
        return format_table(
            ["method", "time (ms)", "fA AND-nodes", "fB AND-nodes", "verified"], rows
        )

    table = benchmark(build_summary)
    emit("ablation_extraction_backends", table)
