"""Table III — performance data for OR bi-decomposition.

The paper's Table III reports, per circuit, the number of decomposed
primary outputs (#Dec) and the CPU seconds of each tool: LJH, STEP-MG and
the three QBF engines.  Expected shape (section V.B): STEP-MG is the
fastest engine, the QBF engines are slower than STEP-MG (they pay for
exactness) but generally comparable to or faster than LJH, and all engines
decompose (essentially) the same set of outputs, with LJH occasionally
missing some within the budget.
"""

import pytest

from harness import ALL_ENGINES, SweepConfig, emit, format_table, run_sweep
from repro.core.spec import (
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QB,
    ENGINE_STEP_QD,
    ENGINE_STEP_QDB,
)

CONFIG = SweepConfig(operator="or", engines=ALL_ENGINES)

COLUMNS = [ENGINE_LJH, ENGINE_STEP_MG, ENGINE_STEP_QD, ENGINE_STEP_QB, ENGINE_STEP_QDB]


def _build_table() -> str:
    sweep = run_sweep(CONFIG)
    headers = ["Circuit", "#Out"]
    for engine in COLUMNS:
        headers.append(f"{engine} #Dec")
        headers.append(f"{engine} CPU(s)")
    rows = []
    totals = {engine: [0, 0.0] for engine in COLUMNS}
    for circuit, report in sweep:
        row = [circuit.name, len(report.outputs)]
        for engine in COLUMNS:
            decomposed = report.decomposed_count(engine)
            cpu = report.cpu_seconds(engine)
            totals[engine][0] += decomposed
            totals[engine][1] += cpu
            row.append(decomposed)
            row.append(f"{cpu:.3f}")
        rows.append(row)
    total_row = ["TOTAL", sum(len(r.outputs) for _, r in sweep)]
    for engine in COLUMNS:
        total_row.append(totals[engine][0])
        total_row.append(f"{totals[engine][1]:.3f}")
    rows.append(total_row)
    return format_table(headers, rows)


@pytest.mark.benchmark(group="table3")
def test_table3_performance(benchmark):
    """Regenerate Table III (per-circuit #Dec and CPU per engine)."""
    run_sweep(CONFIG)
    table = benchmark(_build_table)
    emit("table3_performance_or", table)

    sweep = run_sweep(CONFIG)
    total_cpu = {engine: sum(r.cpu_seconds(engine) for _, r in sweep) for engine in COLUMNS}
    total_dec = {
        engine: sum(r.decomposed_count(engine) for _, r in sweep) for engine in COLUMNS
    }
    # Shape assertion 1: the heuristic STEP-MG is faster than every exact QBF
    # engine (the paper's central performance trade-off).  The LJH-is-slowest
    # part of the paper's ordering only materialises on wide-support cones;
    # see test_table3_wide_support_ljh_vs_mg below and EXPERIMENTS.md.
    for engine in (ENGINE_STEP_QD, ENGINE_STEP_QB, ENGINE_STEP_QDB):
        assert total_cpu[ENGINE_STEP_MG] <= total_cpu[engine]
    # Shape assertion 2: the QBF engines decompose at least as many outputs as
    # the heuristic baselines (they are bootstrapped by STEP-MG).
    for engine in (ENGINE_STEP_QD, ENGINE_STEP_QB, ENGINE_STEP_QDB):
        assert total_dec[engine] >= total_dec[ENGINE_STEP_MG]
        assert total_dec[engine] >= total_dec[ENGINE_LJH]


@pytest.mark.benchmark(group="table3")
@pytest.mark.parametrize("engine", [ENGINE_LJH, ENGINE_STEP_MG])
def test_table3_wide_support_ljh_vs_mg(benchmark, engine):
    """Micro-benchmark: the LJH / STEP-MG crossover on a wide-support cone.

    On decomposable cones with many support variables the LJH seed-pair
    search scans quadratically many candidate pairs before its greedy growth
    starts, while STEP-MG derives most of the partition from a linear number
    of core-guided SAT calls; this is the regime behind the paper's
    "LJH is the slowest tool" observation (Table III).
    """
    from repro.aig.function import BooleanFunction
    from repro.circuits.generators import decomposable_by_construction
    from repro.core.engine import BiDecomposer, EngineOptions

    aig, *_ = decomposable_by_construction("or", 6, 6, 2, seed="table3-wide")
    function = BooleanFunction.from_output(aig, "f")
    step = BiDecomposer(
        EngineOptions(extract=False, per_call_timeout=2.0, output_timeout=30.0)
    )

    result = benchmark(step.decompose_function, function, "or", engine)
    assert result.decomposed


@pytest.mark.benchmark(group="table3")
def test_table3_batched_dedup_speedup():
    """Acceptance: dedup + solver hot path give >= 1.5x on duplicated outputs.

    A realistic replicated-logic circuit (one decomposable cone driving six
    primary outputs) is decomposed twice — once with the scheduler's dedup
    cache disabled (the legacy sequential driver) and once enabled.  The
    reports must be fingerprint-identical while the batched run skips five of
    the six partition searches.
    """
    import time

    from repro import Budgets, DecompositionRequest, Parallelism, Session
    from repro.circuits.generators import decomposable_by_construction

    copies = 6
    aig, *_ = decomposable_by_construction("or", 4, 4, 2, seed="table3-dedup")
    root = aig.outputs[0][1]
    for k in range(1, copies):
        aig.add_output(f"f{k}", root)
    engines = (ENGINE_STEP_MG, ENGINE_STEP_QD)

    def run(dedup):
        request = DecompositionRequest(
            circuit=aig,
            operator="or",
            engines=engines,
            budgets=Budgets(per_call=2.0, per_output=60.0),
            parallelism=Parallelism(dedup=dedup),
            extract=False,
        )
        # CPU time, not wall time: immune to machine load, and the dedup win
        # is saved computation.  The cache_hits assertion below anchors the
        # mechanism (5 of 6 searches skipped); the ratio check quantifies it.
        start = time.process_time()  # repro: allow[DET-WALLCLOCK] CPU-time stopwatch measuring the dedup win; never enters a report
        report = Session().run(request)
        return report, time.process_time() - start  # repro: allow[DET-WALLCLOCK] same CPU-time stopwatch as above

    sequential_report, sequential_time = run(dedup=False)
    batched_report, batched_time = run(dedup=True)

    assert sequential_report.fingerprint() == batched_report.fingerprint()
    assert batched_report.schedule["cache_hits"] == copies - 1
    speedup = sequential_time / batched_time
    print(
        f"\ndedup speedup on {copies} duplicated outputs: {speedup:.2f}x "
        f"({sequential_time:.3f}s -> {batched_time:.3f}s CPU)"
    )
    assert speedup >= 1.5


@pytest.mark.benchmark(group="table3")
@pytest.mark.parametrize("engine", COLUMNS)
def test_table3_single_output_runtime(benchmark, engine):
    """Micro-benchmark: per-engine runtime on one representative output."""
    from repro.aig.function import BooleanFunction
    from repro.circuits.generators import mux_tree
    from repro.core.engine import BiDecomposer, EngineOptions

    function = BooleanFunction.from_output(mux_tree(3), "y")
    step = BiDecomposer(
        EngineOptions(extract=False, per_call_timeout=2.0, output_timeout=15.0)
    )

    result = benchmark(step.decompose_function, function, "or", engine)
    assert result.decomposed
