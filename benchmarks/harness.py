"""Shared benchmark harness.

The five benchmark modules (Table I–IV and Figure 1) all consume the same
experiment sweep: every circuit of the benchmark suite is decomposed
per-primary-output by the engines the paper compares.  The sweep is cached
per configuration so that the table benchmarks measure their own aggregation
work while the expensive decomposition runs happen exactly once per session.

Every benchmark writes its reproduced table/figure data to
``benchmarks/results/<name>.txt`` and echoes it to stdout, so a run of
``pytest benchmarks/ --benchmark-only -s`` leaves the full set of reproduced
artefacts on disk.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api import (
    Budgets,
    CachePolicy,
    DecompositionRequest,
    Parallelism,
    Session,
)
from repro.circuits.suites import BenchmarkCircuit, performance_suite, quality_suite
from repro.core.result import CircuitReport
from repro.core.spec import (
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QB,
    ENGINE_STEP_QD,
    ENGINE_STEP_QDB,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

QBF_ENGINES = (ENGINE_STEP_QD, ENGINE_STEP_QB, ENGINE_STEP_QDB)
ALL_ENGINES = (ENGINE_LJH, ENGINE_STEP_MG) + QBF_ENGINES

# Scaled-down counterparts of the paper's budgets (6000 s per circuit, 4 s per
# QBF call) so that the whole benchmark suite runs in minutes on a laptop.
DEFAULT_MAX_OUTPUTS = 4
DEFAULT_OUTPUT_TIMEOUT = 15.0
DEFAULT_PER_CALL_TIMEOUT = 2.0


@dataclass(frozen=True)
class SweepConfig:
    """One experiment sweep: which engines decompose which suite how.

    ``jobs`` and ``dedup`` are forwarded to the batch scheduler
    (:mod:`repro.core.scheduler`); any combination produces
    fingerprint-identical reports, so sweeps cached under one configuration
    remain comparable to sweeps run under another.

    ``cache_dir`` enables the *persistent* cone cache: a second run of the
    same sweep — in this process or a later one — replays every partition
    search it already did from ``<cache_dir>/cone_cache.json``.  It defaults
    to the ``STEP_CACHE_DIR`` environment variable so a benchmark session
    can be made warm-start without touching the table modules.

    ``backend`` picks the execution substrate for ``jobs > 1`` sweeps
    (``serial`` / ``thread`` / ``process``; all fingerprint-identical) and
    defaults to the ``STEP_BACKEND`` environment variable so the CI
    backend-matrix smoke job can steer every benchmark from the outside.
    """

    operator: str = "or"
    engines: Tuple[str, ...] = ALL_ENGINES
    scale: str = "small"
    max_outputs: int = DEFAULT_MAX_OUTPUTS
    output_timeout: float = DEFAULT_OUTPUT_TIMEOUT
    per_call_timeout: float = DEFAULT_PER_CALL_TIMEOUT
    jobs: int = 1
    dedup: bool = True
    cache_dir: Optional[str] = None
    backend: Optional[str] = None


_SWEEP_CACHE: Dict[SweepConfig, List[Tuple[BenchmarkCircuit, CircuitReport]]] = {}


def run_sweep(config: SweepConfig) -> List[Tuple[BenchmarkCircuit, CircuitReport]]:
    """Run (or fetch from cache) the per-output decomposition sweep.

    The whole suite is submitted to one :class:`repro.api.Session`, so with
    ``jobs > 1`` every circuit's outputs are sharded across a *single*
    shared worker pool (cross-circuit load balancing) instead of paying
    pool startup per circuit.  Reports come back in submit order and are
    fingerprint-identical to per-circuit runs.
    """
    if config in _SWEEP_CACHE:
        return _SWEEP_CACHE[config]
    from repro.core.executors import BACKEND_PROCESS

    cache_dir = config.cache_dir or os.environ.get("STEP_CACHE_DIR") or None
    backend = config.backend or os.environ.get("STEP_BACKEND") or BACKEND_PROCESS
    circuits = quality_suite(config.scale)
    requests = [
        DecompositionRequest(
            circuit=circuit.aig,
            operator=config.operator,
            engines=tuple(config.engines),
            budgets=Budgets(
                per_call=config.per_call_timeout,
                per_output=config.output_timeout,
            ),
            parallelism=Parallelism(
                jobs=config.jobs, dedup=config.dedup, backend=backend
            ),
            cache=CachePolicy(directory=cache_dir),
            name=circuit.name,
            max_outputs=config.max_outputs,
            extract=False,
        )
        for circuit in circuits
    ]
    reports = Session().run_suite(requests)
    results = list(zip(circuits, reports))
    _SWEEP_CACHE[config] = results
    return results


def sweep_fingerprint(sweep: List[Tuple[BenchmarkCircuit, CircuitReport]]) -> str:
    """A short stable digest of every report fingerprint in the sweep.

    Cold and warm-cache runs of the same sweep must print the same digest;
    the CI warm-cache smoke job diffs the two.
    """
    import hashlib

    hasher = hashlib.sha256()
    for _, report in sweep:
        hasher.update(repr(report.fingerprint()).encode("utf-8"))
    return hasher.hexdigest()[:16]


# ---------------------------------------------------------------------------
# metric comparison (the "better / equal" percentages of Tables I and II)
# ---------------------------------------------------------------------------


def metric_of(result, metric: str) -> Optional[float]:
    if result is None or not result.decomposed or result.partition is None:
        return None
    if metric == "disjointness":
        return float(result.partition.disjointness)
    if metric == "balancedness":
        return float(result.partition.balancedness)
    if metric == "combined":
        return float(result.partition.disjointness + result.partition.balancedness)
    raise ValueError(metric)


def compare_engines(
    report: CircuitReport, challenger: str, baseline: str, metric: str
) -> Tuple[int, int, int]:
    """Count (challenger better, equal, total comparable POs) for one circuit."""
    better = equal = total = 0
    for output in report.outputs:
        challenger_value = metric_of(output.results.get(challenger), metric)
        baseline_value = metric_of(output.results.get(baseline), metric)
        if challenger_value is None or baseline_value is None:
            continue
        total += 1
        if challenger_value < baseline_value - 1e-9:
            better += 1
        elif abs(challenger_value - baseline_value) <= 1e-9:
            equal += 1
    return better, equal, total


def percentage(part: int, total: int) -> float:
    return 100.0 * part / total if total else 0.0


# ---------------------------------------------------------------------------
# output helpers
# ---------------------------------------------------------------------------


def emit(name: str, text: str) -> str:
    """Write a reproduced table to disk and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"\n{'=' * 78}\n{name}\n{'=' * 78}\n{text}")
    return path


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines) + "\n"
