"""Table IV — percentage of outputs solved to optimality by the QBF engines.

The paper's Table IV reports, over all decomposable primary outputs, the
percentage for which each QBF engine proves its optimum within the per-call
QBF timeout (4 seconds in the paper; scaled here).  Expected shape:
STEP-QB solves the largest fraction (its bound space is easiest), STEP-QD
comes next and STEP-QDB solves the smallest fraction (its combined
cardinality constraints are the hardest), with all three percentages high.
"""

import pytest

from harness import ALL_ENGINES, SweepConfig, emit, format_table, percentage, run_sweep
from repro.core.spec import ENGINE_STEP_QB, ENGINE_STEP_QD, ENGINE_STEP_QDB

CONFIG = SweepConfig(operator="or", engines=ALL_ENGINES)

QBF_COLUMNS = [ENGINE_STEP_QD, ENGINE_STEP_QB, ENGINE_STEP_QDB]


def _solved_statistics():
    sweep = run_sweep(CONFIG)
    stats = {engine: [0, 0] for engine in QBF_COLUMNS}  # [optimum proven, attempted]
    total_outputs = 0
    for _, report in sweep:
        for output in report.outputs:
            total_outputs += 1
            for engine in QBF_COLUMNS:
                result = output.results.get(engine)
                if result is None or not result.decomposed:
                    continue
                stats[engine][1] += 1
                if result.optimum_proven:
                    stats[engine][0] += 1
    return stats, total_outputs


def _build_table() -> str:
    stats, total_outputs = _solved_statistics()
    headers = ["#Out", "Engine", "decomposed", "optimum proven", "solved %"]
    rows = []
    for engine in QBF_COLUMNS:
        solved, attempted = stats[engine]
        rows.append(
            [total_outputs, engine, attempted, solved, f"{percentage(solved, attempted):.2f}"]
        )
    return format_table(headers, rows)


@pytest.mark.benchmark(group="table4")
def test_table4_solved_percentage(benchmark):
    """Regenerate Table IV (percentage of solved POs per QBF engine)."""
    run_sweep(CONFIG)
    table = benchmark(_build_table)
    emit("table4_solved_percentage", table)

    stats, _ = _solved_statistics()
    for engine in QBF_COLUMNS:
        solved, attempted = stats[engine]
        if attempted:
            # The scaled-down circuits should be solved to optimality for the
            # overwhelming majority of outputs (the paper reports 84-98%).
            assert percentage(solved, attempted) >= 80.0


@pytest.mark.benchmark(group="table4")
def test_table4_optimum_proof_runtime(benchmark):
    """Micro-benchmark: proving a disjointness optimum on one output."""
    from repro.aig.function import BooleanFunction
    from repro.circuits.generators import decomposable_by_construction
    from repro.core.checks import RelaxationChecker
    from repro.core.mus_partition import mus_find_partition
    from repro.core.qbf_bidec import qbf_decompose

    aig, *_ = decomposable_by_construction("or", 4, 3, 2, seed="table4")
    function = BooleanFunction.from_output(aig, "f")

    def run():
        checker = RelaxationChecker(function, "or")
        bootstrap = mus_find_partition(checker)
        return qbf_decompose(checker, "disjointness", bootstrap=bootstrap)

    result = benchmark(run)
    assert result.decomposed and result.optimum_proven


def main(argv=None) -> int:
    """Stand-alone smoke entry point (used by CI): ``--quick`` shrinks the sweep.

    The quick mode decomposes two outputs per circuit with STEP-MG + STEP-QD
    only, prints the solved-percentage table and fails (non-zero exit) if no
    output was decomposed at all — a cheap end-to-end check that the whole
    pipeline (generators, scheduler, SAT/QBF engines, reporting) still runs.

    ``--cache-dir DIR`` routes the sweep through the persistent cone cache;
    ``--expect-warm`` additionally fails unless the run replayed at least
    one entry from it.  The CI warm-cache smoke job runs the sweep twice
    with the same directory and diffs the printed ``sweep fingerprint``
    lines, asserting warm == cold results.
    """
    import argparse

    from harness import sweep_fingerprint

    parser = argparse.ArgumentParser(description="Table IV smoke runner")
    parser.add_argument("--quick", action="store_true", help="reduced sweep")
    parser.add_argument(
        "--cache-dir", default=None, help="persistent cone cache directory"
    )
    parser.add_argument(
        "--expect-warm",
        action="store_true",
        help="fail unless the persistent cache produced at least one hit",
    )
    args = parser.parse_args(argv)

    from repro.core.spec import ENGINE_STEP_MG

    config = CONFIG
    if args.quick:
        # Every search on these scaled-down circuits finishes in
        # milliseconds, so the budgets are pure headroom — kept generous
        # because a budget-truncated search is excluded from the
        # fingerprint-identity guarantee, and the warm-cache smoke diffs
        # cold vs warm fingerprints on shared (loaded) CI runners.
        config = SweepConfig(
            operator="or",
            engines=(ENGINE_STEP_MG, ENGINE_STEP_QD),
            max_outputs=2,
            output_timeout=30.0,
            per_call_timeout=4.0,
        )
    if args.cache_dir is not None:
        from dataclasses import replace

        config = replace(config, cache_dir=args.cache_dir)
    sweep = run_sweep(config)
    attempted = decomposed = 0
    for _, report in sweep:
        for output in report.outputs:
            result = output.results.get(ENGINE_STEP_QD)
            if result is None:
                continue
            attempted += 1
            if result.decomposed:
                decomposed += 1
    cache_hits = sum(report.schedule.get("cache_hits", 0) for _, report in sweep)
    persistent_hits = sum(
        report.schedule.get("persistent_hits", 0) for _, report in sweep
    )
    print(
        f"quick sweep: {len(sweep)} circuits, STEP-QD attempted {attempted} "
        f"outputs, decomposed {decomposed}, scheduler cache hits {cache_hits}, "
        f"persistent cache hits {persistent_hits}"
    )
    print(f"sweep fingerprint: {sweep_fingerprint(sweep)}")
    if decomposed == 0:
        print("smoke failure: no output decomposed")
        return 1
    if args.expect_warm and persistent_hits == 0:
        print("smoke failure: expected warm persistent-cache hits, saw none")
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
