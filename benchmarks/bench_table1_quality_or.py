"""Table I — per-circuit quality comparison for OR bi-decomposition.

The paper's Table I reports, for every benchmark circuit, the percentage of
primary outputs on which each QBF engine (STEP-QD on disjointness, STEP-QB
on balancedness, STEP-QDB on their sum) is strictly better than — or equal
to — the two baselines (LJH and STEP-MG).  Expected shape: the QBF engines
are never worse, strictly better on a substantial fraction of outputs, and
the "better" percentages against LJH and against STEP-MG are both non-zero
for most circuits.
"""

import pytest

from harness import (
    ALL_ENGINES,
    SweepConfig,
    compare_engines,
    emit,
    format_table,
    percentage,
    run_sweep,
)
from repro.core.spec import (
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QB,
    ENGINE_STEP_QD,
    ENGINE_STEP_QDB,
)

CONFIG = SweepConfig(operator="or", engines=ALL_ENGINES)

CHALLENGER_METRICS = [
    (ENGINE_STEP_QD, "disjointness"),
    (ENGINE_STEP_QB, "balancedness"),
    (ENGINE_STEP_QDB, "combined"),
]


def _build_table() -> str:
    sweep = run_sweep(CONFIG)
    headers = ["Circuit", "#In", "#InM", "#Out"]
    for baseline in (ENGINE_LJH, ENGINE_STEP_MG):
        for challenger, metric in CHALLENGER_METRICS:
            headers.append(f"{challenger} better% (vs {baseline})")
            headers.append(f"equal% (vs {baseline})")
    rows = []
    for circuit, report in sweep:
        row = [
            circuit.name,
            circuit.num_inputs,
            circuit.max_support,
            len(report.outputs),
        ]
        for baseline in (ENGINE_LJH, ENGINE_STEP_MG):
            for challenger, metric in CHALLENGER_METRICS:
                better, equal, total = compare_engines(report, challenger, baseline, metric)
                if total == 0:
                    # Mirrors the paper's table policy: rows without commonly
                    # decomposed outputs carry no percentage.
                    row.extend(["--", "--"])
                else:
                    row.append(f"{percentage(better, total):.2f}")
                    row.append(f"{percentage(equal, total):.2f}")
        rows.append(row)
    return format_table(headers, rows)


@pytest.mark.benchmark(group="table1")
def test_table1_quality_or(benchmark):
    """Regenerate Table I (quality of OR bi-decomposition partitions)."""
    run_sweep(CONFIG)  # the sweep itself is shared and cached across tables
    table = benchmark(_build_table)
    emit("table1_quality_or", table)

    # Shape assertions from the paper: bootstrapped QBF engines can never be
    # worse than STEP-MG on their own target metric.
    for circuit, report in run_sweep(CONFIG):
        for challenger, metric in CHALLENGER_METRICS:
            better, equal, total = compare_engines(report, challenger, ENGINE_STEP_MG, metric)
            assert better + equal == total, (
                f"{challenger} was worse than STEP-MG on {circuit.name}"
            )


@pytest.mark.benchmark(group="table1")
def test_table1_single_output_quality_gap(benchmark):
    """Micro-benchmark: one exact (STEP-QD) decomposition of one hard output."""
    from repro.aig.function import BooleanFunction
    from repro.circuits.generators import decomposable_by_construction
    from repro.core.checks import RelaxationChecker
    from repro.core.mus_partition import mus_find_partition
    from repro.core.qbf_bidec import qbf_decompose

    aig, *_ = decomposable_by_construction("or", 4, 4, 2, seed="table1")
    function = BooleanFunction.from_output(aig, "f")

    def run():
        checker = RelaxationChecker(function, "or")
        bootstrap = mus_find_partition(checker)
        return qbf_decompose(checker, "disjointness", bootstrap=bootstrap)

    result = benchmark(run)
    assert result.decomposed
