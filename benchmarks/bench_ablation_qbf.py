"""Ablation — QBF back-end and bound-search strategy.

Two of the paper's design choices are isolated here:

* the *specialised* counterexample-guided loop (formula (9) instantiated for
  bi-decomposition, one blocking clause per counterexample) versus the
  *generic* AReQS-style 2QBF solver fed the full matrix circuit; and
* the bound-search strategies of section IV.A.6 — monotonically increasing
  (MI), monotonically decreasing (MD), binary search (Bin) and the hybrid
  default — measured by the number of 2QBF queries they issue until the
  optimum is proven.
"""

import pytest

from harness import emit, format_table
from repro.aig.function import BooleanFunction
from repro.circuits.generators import decomposable_by_construction
from repro.core.checks import RelaxationChecker
from repro.core.mus_partition import mus_find_partition
from repro.core.qbf_bidec import qbf_decompose
from repro.utils.timer import Deadline


def _function():
    aig, *_ = decomposable_by_construction("or", 4, 3, 2, seed="ablation-qbf")
    return BooleanFunction.from_output(aig, "f")


@pytest.mark.benchmark(group="ablation-qbf-backend")
@pytest.mark.parametrize("backend", ["specialised", "generic"])
def test_ablation_qbf_backend(benchmark, backend):
    function = _function()

    def run():
        checker = RelaxationChecker(function, "or")
        bootstrap = mus_find_partition(checker)
        return qbf_decompose(
            checker,
            "disjointness",
            bootstrap=bootstrap,
            per_call_timeout=10.0,
            deadline=Deadline(60.0),
            backend=backend,
        )

    result = benchmark(run)
    assert result.decomposed
    assert result.optimum_proven


@pytest.mark.benchmark(group="ablation-qbf-strategy")
@pytest.mark.parametrize("strategy", ["auto", "mi", "md", "bin"])
def test_ablation_bound_strategy(benchmark, strategy):
    function = _function()

    def run():
        checker = RelaxationChecker(function, "or")
        bootstrap = mus_find_partition(checker)
        return qbf_decompose(
            checker,
            "disjointness",
            bootstrap=bootstrap,
            strategy=strategy,
            per_call_timeout=10.0,
            deadline=Deadline(60.0),
        )

    result = benchmark(run)
    assert result.decomposed and result.optimum_proven


@pytest.mark.benchmark(group="ablation-qbf-strategy")
def test_ablation_strategy_query_counts(benchmark):
    """Emit the number of 2QBF queries each strategy needs on one instance."""
    function = _function()

    def build_summary() -> str:
        rows = []
        for strategy in ("auto", "mi", "md", "bin"):
            checker = RelaxationChecker(function, "or")
            bootstrap = mus_find_partition(checker)
            result = qbf_decompose(
                checker,
                "disjointness",
                bootstrap=bootstrap,
                strategy=strategy,
                per_call_timeout=10.0,
                deadline=Deadline(60.0),
            )
            rows.append(
                [
                    strategy,
                    result.stats.qbf_calls,
                    result.stats.qbf_iterations,
                    result.stats.refinements,
                    str(result.optimum_proven),
                    f"{result.cpu_seconds * 1000:.1f}",
                ]
            )
        return format_table(
            ["strategy", "2QBF queries", "CEGAR iterations", "refinements", "optimum", "time (ms)"],
            rows,
        )

    table = benchmark(build_summary)
    emit("ablation_qbf_strategies", table)
