"""Micro-benchmarks for the CDCL solver's propagation hot path.

These benchmarks exist to quantify the effect of the watcher-list layout
(blocker literals, flattened pair records) and the localized attribute
lookups in :meth:`repro.sat.solver.Solver._propagate`.  They solve random
3-CNF instances near the satisfiability phase transition (clause/variable
ratio 4.26), where unit propagation dominates the run time, plus one
engine-level decomposition whose cost is almost entirely incremental SAT
calls.

Run with ``pytest benchmarks/bench_solver_hotpath.py --benchmark-only``, or
execute the module directly for a quick wall-clock report::

    PYTHONPATH=src python benchmarks/bench_solver_hotpath.py

``--json PATH`` additionally writes a machine-readable snapshot (CI
stores one per run as ``BENCH_solver_hotpath.json`` to record the perf
trajectory over time).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import List, Tuple

from repro.sat.solver import (
    Solver,
    active_kernel_name,
    kernel_available,
    kernel_forced_pure,
    solver_work_snapshot,
)
from repro.utils.rng import deterministic_rng


def random_3cnf(num_vars: int, num_clauses: int, seed: int | str) -> List[Tuple[int, ...]]:
    """A random 3-CNF instance with distinct variables per clause."""
    rng = deterministic_rng(seed)
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(range(1, num_vars + 1), 3)
        clauses.append(tuple(v if rng.random() < 0.5 else -v for v in chosen))
    return clauses


def solve_instances(num_vars: int, instances: int, seed_prefix: str) -> Tuple[int, int]:
    """Solve a batch of phase-transition instances; returns (sat, unsat)."""
    num_clauses = int(num_vars * 4.4)
    sat = unsat = 0
    for index in range(instances):
        solver = Solver()
        for clause in random_3cnf(num_vars, num_clauses, f"{seed_prefix}-{index}"):
            solver.add_clause(clause)
        result = solver.solve()
        if result.status is True:
            sat += 1
        elif result.status is False:
            unsat += 1
    return sat, unsat


def calibration_seconds() -> float:
    """Time a fixed pure-Python busy loop on this machine.

    The loop never touches the solver, so its duration tracks only the
    host's single-thread Python speed.  ``compare_bench.py`` divides two
    snapshots' workload times by the ratio of their calibrations, which
    lets a committed baseline from one machine gate regressions measured
    on another without pinning hardware.
    """
    start = time.perf_counter()  # repro: allow[DET-WALLCLOCK] calibration stopwatch; never feeds a fingerprint
    acc = 0
    for i in range(2_000_000):
        acc = (acc * 31 + i) % 1_000_003
    elapsed = time.perf_counter() - start  # repro: allow[DET-WALLCLOCK] same calibration stopwatch as above
    assert acc >= 0
    return elapsed


try:
    import pytest
except ImportError:  # pragma: no cover - direct execution without pytest
    pytest = None


if pytest is not None:

    @pytest.mark.benchmark(group="solver-hotpath")
    def test_solver_hotpath_phase_transition(benchmark):
        """Propagation-bound workload: random 3-CNF at ratio 4.26."""
        sat, unsat = benchmark(solve_instances, 140, 4, "hotpath")
        assert sat + unsat == 4

    @pytest.mark.benchmark(group="solver-hotpath")
    def test_solver_hotpath_engine_level(benchmark):
        """Engine-level workload: one STEP-MG + STEP-QD decomposition."""
        from repro.aig.function import BooleanFunction
        from repro.circuits.generators import decomposable_by_construction
        from repro.core.engine import BiDecomposer, EngineOptions

        aig, *_ = decomposable_by_construction("or", 6, 6, 2, seed="hotpath")
        function = BooleanFunction.from_output(aig, "f")
        step = BiDecomposer(EngineOptions(extract=False, output_timeout=120.0))

        result = benchmark(
            step.decompose_function_all, function, "or", ["STEP-MG", "STEP-QD"]
        )
        assert result["STEP-MG"].decomposed


def main(argv: List[str] | None = None) -> int:
    """Direct execution: wall-clock report plus an optional JSON snapshot."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the timings as a JSON snapshot",
    )
    args = parser.parse_args(argv)

    print(f"solver kernel: {active_kernel_name()}")

    work_before = solver_work_snapshot()
    start = time.perf_counter()  # repro: allow[DET-WALLCLOCK] the benchmark's deliverable IS the wall time; it never feeds a fingerprint
    sat, unsat = solve_instances(140, 4, "hotpath")
    cnf_elapsed = time.perf_counter() - start  # repro: allow[DET-WALLCLOCK] same benchmark stopwatch as above
    work_after = solver_work_snapshot()
    cnf_work = tuple(b - a for a, b in zip(work_before, work_after))
    print(f"random 3-CNF (n=140, 4 instances): {cnf_elapsed:.3f}s  sat={sat} unsat={unsat}")

    from repro.aig.function import BooleanFunction
    from repro.circuits.generators import decomposable_by_construction
    from repro.core.engine import BiDecomposer, EngineOptions

    aig, *_ = decomposable_by_construction("or", 6, 6, 2, seed="hotpath")
    function = BooleanFunction.from_output(aig, "f")
    step = BiDecomposer(EngineOptions(extract=False, output_timeout=120.0))
    work_before = solver_work_snapshot()
    start = time.perf_counter()  # repro: allow[DET-WALLCLOCK] same benchmark stopwatch as above
    results = step.decompose_function_all(function, "or", ["STEP-MG", "STEP-QD"])
    engine_elapsed = time.perf_counter() - start  # repro: allow[DET-WALLCLOCK] same benchmark stopwatch as above
    work_after = solver_work_snapshot()
    engine_work = tuple(b - a for a, b in zip(work_before, work_after))
    print(f"STEP-MG + STEP-QD decomposition: {engine_elapsed:.3f}s")

    if args.json:
        snapshot = {
            "schema": 2,
            "benchmark": "solver_hotpath",
            "python": platform.python_version(),
            "kernel": {
                "name": active_kernel_name(),
                "available": kernel_available(),
                "forced_pure": kernel_forced_pure(),
            },
            "calibration_seconds": round(calibration_seconds(), 6),
            "workloads": {
                "random_3cnf_n140_x4": {
                    "seconds": round(cnf_elapsed, 6),
                    "sat": sat,
                    "unsat": unsat,
                    "conflicts": cnf_work[0],
                    "decisions": cnf_work[1],
                    "propagations": cnf_work[2],
                },
                "engine_step_mg_qd": {
                    "seconds": round(engine_elapsed, 6),
                    "decomposed": bool(results["STEP-MG"].decomposed),
                    "conflicts": engine_work[0],
                    "decisions": engine_work[1],
                    "propagations": engine_work[2],
                },
            },
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
