"""Table II — aggregated quality comparison for OR, AND and XOR models.

The paper's Table II aggregates the better/equal percentages over *all*
decomposed outputs: OR bi-decomposition compared against both LJH and
STEP-MG, and AND / XOR bi-decomposition compared against STEP-MG (the LJH
tool does not support AND/XOR, footnote 1 of the paper).  Expected shape:
for every operator and every engine the "better + equal" percentage is 100
(the QBF engines never lose), with STEP-QB showing the largest "better"
fraction — balancedness is the metric the heuristics neglect most.
"""

import pytest

from harness import (
    ALL_ENGINES,
    SweepConfig,
    compare_engines,
    emit,
    format_table,
    percentage,
    run_sweep,
)
from repro.core.spec import (
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QB,
    ENGINE_STEP_QD,
    ENGINE_STEP_QDB,
)

CHALLENGER_METRICS = [
    (ENGINE_STEP_QD, "disjointness"),
    (ENGINE_STEP_QB, "balancedness"),
    (ENGINE_STEP_QDB, "combined"),
]

OR_CONFIG = SweepConfig(operator="or", engines=ALL_ENGINES)
AND_CONFIG = SweepConfig(
    operator="and",
    engines=(ENGINE_STEP_MG, ENGINE_STEP_QD, ENGINE_STEP_QB, ENGINE_STEP_QDB),
)
XOR_CONFIG = SweepConfig(
    operator="xor",
    engines=(ENGINE_STEP_MG, ENGINE_STEP_QD, ENGINE_STEP_QB, ENGINE_STEP_QDB),
)


def _aggregate(config: SweepConfig, baseline: str):
    sweep = run_sweep(config)
    summary = {}
    for challenger, metric in CHALLENGER_METRICS:
        better = equal = total = 0
        for _, report in sweep:
            circuit_better, circuit_equal, circuit_total = compare_engines(
                report, challenger, baseline, metric
            )
            better += circuit_better
            equal += circuit_equal
            total += circuit_total
        summary[challenger] = (
            percentage(better, total),
            percentage(equal, total),
            total,
        )
    return summary


def _build_table() -> str:
    sections = [
        ("OR vs LJH", OR_CONFIG, ENGINE_LJH),
        ("OR vs STEP-MG", OR_CONFIG, ENGINE_STEP_MG),
        ("AND vs STEP-MG", AND_CONFIG, ENGINE_STEP_MG),
        ("XOR vs STEP-MG", XOR_CONFIG, ENGINE_STEP_MG),
    ]
    headers = ["Comparison", "Engine", "Metric", "better %", "equal %", "#POs"]
    rows = []
    for label, config, baseline in sections:
        summary = _aggregate(config, baseline)
        for challenger, metric in CHALLENGER_METRICS:
            better, equal, total = summary[challenger]
            rows.append([label, challenger, metric, f"{better:.2f}", f"{equal:.2f}", total])
    return format_table(headers, rows)


@pytest.mark.benchmark(group="table2")
def test_table2_quality_all_models(benchmark):
    """Regenerate Table II (summary quality metrics for all models)."""
    for config in (OR_CONFIG, AND_CONFIG, XOR_CONFIG):
        run_sweep(config)
    table = benchmark(_build_table)
    emit("table2_quality_all", table)

    # Shape assertions: the QBF engines never lose against STEP-MG on any
    # operator, on their own target metric.
    for config in (OR_CONFIG, AND_CONFIG, XOR_CONFIG):
        summary = _aggregate(config, ENGINE_STEP_MG)
        for challenger, _ in CHALLENGER_METRICS:
            better, equal, _ = summary[challenger]
            assert better + equal >= 99.99


@pytest.mark.benchmark(group="table2")
def test_table2_and_xor_single_output(benchmark):
    """Micro-benchmark: one AND and one XOR exact decomposition."""
    from repro.aig.function import BooleanFunction
    from repro.circuits.generators import decomposable_by_construction, parity_tree
    from repro.core.checks import RelaxationChecker
    from repro.core.qbf_bidec import qbf_decompose

    aig, *_ = decomposable_by_construction("and", 3, 3, 1, seed="table2")
    and_function = BooleanFunction.from_output(aig, "f")
    xor_function = BooleanFunction.from_output(parity_tree(6), "p")

    def run():
        first = qbf_decompose(RelaxationChecker(and_function, "and"), "disjointness")
        second = qbf_decompose(RelaxationChecker(xor_function, "xor"), "balancedness")
        return first, second

    first, second = benchmark(run)
    assert first.decomposed and second.decomposed
