"""Diff two ``BENCH_solver_hotpath.json`` snapshots and gate regressions.

Usage::

    PYTHONPATH=src python benchmarks/compare_bench.py BASELINE CURRENT \
        [--max-regression 0.20] [--min-speedup N] [--no-normalize]

Prints a per-workload table of seconds, deltas, and ratios, then exits
non-zero when either gate fails:

* ``--max-regression`` (default 0.20): fail if any workload is more than
  20% slower than the baseline.
* ``--min-speedup``: fail unless every workload in CURRENT is at least N
  times faster than in BASELINE.  CI uses this with a pure-Python
  baseline and a kernel-on current snapshot taken on the *same* machine
  to assert the compiled kernel's speedup floor.

When both snapshots are schema 2 and carry ``calibration_seconds``, the
current workload times are normalized by ``baseline_cal / current_cal``
before comparison, so a baseline committed from one machine can gate a
run on another.  ``--no-normalize`` disables this (use it for the
same-machine ``--min-speedup`` gate, where normalizing would cancel out
real kernel speedup if calibration noise differed).

Schema 2 snapshots also carry per-workload conflicts/decisions/
propagations; when both sides have them the counters are diffed too —
a counter drift means the solver took a *different search path*, which
is a determinism bug, not a perf regression, and is reported as such.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

COUNTERS = ("conflicts", "decisions", "propagations")


def load_snapshot(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    schema = snapshot.get("schema")
    if schema not in (1, 2):
        raise SystemExit(f"{path}: unsupported snapshot schema {schema!r}")
    if "workloads" not in snapshot:
        raise SystemExit(f"{path}: snapshot has no workloads")
    return snapshot


def describe(snapshot: Dict, path: str) -> str:
    kernel = snapshot.get("kernel", {})
    parts = [f"schema {snapshot['schema']}"]
    if kernel:
        parts.append(f"kernel={kernel.get('name')}")
    if "python" in snapshot:
        parts.append(f"python={snapshot['python']}")
    if "calibration_seconds" in snapshot:
        parts.append(f"cal={snapshot['calibration_seconds']:.3f}s")
    return f"{path}: " + ", ".join(parts)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline snapshot (JSON)")
    parser.add_argument("current", help="current snapshot (JSON)")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        metavar="FRAC",
        help="fail if any workload slows down by more than FRAC (default 0.20)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless every workload is at least X times faster",
    )
    parser.add_argument(
        "--no-normalize",
        action="store_true",
        help="skip calibration normalization even when both snapshots have it",
    )
    parser.add_argument(
        "--workload",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict the comparison to NAME (repeatable); default: all shared",
    )
    args = parser.parse_args(argv)

    baseline = load_snapshot(args.baseline)
    current = load_snapshot(args.current)
    print(describe(baseline, args.baseline))
    print(describe(current, args.current))

    scale = 1.0
    if (
        not args.no_normalize
        and "calibration_seconds" in baseline
        and "calibration_seconds" in current
        and current["calibration_seconds"] > 0
    ):
        scale = baseline["calibration_seconds"] / current["calibration_seconds"]
        if abs(scale - 1.0) > 1e-9:
            print(f"calibration normalization: current times scaled by {scale:.3f}")

    base_workloads = baseline["workloads"]
    cur_workloads = current["workloads"]
    shared = sorted(set(base_workloads) & set(cur_workloads))
    if args.workload:
        missing = sorted(set(args.workload) - set(shared))
        if missing:
            raise SystemExit(f"requested workloads not in both snapshots: {missing}")
        shared = sorted(set(args.workload))
    if not shared:
        raise SystemExit("snapshots share no workloads; nothing to compare")
    for name in sorted(set(base_workloads) ^ set(cur_workloads)):
        print(f"note: workload {name!r} present in only one snapshot; skipped")

    failures = []
    print(f"{'workload':<28} {'base(s)':>10} {'cur(s)':>10} {'ratio':>8}")
    for name in shared:
        base_s = float(base_workloads[name]["seconds"])
        cur_s = float(cur_workloads[name]["seconds"]) * scale
        ratio = cur_s / base_s if base_s > 0 else float("inf")
        print(f"{name:<28} {base_s:>10.4f} {cur_s:>10.4f} {ratio:>8.3f}")

        if ratio > 1.0 + args.max_regression:
            failures.append(
                f"{name}: {ratio:.3f}x of baseline exceeds the "
                f"{1.0 + args.max_regression:.2f}x regression limit"
            )
        if args.min_speedup is not None and base_s / max(cur_s, 1e-12) < args.min_speedup:
            failures.append(
                f"{name}: speedup {base_s / max(cur_s, 1e-12):.2f}x is below "
                f"the required {args.min_speedup:.2f}x"
            )

        for counter in COUNTERS:
            if counter in base_workloads[name] and counter in cur_workloads[name]:
                base_c = base_workloads[name][counter]
                cur_c = cur_workloads[name][counter]
                if base_c != cur_c:
                    failures.append(
                        f"{name}: {counter} drifted {base_c} -> {cur_c} "
                        "(different search path — determinism bug, not perf)"
                    )

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: all workloads within limits")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
