"""Diff two ``BENCH_solver_hotpath.json`` snapshots and gate regressions.

Usage::

    PYTHONPATH=src python benchmarks/compare_bench.py BASELINE CURRENT \
        [--max-regression 0.20] [--min-speedup N] [--no-normalize]

Prints a per-workload table of seconds, deltas, and ratios, then exits
non-zero when either gate fails:

* ``--max-regression`` (default 0.20): fail if any workload is more than
  20% slower than the baseline.
* ``--min-speedup``: fail unless every workload in CURRENT is at least N
  times faster than in BASELINE.  CI uses this with a pure-Python
  baseline and a kernel-on current snapshot taken on the *same* machine
  to assert the compiled kernel's speedup floor.

When both snapshots are schema 2 and carry ``calibration_seconds``, the
current workload times are normalized by ``baseline_cal / current_cal``
before comparison, so a baseline committed from one machine can gate a
run on another.  ``--no-normalize`` disables this (use it for the
same-machine ``--min-speedup`` gate, where normalizing would cancel out
real kernel speedup if calibration noise differed).

Schema 2 snapshots also carry per-workload conflicts/decisions/
propagations; when both sides have them the counters are diffed too —
a counter drift means the solver took a *different search path*, which
is a determinism bug, not a perf regression, and is reported as such.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

COUNTERS = ("conflicts", "decisions", "propagations")


def load_snapshot(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    schema = snapshot.get("schema")
    if schema not in (1, 2):
        raise SystemExit(f"{path}: unsupported snapshot schema {schema!r}")
    if "workloads" not in snapshot:
        raise SystemExit(f"{path}: snapshot has no workloads")
    return snapshot


def describe(snapshot: Dict, path: str) -> str:
    kernel = snapshot.get("kernel", {})
    parts = [f"schema {snapshot['schema']}"]
    if kernel:
        parts.append(f"kernel={kernel.get('name')}")
    if "python" in snapshot:
        parts.append(f"python={snapshot['python']}")
    if "calibration_seconds" in snapshot:
        parts.append(f"cal={snapshot['calibration_seconds']:.3f}s")
    return f"{path}: " + ", ".join(parts)


def check_stats(path: str) -> int:
    """Schema-check one saved service stats frame (``--stats`` mode).

    CI snapshots the daemon's enriched stats frame next to the perf
    snapshot; this validates its shape — versions, the obs metric
    snapshot's internal consistency (bucket counts, quantile keys),
    per-client accounting — so a stats-schema break fails the build the
    same way a perf regression does.
    """
    with open(path, "r", encoding="utf-8") as handle:
        stats = json.load(handle)
    problems: List[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    expect(isinstance(stats, dict), "stats frame is not an object")
    if isinstance(stats, dict):
        expect(
            stats.get("stats_version") == 2,
            f"stats_version is {stats.get('stats_version')!r}, expected 2",
        )
        expect(
            isinstance(stats.get("protocol"), int),
            "missing integer 'protocol'",
        )
        expect(isinstance(stats.get("quotas"), dict), "missing 'quotas' object")
        clients = stats.get("clients")
        expect(isinstance(clients, dict), "missing 'clients' object")
        if isinstance(clients, dict):
            for client in sorted(clients):
                entry = clients[client]
                if not isinstance(entry, dict):
                    problems.append(f"clients[{client!r}] is not an object")
                    continue
                for key in ("inflight", "submitted", "rejected"):
                    expect(
                        isinstance(entry.get(key), int),
                        f"clients[{client!r}].{key} is not an integer",
                    )
        obs = stats.get("obs")
        expect(isinstance(obs, dict), "missing 'obs' metric snapshot")
        if isinstance(obs, dict):
            expect(
                isinstance(obs.get("version"), int),
                "obs snapshot has no integer 'version'",
            )
            for section in ("counters", "gauges", "histograms"):
                expect(
                    isinstance(obs.get(section), dict),
                    f"obs snapshot has no '{section}' object",
                )
            histograms = obs.get("histograms")
            if isinstance(histograms, dict):
                for name in sorted(histograms):
                    entry = histograms[name]
                    bounds = entry.get("buckets")
                    if not isinstance(bounds, list) or bounds != sorted(bounds):
                        problems.append(f"{name}: bucket bounds not ascending")
                        continue
                    for key, series in sorted(entry.get("series", {}).items()):
                        counts = series.get("counts")
                        if (
                            not isinstance(counts, list)
                            or len(counts) != len(bounds) + 1
                        ):
                            problems.append(
                                f"{name}[{key!r}]: counts length "
                                f"{len(counts) if isinstance(counts, list) else '?'}"
                                f" != {len(bounds) + 1}"
                            )
                            continue
                        expect(
                            series.get("count") == sum(counts),
                            f"{name}[{key!r}]: count != sum(counts)",
                        )
                        if series.get("count"):
                            for quantile in ("p50", "p90", "p99"):
                                expect(
                                    isinstance(
                                        series.get(quantile), (int, float)
                                    ),
                                    f"{name}[{key!r}]: missing {quantile}",
                                )
    if problems:
        for problem in problems:
            print(f"FAIL: {path}: {problem}")
        return 1
    print(f"OK: {path}: stats frame schema is valid")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline", nargs="?", default=None, help="baseline snapshot (JSON)"
    )
    parser.add_argument(
        "current", nargs="?", default=None, help="current snapshot (JSON)"
    )
    parser.add_argument(
        "--stats",
        default=None,
        metavar="FILE",
        help=(
            "schema-check a saved service stats frame instead of diffing "
            "perf snapshots"
        ),
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        metavar="FRAC",
        help="fail if any workload slows down by more than FRAC (default 0.20)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless every workload is at least X times faster",
    )
    parser.add_argument(
        "--no-normalize",
        action="store_true",
        help="skip calibration normalization even when both snapshots have it",
    )
    parser.add_argument(
        "--workload",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict the comparison to NAME (repeatable); default: all shared",
    )
    args = parser.parse_args(argv)

    if args.stats is not None:
        if args.baseline is not None or args.current is not None:
            parser.error("--stats takes no positional snapshots")
        return check_stats(args.stats)
    if args.baseline is None or args.current is None:
        parser.error("baseline and current snapshots are required")

    baseline = load_snapshot(args.baseline)
    current = load_snapshot(args.current)
    print(describe(baseline, args.baseline))
    print(describe(current, args.current))

    scale = 1.0
    if (
        not args.no_normalize
        and "calibration_seconds" in baseline
        and "calibration_seconds" in current
        and current["calibration_seconds"] > 0
    ):
        scale = baseline["calibration_seconds"] / current["calibration_seconds"]
        if abs(scale - 1.0) > 1e-9:
            print(f"calibration normalization: current times scaled by {scale:.3f}")

    base_workloads = baseline["workloads"]
    cur_workloads = current["workloads"]
    shared = sorted(set(base_workloads) & set(cur_workloads))
    if args.workload:
        missing = sorted(set(args.workload) - set(shared))
        if missing:
            raise SystemExit(f"requested workloads not in both snapshots: {missing}")
        shared = sorted(set(args.workload))
    if not shared:
        raise SystemExit("snapshots share no workloads; nothing to compare")
    for name in sorted(set(base_workloads) ^ set(cur_workloads)):
        print(f"note: workload {name!r} present in only one snapshot; skipped")

    failures = []
    print(f"{'workload':<28} {'base(s)':>10} {'cur(s)':>10} {'ratio':>8}")
    for name in shared:
        base_s = float(base_workloads[name]["seconds"])
        cur_s = float(cur_workloads[name]["seconds"]) * scale
        ratio = cur_s / base_s if base_s > 0 else float("inf")
        print(f"{name:<28} {base_s:>10.4f} {cur_s:>10.4f} {ratio:>8.3f}")

        if ratio > 1.0 + args.max_regression:
            failures.append(
                f"{name}: {ratio:.3f}x of baseline exceeds the "
                f"{1.0 + args.max_regression:.2f}x regression limit"
            )
        if args.min_speedup is not None and base_s / max(cur_s, 1e-12) < args.min_speedup:
            failures.append(
                f"{name}: speedup {base_s / max(cur_s, 1e-12):.2f}x is below "
                f"the required {args.min_speedup:.2f}x"
            )

        for counter in COUNTERS:
            if counter in base_workloads[name] and counter in cur_workloads[name]:
                base_c = base_workloads[name][counter]
                cur_c = cur_workloads[name][counter]
                if base_c != cur_c:
                    failures.append(
                        f"{name}: {counter} drifted {base_c} -> {cur_c} "
                        "(different search path — determinism bug, not perf)"
                    )

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: all workloads within limits")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
