"""Figure 1 — CPU-time scatter plots between the models.

The paper's Figure 1 shows six scatter plots of per-circuit CPU time:
LJH vs STEP-{QD, QB, QDB} (top row) and STEP-MG vs STEP-{QD, QB, QDB}
(bottom row), over all 145 circuits.  This benchmark emits the same six
series as text (one ``x y`` pair per circuit, plus the which-side-wins
summary).  Expected shape: in the LJH row most points lie below the
diagonal (the QBF engines are faster than LJH on hard circuits), while in
the STEP-MG row most points lie above it (exactness costs time compared to
the fast heuristic).
"""

import pytest

from harness import ALL_ENGINES, SweepConfig, emit, run_sweep
from repro.core.spec import (
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QB,
    ENGINE_STEP_QD,
    ENGINE_STEP_QDB,
)

CONFIG = SweepConfig(operator="or", engines=ALL_ENGINES)

PAIRS = [
    (ENGINE_LJH, ENGINE_STEP_QD),
    (ENGINE_LJH, ENGINE_STEP_QB),
    (ENGINE_LJH, ENGINE_STEP_QDB),
    (ENGINE_STEP_MG, ENGINE_STEP_QD),
    (ENGINE_STEP_MG, ENGINE_STEP_QB),
    (ENGINE_STEP_MG, ENGINE_STEP_QDB),
]


def _build_series():
    sweep = run_sweep(CONFIG)
    series = {}
    for baseline, challenger in PAIRS:
        points = []
        for circuit, report in sweep:
            points.append(
                (circuit.name, report.cpu_seconds(challenger), report.cpu_seconds(baseline))
            )
        series[(baseline, challenger)] = points
    return series


def _build_text() -> str:
    series = _build_series()
    blocks = []
    for (baseline, challenger), points in series.items():
        lines = [f"# {challenger} (x) vs {baseline} (y) — one point per circuit"]
        above = below = 0
        for name, x, y in points:
            lines.append(f"{name:>12}  {x:10.4f}  {y:10.4f}")
            if y > x:
                above += 1
            elif y < x:
                below += 1
        lines.append(
            f"# circuits where {baseline} is slower (above diagonal): {above}, "
            f"faster: {below}"
        )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


@pytest.mark.benchmark(group="figure1")
def test_figure1_scatter_series(benchmark):
    """Regenerate the six CPU-time scatter series of Figure 1."""
    run_sweep(CONFIG)
    text = benchmark(_build_text)
    emit("figure1_cpu_scatter", text)

    series = _build_series()
    # Shape assertion: against STEP-MG the QBF engines are slower in aggregate
    # (exact search costs more than the greedy heuristic).
    for challenger in (ENGINE_STEP_QD, ENGINE_STEP_QB, ENGINE_STEP_QDB):
        points = series[(ENGINE_STEP_MG, challenger)]
        total_challenger = sum(x for _, x, _ in points)
        total_baseline = sum(y for _, _, y in points)
        assert total_challenger >= total_baseline * 0.5


@pytest.mark.benchmark(group="figure1")
def test_figure1_full_circuit_runtime(benchmark):
    """Micro-benchmark: one full circuit decomposed by STEP-QD alone."""
    from repro import Budgets, DecompositionRequest, Session
    from repro.circuits.generators import comparator

    request = DecompositionRequest(
        circuit=comparator(4),
        operator="or",
        engines=("STEP-QD",),
        budgets=Budgets(per_call=2.0, per_output=15.0),
        max_outputs=3,
        extract=False,
    )

    report = benchmark(Session().run, request)
    assert report.outputs
