"""The thin blocking client of the decomposition service.

:class:`ServiceClient` speaks the JSON-lines protocol over a Unix socket
or TCP synchronously, so scripts written against the blocking
:class:`repro.api.session.Session` move to a shared daemon (or a
``step route`` shard fleet) by changing one line::

    report = Session().run(request)                          # in-process
    report = ServiceClient("/tmp/repro.sock").run(request)   # daemon
    report = ServiceClient("10.0.0.5:7000").run(request)     # daemon/router

Several requests can be in flight on one connection (``submit`` returns
the server-assigned id immediately); frames arriving for other requests
while you wait on one are buffered and demultiplexed by id.  ``step
client`` is the CLI wrapper.
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional

from repro.api.request import DecompositionRequest
from repro.core.result import CircuitReport
from repro.errors import Backpressure, ProtocolError, ServiceError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    decode_frame,
    decode_report,
    encode_frame,
    encode_request,
    parse_address,
)
from repro.utils.timer import Deadline


def _start_deadline(timeout: Optional[float]) -> Optional[Deadline]:
    if timeout is None:
        return None
    if timeout <= 0:
        raise ServiceError(f"timeout must be positive (got {timeout!r})")
    return Deadline(timeout)


def _remaining(deadline: Optional[Deadline]) -> Optional[float]:
    """Seconds left on the wait, raising once the deadline is spent."""
    if deadline is None:
        return None
    left = deadline.remaining()
    if left is not None and left <= 0:
        raise ServiceError("timed out waiting for the service")
    return left


class ServiceClient:
    """One blocking connection to a ``step serve`` daemon or ``step
    route`` router, addressed by Unix path or ``host:port``."""

    def __init__(self, address: str, timeout: Optional[float] = None) -> None:
        self.address = address
        kind, host, port = parse_address(address)
        try:
            if kind == "tcp":
                self._sock = socket.create_connection(
                    (host or "127.0.0.1", port), timeout=timeout
                )
            else:
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                if timeout is not None:
                    self._sock.settimeout(timeout)
                self._sock.connect(host)
        except OSError as exc:
            if kind == "unix":
                self._sock.close()
            raise ServiceError(
                f"cannot connect to the service at {address!r}: {exc}"
            ) from None
        if kind == "tcp":
            # Frames are whole requests/replies: latency beats batching.
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Hand-rolled read buffer instead of sock.makefile(): a buffered
        # file object becomes unreadable after one socket timeout, while
        # this buffer keeps partial frames across timed-out waits.
        self._rbuf = bytearray()
        self._next_tag = 0
        self._tagged: Dict[int, dict] = {}
        self._events: Dict[int, List[dict]] = {}
        self._results: Dict[int, dict] = {}
        self._states: Dict[int, str] = {}
        hello = self._read_frame()
        if hello.get("type") != "hello" or hello.get("v") != PROTOCOL_VERSION:
            self.close()
            raise ProtocolError(
                f"the server speaks protocol {hello.get('v')!r}, this client "
                f"speaks {PROTOCOL_VERSION}"
            )
        # ``timeout`` bounds the connect + hello handshake only, never
        # result waits: a healthy daemon may legitimately take longer than
        # any connect timeout to finish a decomposition.
        self._sock.settimeout(None)

    @property
    def socket_path(self) -> str:
        """Backwards-compatible alias of :attr:`address`."""
        return self.address

    # -- context management -------------------------------------------------------

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        self._sock.close()

    # -- the protocol surface -----------------------------------------------------

    def submit(self, request: DecompositionRequest) -> int:
        """Submit one request; returns the server-assigned request id."""
        reply = self._call({"type": "submit", "request": encode_request(request)})
        return int(reply["id"])

    def wait(
        self, request_id: int, timeout: Optional[float] = None
    ) -> CircuitReport:
        """Block until the request is terminal; return (or raise) its outcome.

        ``done`` returns the decoded report; ``cancelled`` and ``failed``
        raise :class:`ServiceError` carrying the server's message.
        Waiting on an id this connection never submitted (or one already
        consumed by an earlier :meth:`wait`) raises immediately — no
        ``result`` frame will ever arrive for it, so looping on the
        socket would hang forever.

        ``timeout`` (seconds) bounds the whole wait: when it elapses —
        or the server closes the connection first — a
        :class:`ServiceError` is raised instead of blocking forever.
        ``None`` keeps the historical block-until-done behaviour.
        """
        deadline = _start_deadline(timeout)
        while request_id not in self._results:
            state = self._states.get(request_id)
            if state is None:
                raise ServiceError(
                    f"unknown request id {request_id!r}: not a request "
                    "submitted on this connection"
                )
            if state in ("done", "cancelled", "failed"):
                # Terminal and its result frame already consumed by an
                # earlier wait(): nothing more will ever arrive for it.
                raise ServiceError(
                    f"request {request_id} already waited on "
                    f"(terminal state {state!r})"
                )
            self._dispatch(self._read_frame(_remaining(deadline)))
        result = self._results.pop(request_id)
        state = result.get("state")
        if state == "done":
            return decode_report(result["report"])
        detail = result.get("error") or state
        raise ServiceError(f"request {request_id} {state}: {detail}")

    def run(self, request: DecompositionRequest) -> CircuitReport:
        """``Session.run``, remotely: submit one request and await it."""
        return self.wait(self.submit(request))

    def cancel(self, request_id: int) -> bool:
        """Cooperatively cancel; returns whether the server cancelled it."""
        reply = self._call({"type": "cancel", "id": request_id})
        return bool(reply.get("cancelled"))

    def stats(self) -> Dict[str, object]:
        """The daemon's live counters (pools, request states, connections)."""
        return self._call({"type": "stats"})["stats"]

    def ping(self) -> bool:
        return self._call({"type": "ping"}).get("type") == "pong"

    def status(self, request_id: int) -> str:
        """Last state the server reported for the request.

        The blocking client's view advances whenever it reads frames —
        i.e. during :meth:`wait`, :meth:`stats`, :meth:`cancel` or any
        other call; it never reads the socket behind your back.  Send a
        cheap :meth:`ping` to pull queued frames in.
        """
        if request_id in self._results:
            return str(self._results[request_id].get("state"))
        state = self._states.get(request_id)
        if state is None:
            raise ServiceError(f"unknown request id {request_id}")
        return state

    def events(
        self, request_id: int, timeout: Optional[float] = None
    ) -> List[dict]:
        """Drain buffered per-output progress events for the request.

        Non-blocking by default.  With ``timeout`` (seconds) the call
        reads the socket until at least one event is buffered for the
        request or it goes terminal — raising :class:`ServiceError` when
        the timeout elapses or the server closes the connection first.
        """
        buffered = self._events.pop(request_id, [])
        if buffered or timeout is None:
            return buffered
        deadline = _start_deadline(timeout)
        while request_id not in self._events:
            state = self._states.get(request_id)
            if state is None:
                raise ServiceError(
                    f"unknown request id {request_id!r}: not a request "
                    "submitted on this connection"
                )
            if request_id in self._results or state in (
                "done",
                "cancelled",
                "failed",
            ):
                return []  # terminal: no further progress events will come
            self._dispatch(self._read_frame(_remaining(deadline)))
        return self._events.pop(request_id, [])

    # -- plumbing -----------------------------------------------------------------

    def _call(self, frame: dict) -> dict:
        """Send one tagged frame and block for its tagged reply."""
        self._next_tag += 1
        tag = self._next_tag
        frame = dict(frame)
        frame["v"] = PROTOCOL_VERSION
        frame["tag"] = tag
        try:
            self._sock.sendall(encode_frame(frame))
        except OSError as exc:
            raise ServiceError(f"connection to the service lost: {exc}") from None
        while tag not in self._tagged:
            self._dispatch(self._read_frame())
        reply = self._tagged.pop(tag)
        if reply.get("type") == "error":
            message = str(reply.get("error"))
            if reply.get("code") == Backpressure.code:
                # Recoverable quota rejection: typed so callers can back
                # off and retry instead of treating it as a hard failure.
                raise Backpressure(message)
            raise ServiceError(message)
        return reply

    def _read_frame(self, timeout: Optional[float] = None) -> dict:
        """Read one frame, optionally bounding the read with ``timeout``.

        The socket's long-lived timeout stays ``None`` (result waits are
        unbounded by default); a bounded read sets it for this call only
        and always restores it.  Bytes received before a timeout fires
        stay in :attr:`_rbuf`, so a timed-out wait never corrupts the
        stream — the next read resumes mid-frame.
        """
        line = self._read_line(timeout)
        if not line:
            raise ServiceError("the service closed the connection")
        return decode_frame(line)

    def _read_line(self, timeout: Optional[float] = None) -> bytes:
        while True:
            newline = self._rbuf.find(b"\n")
            if newline >= 0:
                line = bytes(self._rbuf[: newline + 1])
                del self._rbuf[: newline + 1]
                return line
            try:
                if timeout is not None:
                    self._sock.settimeout(max(timeout, 1e-9))
                chunk = self._sock.recv(1 << 16)
            except socket.timeout:
                raise ServiceError("timed out waiting for the service") from None
            except OSError as exc:
                raise ServiceError(
                    f"connection to the service lost: {exc}"
                ) from None
            finally:
                if timeout is not None:
                    try:
                        self._sock.settimeout(None)
                    except OSError:  # pragma: no cover - socket already dead
                        pass
            if not chunk:
                if self._rbuf:
                    raise ServiceError(
                        "the service closed the connection mid-frame"
                    )
                return b""
            self._rbuf += chunk

    def _dispatch(self, frame: dict) -> None:
        tag = frame.get("tag")
        if tag is not None:
            self._tagged[tag] = frame
            # A tagged event (submit/cancel ack) still updates the state
            # view; fall through for that.
        frame_type = frame.get("type")
        request_id = frame.get("id")
        if frame_type == "result" and isinstance(request_id, int):
            self._results[request_id] = frame
            self._states[request_id] = str(frame.get("state"))
        elif frame_type == "event" and isinstance(request_id, int):
            self._states[request_id] = str(frame.get("state"))
            if "output" in frame:
                self._events.setdefault(request_id, []).append(frame)
