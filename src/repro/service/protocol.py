"""The service wire protocol: versioned JSON lines over a stream socket.

Every frame is one JSON object on one ``\\n``-terminated line, carried
over either a Unix socket or TCP (:func:`parse_address` classifies the
two address forms).  Client frames carry the protocol version in ``"v"``;
the server answers a version mismatch (or any malformed frame — including
one past the :data:`WIRE_LINE_LIMIT` line cap, see :class:`FrameReader`)
with a one-line ``error`` frame and keeps the connection alive.  See
``docs/service.md`` for the full frame catalogue.

The codecs in this module are **fingerprint-preserving**: a circuit is
encoded node-for-node (same indices, same strashed AND order), so the
daemon rebuilds the exact AIG the client holds, and a report is decoded
into a :class:`repro.core.result.CircuitReport` whose
:meth:`~repro.core.result.CircuitReport.fingerprint` equals the
server-side original — including extracted sub-functions, which travel as
(input names, truth table) and come back as :class:`WireFunction`
stand-ins with identical semantic fingerprints.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Tuple

from repro.aig.aig import AIG, lit_make
from repro.api.config import Budgets, CachePolicy, Parallelism
from repro.api.request import DecompositionRequest
from repro.core.partition import VariablePartition
from repro.core.result import (
    BiDecResult,
    CircuitReport,
    OutputResult,
    SearchStatistics,
)
from repro.errors import FrameTooLarge, ProtocolError, ReproError, ServiceError

# Version 2: report stats frames gained "decisions"/"propagations" (solver
# counters that now feed result fingerprints), and report schedules carry
# "solver_kernel"/"solver_stats".  The handshake is strict, so old clients
# and servers refuse each other cleanly instead of mis-decoding stats.
# Version 3: stats frames carry the observability roll-up ("obs" metric
# snapshot with latency histograms, "clients" per-client accounting,
# "quotas" admission bounds), and error frames may carry a machine-
# readable "code" (e.g. "backpressure" for recoverable quota rejections).
PROTOCOL_VERSION = 3

#: Frame types a client may send.
CLIENT_FRAME_TYPES = ("submit", "cancel", "stats", "ping")

#: Per-line read limit.  Frames carry whole circuits and whole reports;
#: 64 MiB is far beyond any realistic benchmark circuit while still
#: bounding a hostile client's memory use.  An over-long line is
#: *discarded in full* and answered with a one-line ``error`` frame — the
#: connection stays usable (see :class:`FrameReader`).
WIRE_LINE_LIMIT = 64 * 1024 * 1024

#: Truth tables are only shipped up to this support size — exactly the
#: range report fingerprints compare truth tables over (beyond it they
#: compare input names only, see ``repro.core.result._function_fingerprint``).
WIRE_TABLE_MAX_INPUTS = 16


# -- framing --------------------------------------------------------------------


def encode_frame(frame: Dict[str, object]) -> bytes:
    """One frame as a JSON line (compact separators, trailing newline)."""
    return json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, object]:
    """Parse one wire line into a frame dict.

    Raises :class:`ProtocolError` (one line, no traceback leakage) on
    anything that is not a JSON object.
    """
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"malformed frame (not valid JSON): {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"malformed frame: expected a JSON object, got {type(frame).__name__}"
        )
    return frame


def check_client_frame(frame: Dict[str, object]) -> str:
    """Validate version + type of a client frame; returns the type."""
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: client sent {version!r}, "
            f"server speaks {PROTOCOL_VERSION}"
        )
    frame_type = frame.get("type")
    if frame_type not in CLIENT_FRAME_TYPES:
        raise ProtocolError(
            f"unknown frame type {frame_type!r}; expected one of "
            + ", ".join(CLIENT_FRAME_TYPES)
        )
    return frame_type


# -- addresses ------------------------------------------------------------------


def parse_address(address: str) -> Tuple[str, str, Optional[int]]:
    """Classify a service address string.

    ``"host:port"`` (port all digits, no path separator) parses to
    ``("tcp", host, port)`` — the host may be empty ("bind every
    interface" for servers, loopback for clients) and IPv6 literals may
    be bracketed (``"[::1]:7000"``).  Anything else is a Unix socket
    path: ``("unix", path, None)``.
    """
    if not isinstance(address, str) or not address:
        raise ServiceError(f"invalid service address {address!r}")
    if "/" not in address and ":" in address:
        host, _, port = address.rpartition(":")
        if port.isdigit():
            return ("tcp", host.strip("[]"), int(port))
    return ("unix", address, None)


def format_address(host: str, port: int) -> str:
    """The canonical ``host:port`` form (IPv6 hosts bracketed)."""
    return f"[{host}]:{port}" if ":" in host else f"{host}:{port}"


# -- line framing with a recoverable size cap ------------------------------------

#: How much of an oversized line's head/tail is retained to recover the
#: client's ``tag`` (written near the end of every frame the bundled
#: clients send).
_TAG_SNIFF_WINDOW = 4096

_TAG_INT = re.compile(rb'"tag":(-?\d+)[,}]')
_TAG_STR = re.compile(rb'"tag":"((?:[^"\\]|\\.)*)"')


def _sniff_tag(head: bytes, tail: bytes) -> Optional[object]:
    """Best-effort recovery of the ``tag`` from a discarded frame."""
    for window in (tail, head):
        ints = _TAG_INT.findall(window)
        if ints:
            return int(ints[-1])
        strings = _TAG_STR.findall(window)
        if strings:
            try:
                return json.loads(b'"' + strings[-1] + b'"')
            except ValueError:  # pragma: no cover - pattern clipped mid-escape
                return None
    return None


class FrameReader:
    """An incremental JSON-lines reader with an explicit per-line cap.

    ``asyncio.StreamReader.readline`` raises once its buffer limit is hit
    and leaves the stream unparseable — the pre-PR-6 daemon had no choice
    but to drop the connection, breaking the "malformed frames get
    one-line error replies" contract.  This reader owns its buffer: a
    line longer than ``limit`` is discarded *through its terminating
    newline* (constant memory), the client's ``tag`` is recovered from
    the discarded bytes when possible, and :class:`FrameTooLarge` is
    raised — after which the stream is positioned at the next frame and
    :meth:`readline` keeps working.
    """

    #: Read granularity; also bounds the memory spent while discarding.
    CHUNK = 1 << 16

    def __init__(
        self, reader: "asyncio.StreamReader", limit: int = WIRE_LINE_LIMIT
    ) -> None:
        self._reader = reader
        self._limit = limit
        self._buffer = bytearray()
        self._scanned = 0

    async def readline(self) -> bytes:
        """One full ``\\n``-terminated line; ``b""`` at EOF.

        The final line of a stream that ends without a newline is
        returned as-is (it will fail JSON decoding like any truncated
        frame would).  Raises :class:`FrameTooLarge` for a line past the
        cap — the oversized line is gone, the connection is not.
        """
        while True:
            newline = self._buffer.find(b"\n", self._scanned)
            if newline >= 0:
                line = bytes(self._buffer[: newline + 1])
                del self._buffer[: newline + 1]
                self._scanned = 0
                if len(line) > self._limit:
                    # The whole line arrived buffered before the cap
                    # could trip mid-read: enforce it here too, or the
                    # limit would depend on TCP segmentation.
                    raise FrameTooLarge(
                        self._limit,
                        tag=_sniff_tag(
                            line[:_TAG_SNIFF_WINDOW], line[-_TAG_SNIFF_WINDOW:]
                        ),
                    )
                return line
            self._scanned = len(self._buffer)
            if self._scanned > self._limit:
                raise FrameTooLarge(self._limit, tag=await self._discard_line())
            chunk = await self._reader.read(self.CHUNK)
            if not chunk:
                line = bytes(self._buffer)
                self._buffer.clear()
                self._scanned = 0
                return line
            self._buffer += chunk

    async def _discard_line(self) -> Optional[object]:
        """Drop the in-progress oversized line; returns its sniffed tag.

        Keeps only a head/tail window of the discarded bytes; anything
        the wire delivered *after* the line's newline is preserved as the
        start of the next frame.
        """
        head = bytes(self._buffer[:_TAG_SNIFF_WINDOW])
        tail = bytes(self._buffer[-_TAG_SNIFF_WINDOW:])
        self._buffer.clear()
        self._scanned = 0
        while True:
            chunk = await self._reader.read(self.CHUNK)
            if not chunk:  # EOF inside the oversized line
                break
            newline = chunk.find(b"\n")
            if newline >= 0:
                tail = (tail + chunk[:newline])[-_TAG_SNIFF_WINDOW:]
                self._buffer += chunk[newline + 1 :]
                break
            tail = (tail + chunk)[-_TAG_SNIFF_WINDOW:]
        return _sniff_tag(head, tail)


# -- circuit codec --------------------------------------------------------------


def encode_circuit(aig: AIG) -> Dict[str, object]:
    """Node-exact JSON form of an AIG (indices and fanin order preserved)."""
    nodes: List[list] = []
    latch_next: List[list] = []
    for index in range(1, aig.num_nodes):
        kind = aig.node_kind(index)
        if kind == "input":
            nodes.append(["i", aig.input_name(index)])
        elif kind == "latch":
            node = aig.node(index)
            nodes.append(["l", aig.input_name(index), node.init_value])
            if node.next_state is not None:
                latch_next.append([index, node.next_state])
        elif kind == "and":
            fanin0, fanin1 = aig.fanins(index)
            nodes.append(["a", fanin0, fanin1])
        else:  # pragma: no cover - only node 0 is const
            raise ProtocolError(f"cannot encode node kind {kind!r}")
    return {
        "name": aig.name,
        "nodes": nodes,
        "latch_next": latch_next,
        "outputs": [[name, lit] for name, lit in aig.outputs],
    }


def decode_circuit(payload: object) -> AIG:
    """Rebuild the exact AIG :func:`encode_circuit` serialised.

    Node indices are asserted to replay identically (the builder strashes,
    but every encoded AND was already unique and fanin-sorted, so replay
    is the identity) — the foundation of the daemon's fingerprint-identity
    guarantee.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("malformed circuit: expected a JSON object")
    try:
        aig = AIG(str(payload.get("name", "wire")))
        for offset, entry in enumerate(payload["nodes"]):
            expected = lit_make(offset + 1)
            kind = entry[0]
            if kind == "i":
                lit = aig.add_input(str(entry[1]))
            elif kind == "l":
                lit = aig.add_latch(str(entry[1]), int(entry[2]))
            elif kind == "a":
                lit = aig.add_and(int(entry[1]), int(entry[2]))
            else:
                raise ProtocolError(f"malformed circuit: unknown node kind {kind!r}")
            if lit != expected:
                raise ProtocolError(
                    "malformed circuit: node replay diverged (the encoded "
                    "graph is not in canonical add_and form)"
                )
        for index, next_state in payload.get("latch_next", []):
            aig.set_latch_next(lit_make(int(index)), int(next_state))
        for name, lit in payload["outputs"]:
            aig.add_output(str(name), int(lit))
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"malformed circuit: {exc}") from None
    return aig


# -- request codec --------------------------------------------------------------


def encode_request(request: DecompositionRequest) -> Dict[str, object]:
    """A request's wire form.

    Execution placement (``Parallelism.jobs``/``backend``) and the cache
    *location* stay out of the frame deliberately: the daemon owns its
    executor and its cache directory; the client owns everything that
    defines the decomposition itself (operator, engines, budgets, seed,
    dedup, priority, search options).
    """
    return {
        "circuit": encode_circuit(request.circuit),
        "operator": request.operator,
        "engines": list(request.engines),
        "budgets": {
            "per_call": request.budgets.per_call,
            "per_output": request.budgets.per_output,
            "per_circuit": request.budgets.per_circuit,
        },
        "dedup": request.parallelism.dedup,
        "seed": request.parallelism.seed,
        "name": request.name,
        "priority": request.priority,
        "max_outputs": request.max_outputs,
        "extract": request.extract,
        "verify": request.verify,
        "extraction": request.extraction,
        "qbf_strategy": request.qbf_strategy,
        "qbf_backend": request.qbf_backend,
        "min_support": request.min_support,
        "max_support": request.max_support,
    }


def decode_request(
    payload: object, cache: Optional[CachePolicy] = None
) -> DecompositionRequest:
    """Rebuild a request; ``cache`` is the **server's** cache policy.

    Construction runs the full request validation, so a frame with a bad
    operator/engine/budget fails with the same one-line error a local
    caller would see — relayed to the client as an ``error`` frame.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("malformed submit: 'request' must be a JSON object")
    try:
        circuit = decode_circuit(payload["circuit"])
        budgets = payload.get("budgets") or {}
        dedup = bool(payload.get("dedup", True))
        policy = CachePolicy()
        if cache is not None and cache.directory is not None and dedup:
            policy = cache
        return DecompositionRequest(
            circuit=circuit,
            operator=str(payload["operator"]),
            engines=tuple(payload["engines"]),
            budgets=Budgets(
                per_call=budgets.get("per_call"),
                per_output=budgets.get("per_output"),
                per_circuit=budgets.get("per_circuit"),
            ),
            parallelism=Parallelism(dedup=dedup, seed=int(payload.get("seed", 0))),
            cache=policy,
            name=payload.get("name"),
            priority=float(payload.get("priority", 1.0)),
            max_outputs=payload.get("max_outputs"),
            extract=bool(payload.get("extract", True)),
            verify=bool(payload.get("verify", False)),
            extraction=str(payload.get("extraction", "quantification")),
            qbf_strategy=str(payload.get("qbf_strategy", "auto")),
            qbf_backend=str(payload.get("qbf_backend", "specialised")),
            min_support=int(payload.get("min_support", 2)),
            max_support=payload.get("max_support"),
        )
    except ProtocolError:
        raise
    except KeyError as exc:
        raise ProtocolError(f"malformed submit: missing field {exc}") from None
    except ReproError:
        # Request validation errors (bad operator/engine/budget): already
        # one-line; the daemon relays them verbatim.
        raise
    except Exception as exc:
        # Wrong-typed fields (engines: 5, budgets: [1], ...): the daemon
        # promises a one-line error reply, never a dead connection.
        raise ProtocolError(f"malformed submit: {exc}") from None


# -- function / report codecs ---------------------------------------------------


class WireFunction:
    """A decoded sub-function: semantic content without a host AIG.

    Carries exactly what report fingerprints compare — the ordered input
    names plus (for functions of up to :data:`WIRE_TABLE_MAX_INPUTS`
    inputs) the truth table — so a wire report fingerprints identically
    to the server-side original.  :meth:`to_function` materialises a real
    :class:`repro.aig.function.BooleanFunction` when callers want to
    compute with it.
    """

    def __init__(self, input_names: List[str], table: Optional[int]) -> None:
        self._input_names = list(input_names)
        self._table = table

    @property
    def num_inputs(self) -> int:
        return len(self._input_names)

    @property
    def input_names(self) -> List[str]:
        return list(self._input_names)

    def truth_table(self) -> int:
        if self._table is None:
            raise ProtocolError(
                f"no truth table travels for functions of more than "
                f"{WIRE_TABLE_MAX_INPUTS} inputs"
            )
        return self._table

    def to_function(self):
        """A real BooleanFunction built from the transported table."""
        from repro.aig.function import BooleanFunction

        return BooleanFunction.from_truth_table(
            self.truth_table(), self.num_inputs, self._input_names
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WireFunction(inputs={self._input_names!r})"


def _encode_function(function) -> Optional[Dict[str, object]]:
    if function is None:
        return None
    names = list(function.input_names)
    table = (
        function.truth_table()
        if function.num_inputs <= WIRE_TABLE_MAX_INPUTS
        else None
    )
    return {"inputs": names, "table": table}


def _decode_function(payload) -> Optional[WireFunction]:
    if payload is None:
        return None
    return WireFunction(
        [str(name) for name in payload["inputs"]], payload.get("table")
    )


def _encode_stats(stats: SearchStatistics) -> Dict[str, object]:
    return {
        "sat_calls": stats.sat_calls,
        "qbf_iterations": stats.qbf_iterations,
        "qbf_calls": stats.qbf_calls,
        "refinements": stats.refinements,
        "conflicts": stats.conflicts,
        "decisions": stats.decisions,
        "propagations": stats.propagations,
        "cache_hits": stats.cache_hits,
        "bound_sequence": list(stats.bound_sequence),
    }


def _decode_stats(payload: Dict[str, object]) -> SearchStatistics:
    return SearchStatistics(
        sat_calls=int(payload["sat_calls"]),
        qbf_iterations=int(payload["qbf_iterations"]),
        qbf_calls=int(payload["qbf_calls"]),
        refinements=int(payload["refinements"]),
        conflicts=int(payload["conflicts"]),
        decisions=int(payload["decisions"]),
        propagations=int(payload["propagations"]),
        cache_hits=int(payload["cache_hits"]),
        bound_sequence=[int(bound) for bound in payload["bound_sequence"]],
    )


def _encode_partition(partition: Optional[VariablePartition]):
    if partition is None:
        return None
    return {
        "xa": list(partition.xa),
        "xb": list(partition.xb),
        "xc": list(partition.xc),
    }


def _decode_partition(payload) -> Optional[VariablePartition]:
    if payload is None:
        return None
    return VariablePartition(
        tuple(str(name) for name in payload["xa"]),
        tuple(str(name) for name in payload["xb"]),
        tuple(str(name) for name in payload["xc"]),
    )


def encode_report(report: CircuitReport) -> Dict[str, object]:
    """A report's complete wire form (fingerprint-preserving)."""
    outputs = []
    for output in report.outputs:
        results = []
        for engine, result in output.results.items():
            results.append(
                {
                    "engine": engine,
                    "operator": result.operator,
                    "decomposed": result.decomposed,
                    "partition": _encode_partition(result.partition),
                    "fa": _encode_function(result.fa),
                    "fb": _encode_function(result.fb),
                    "optimum_proven": result.optimum_proven,
                    "cpu_seconds": result.cpu_seconds,
                    "timed_out": result.timed_out,
                    "stats": _encode_stats(result.stats),
                }
            )
        outputs.append(
            {
                "circuit": output.circuit,
                "output_name": output.output_name,
                "num_support": output.num_support,
                "results": results,
            }
        )
    return {
        "circuit": report.circuit,
        "operator": report.operator,
        "outputs": outputs,
        "total_cpu": dict(report.total_cpu),
        # Everything the scheduler puts in here is already JSON-safe
        # (ints, floats, strings, lists, None).
        "schedule": dict(report.schedule),
    }


def decode_report(payload: object) -> CircuitReport:
    """Rebuild a :class:`CircuitReport` from its wire form."""
    if not isinstance(payload, dict):
        raise ProtocolError("malformed report frame")
    try:
        report = CircuitReport(
            circuit=str(payload["circuit"]), operator=str(payload["operator"])
        )
        for entry in payload["outputs"]:
            output = OutputResult(
                circuit=str(entry["circuit"]),
                output_name=str(entry["output_name"]),
                num_support=int(entry["num_support"]),
            )
            for item in entry["results"]:
                engine = str(item["engine"])
                output.results[engine] = BiDecResult(
                    engine=engine,
                    operator=str(item["operator"]),
                    decomposed=bool(item["decomposed"]),
                    partition=_decode_partition(item["partition"]),
                    fa=_decode_function(item["fa"]),
                    fb=_decode_function(item["fb"]),
                    optimum_proven=bool(item["optimum_proven"]),
                    cpu_seconds=float(item["cpu_seconds"]),
                    timed_out=bool(item["timed_out"]),
                    stats=_decode_stats(item["stats"]),
                )
            report.outputs.append(output)
        report.total_cpu = {
            str(engine): float(seconds)
            for engine, seconds in payload.get("total_cpu", {}).items()
        }
        schedule = payload.get("schedule", {})
        report.schedule = dict(schedule) if isinstance(schedule, dict) else {}
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"malformed report: {exc}") from None
    return report
