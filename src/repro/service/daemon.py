"""The long-lived decomposition daemon: one warm session, many clients.

:class:`ReproService` is an asyncio server — on a Unix socket or a TCP
``host:port`` — multiplexing any number of concurrent client connections
onto **one** :class:`repro.api.aio.AsyncSession`, which means one
executor pool paid for once, one shared persistent cone cache, and
weighted fair scheduling across every client's in-flight requests (a
small request never waits for a monster another client submitted first;
it competes by priority).  TCP is what lets ``repro.service.router`` put
N of these daemons behind one consistent-hash front door.

Protocol behaviour (frames in :mod:`repro.service.protocol`):

* every ``submit`` is acknowledged with a ``queued`` event carrying the
  server-assigned request id (and the client's ``tag``), then streams
  ``running``/per-output progress events and finally one ``result`` frame
  (``done`` with the encoded report, or ``cancelled``/``failed``);
* malformed or version-mismatched frames get a one-line ``error`` reply
  and the connection stays up — one bad client cannot wedge the daemon,
  and neither can one failed request (its state machine records the
  error; everything else keeps running);
* a client that disconnects has its unfinished requests cancelled
  cooperatively — abandoned work must not hold workers.

``step serve --socket ADDRESS`` is the CLI front end;
:class:`ServiceThread` embeds a daemon in-process (tests, examples,
notebooks).
"""

from __future__ import annotations

import asyncio
import os
import stat as stat_module
import threading
from typing import Dict, Optional, Set

from repro.api.aio import AsyncRequestHandle, AsyncSession
from repro.api.config import CachePolicy
from repro.api.lifecycle import STATE_DONE, TERMINAL_STATES
from repro.api.registry import EngineRegistry
from repro.errors import (
    Backpressure,
    FrameTooLarge,
    ProtocolError,
    ReproError,
    ServiceError,
)
from repro.obs.exposition import MetricsEndpoint, render_prometheus
from repro.obs.quota import ClientAccount, QuotaPolicy
from repro.obs.registry import MetricsRegistry
from repro.obs.registry import default_registry as obs_registry
from repro.obs.registry import merge_snapshots
from repro.service.protocol import (
    PROTOCOL_VERSION,
    WIRE_LINE_LIMIT,
    FrameReader,
    check_client_frame,
    decode_frame,
    decode_request,
    encode_frame,
    encode_report,
    format_address,
    parse_address,
)


async def open_listener(handler, address: str):
    """Bind a JSON-lines listener on a Unix path or ``host:port``.

    Returns ``(server, resolved_address, unix_path_or_None)``; a TCP bind
    to port 0 resolves to the kernel-assigned port.  A pre-existing file
    at a Unix path is unlinked only when it *is* a socket (the stale
    leftover of a killed daemon); anything else — a user's regular file,
    a directory — is refused with a one-line :class:`ServiceError` and
    survives untouched.
    """
    kind, host, port = parse_address(address)
    if kind == "unix" and os.path.exists(host):
        # A previous daemon's stale socket file blocks bind(); a live
        # daemon would still hold it open, so probing with connect would
        # race — keep the policy simple: last starter wins.  Anything
        # that is NOT a socket was never ours to delete.
        if not stat_module.S_ISSOCK(os.stat(host).st_mode):
            raise ServiceError(
                f"refusing to serve on {host!r}: the path exists and is "
                "not a socket"
            )
        os.unlink(host)
    if kind == "tcp":
        server = await asyncio.start_server(handler, host=host or None, port=port)
        bound = server.sockets[0].getsockname()
        return server, format_address(bound[0], bound[1]), None
    server = await asyncio.start_unix_server(handler, path=host)
    return server, host, host


class ReproService:
    """The daemon: an asyncio server over one shared async session."""

    def __init__(
        self,
        jobs: int = 1,
        backend: str = "thread",
        cache_dir: Optional[str] = None,
        cache_max_entries: Optional[int] = None,
        registry: Optional[EngineRegistry] = None,
        line_limit: int = WIRE_LINE_LIMIT,
        quota: Optional[QuotaPolicy] = None,
        metrics_address: Optional[str] = None,
    ) -> None:
        self._jobs = jobs
        self._backend = backend
        self._registry = registry
        self._line_limit = line_limit
        self._cache_policy = (
            CachePolicy(directory=cache_dir, max_entries=cache_max_entries)
            if cache_dir is not None
            else None
        )
        self._session: Optional[AsyncSession] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[str] = None
        self._socket_path: Optional[str] = None
        self._socket_id = None
        self._connections = 0
        self._served_connections = 0
        self._conn_tasks: Set[asyncio.Task] = set()
        self._conn_writers: Set[asyncio.StreamWriter] = set()
        # Admission bounds (all unenforced by default) and this daemon's
        # PRIVATE metrics registry: per-client series and request spans
        # must not bleed between two services embedded in one process.
        # Substrate metrics (solver, caches, executors) land in the
        # process-wide registry; stats() merges both views.
        self.quota = quota if quota is not None else QuotaPolicy()
        self.metrics = MetricsRegistry()
        self._metrics_address = metrics_address
        self._metrics_endpoint: Optional[MetricsEndpoint] = None
        self._frames_total = self.metrics.counter(
            "repro_service_frames_total", "client frames handled, by type"
        )
        self._connections_total = self.metrics.counter(
            "repro_service_connections_total", "client connections accepted"
        )
        self._backpressure_total = self.metrics.counter(
            "repro_service_backpressure_total",
            "submits rejected by quota, by which bound fired",
        )
        self._errors_total = self.metrics.counter(
            "repro_service_errors_total", "error frames sent to clients"
        )
        # client id -> running account; kept after disconnect so the
        # stats frame stays a complete history of who the daemon served.
        self._accounts: Dict[str, ClientAccount] = {}
        # client id -> that connection's ``owned`` mapping (live view used
        # to compute per-client in-flight counts for quotas and stats).
        self._owned_of: Dict[str, Dict[int, Optional[str]]] = {}
        self._live_clients: Set[str] = set()

    @property
    def session(self) -> Optional[AsyncSession]:
        return self._session

    @property
    def address(self) -> Optional[str]:
        """The bound address: the Unix path, or the **resolved**
        ``host:port`` (a TCP bind to port 0 reports the kernel's pick)."""
        return self._address

    # -- lifecycle ----------------------------------------------------------------

    async def start(self, address: str) -> asyncio.AbstractServer:
        """Bind a Unix path or ``host:port`` and start accepting.

        A pre-existing file at a Unix path is unlinked only when it *is*
        a socket (the stale leftover of a killed daemon); pointing
        ``step serve`` at a regular file is refused with a one-line
        :class:`ServiceError` and the file survives.
        """
        if self._server is not None:
            raise ServiceError("the service is already serving")
        self._server, self._address, self._socket_path = await open_listener(
            self._handle_connection, address
        )
        # No await between binding and building the session: connection
        # handlers only run once control returns to the loop, so every
        # handler sees a live session.
        self._session = AsyncSession(
            registry=self._registry,
            jobs=self._jobs,
            backend=self._backend,
            metrics=self.metrics,
        )
        if self._metrics_address is not None:
            self._metrics_endpoint = MetricsEndpoint(
                lambda: render_prometheus(self.metrics_snapshot())
            )
            await self._metrics_endpoint.start(self._metrics_address)
        if self._socket_path is not None:
            # Identity of OUR bind: shutdown must never unlink a socket a
            # newer daemon re-bound on the same path (last-starter-wins).
            try:
                stat = os.stat(self._socket_path)
                self._socket_id = (stat.st_dev, stat.st_ino)
            except OSError:  # pragma: no cover
                self._socket_id = None
        return self._server

    @property
    def metrics_address(self) -> Optional[str]:
        """The bound scrape address, when ``--metrics`` is serving."""
        endpoint = self._metrics_endpoint
        return endpoint.address if endpoint is not None else None

    async def aclose(self) -> None:
        """Stop accepting, drop the socket file, close the shared session."""
        if self._metrics_endpoint is not None:
            await self._metrics_endpoint.aclose()
            self._metrics_endpoint = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # EOF still-connected clients so their handlers run their own
        # cleanup and exit, instead of being cancelled (noisily) at
        # event-loop teardown.  Must happen while the session is still
        # open: handler cleanup cancels and forgets owned requests.
        # repro: allow[DET-SET-ITER] shutdown close order is irrelevant and StreamWriters are unsortable; nothing downstream observes it
        for conn_writer in list(self._conn_writers):
            conn_writer.close()
        if self._conn_tasks:
            await asyncio.wait(self._conn_tasks, timeout=5)
        if self._session is not None:
            await self._session.aclose()
        if self._socket_path is not None:
            try:
                stat = os.stat(self._socket_path)
                if self._socket_id == (stat.st_dev, stat.st_ino):
                    os.unlink(self._socket_path)
            except OSError:
                pass  # already gone, or replaced by a newer daemon
        self._socket_path = None
        self._address = None

    async def serve_forever(self, address: str) -> None:
        """Run until cancelled (the CLI entry point)."""
        server = await self.start(address)
        try:
            async with server:
                await server.serve_forever()
        finally:
            await self.aclose()

    def metrics_snapshot(self) -> Dict[str, object]:
        """This daemon's full metric view: the process-wide substrate
        registry (solver work, caches, executors) merged with its own
        per-service registry (spans, frames, per-client series)."""
        return merge_snapshots(
            [obs_registry().snapshot(), self.metrics.snapshot()]
        )

    def _inflight_of(self, owned: Dict[int, Optional[str]]) -> int:
        """How many of a connection's requests are still non-terminal.

        ``owned`` values stay ``None`` until the pump delivers a result,
        but a cancel can terminate a request before then — count against
        the session's live states so quota slots free the moment a
        request is terminal, not when its result frame flushes.
        """
        states = self._session.status()
        count = 0
        for request_id, delivered in owned.items():
            if delivered is not None:
                continue
            state = states.get(request_id)
            if state is not None and state not in TERMINAL_STATES:
                count += 1
        return count

    def _pending_total(self) -> int:
        """Non-terminal requests across every connection (the accept
        queue depth ``max_pending`` bounds)."""
        return sum(
            1
            for state in self._session.status().values()
            if state not in TERMINAL_STATES
        )

    def stats(self) -> Dict[str, object]:
        """Service-level counters layered over the session's.

        Version 2 of the stats payload (protocol v3): adds the ``obs``
        metric snapshot (counter/gauge/histogram series with
        p50/p90/p99), per-client ``clients`` accounting and the
        configured ``quotas``.
        """
        counters: Dict[str, object] = dict(self._session.stats())
        counters["stats_version"] = 2
        counters["protocol"] = PROTOCOL_VERSION
        counters["connections"] = self._connections
        counters["served_connections"] = self._served_connections
        counters["states"] = dict(self._session.status())
        counters["quotas"] = {
            "max_inflight_per_client": self.quota.max_inflight_per_client,
            "max_pending": self.quota.max_pending,
            "cache_write_budget": self.quota.cache_write_budget,
        }
        counters["clients"] = {
            client: self._accounts[client].stats(
                self._inflight_of(self._owned_of.get(client, {}))
            )
            for client in sorted(self._accounts)
        }
        counters["obs"] = self.metrics_snapshot()
        return counters

    # -- one connection -----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        self._served_connections += 1
        self._connections_total.inc()
        # The connection's client identity: stable for its lifetime and
        # unique for the daemon's (the obs label and quota key).
        client = f"c{self._served_connections}"
        account = self._accounts.setdefault(client, ClientAccount(client))
        self._live_clients.add(client)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        write_lock = asyncio.Lock()
        # id -> final state once the pump delivered a result (None while
        # in flight); the honest answer for a late cancel of a request
        # whose session handle was already forgotten.
        owned: Dict[int, Optional[str]] = {}
        self._owned_of[client] = owned
        pumps: Set[asyncio.Task] = set()

        async def send(frame: Dict[str, object]) -> None:
            async with write_lock:
                writer.write(encode_frame(frame))
                await writer.drain()

        frames = FrameReader(reader, limit=self._line_limit)
        try:
            await send(
                {"type": "hello", "v": PROTOCOL_VERSION, "server": "repro-service"}
            )
            while True:
                try:
                    line = await frames.readline()
                except FrameTooLarge as exc:
                    # The oversized line was discarded in full — the stream
                    # is positioned at the next frame, so the "malformed
                    # frames get one-line error replies" contract holds
                    # here too (tagged when the tag could be recovered).
                    await send(
                        self._tagged(
                            {
                                "type": "error",
                                "v": PROTOCOL_VERSION,
                                "error": str(exc),
                            },
                            exc.tag,
                        )
                    )
                    continue
                if not line:
                    break
                await self._handle_frame(line, send, owned, pumps, account)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections -= 1
            if task is not None:
                self._conn_tasks.discard(task)
            self._conn_writers.discard(writer)
            # Cooperative cleanup: work nobody is listening for is work
            # stolen from connected clients.
            for request_id in owned:
                handle = self._session.handle(request_id)
                if handle is not None and not handle.ticket.terminal:
                    handle.cancel()
            # repro: allow[DET-SET-ITER] cancellation order of dead pumps is irrelevant; tasks are unsortable and no result depends on it
            for pump in pumps:
                pump.cancel()
            # The pumps normally forget() after their result frame; the
            # ones just cancelled never will, so drop this connection's
            # terminal requests here (cancel() above is synchronous, so
            # cancelled requests are terminal already — non-terminal ones
            # still have jobs in flight and are forgotten by forget()'s
            # own terminal guard once the scheduler releases them).
            for request_id in owned:
                self._session.forget(request_id)
            # Account hygiene: idle connections leave no record; active
            # ones keep theirs for the stats frame, bounded so an
            # unbounded connection stream cannot grow the daemon forever.
            self._live_clients.discard(client)
            if account.submitted == 0 and account.rejected == 0:
                self._accounts.pop(client, None)
                self._owned_of.pop(client, None)
            else:
                self._prune_accounts()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_frame(self, line, send, owned, pumps, account) -> None:
        tag = None
        try:
            frame = decode_frame(line)
            tag = frame.get("tag")
            frame_type = check_client_frame(frame)
            self._frames_total.inc(type=frame_type)
            if frame_type == "ping":
                await send(self._tagged({"type": "pong", "v": PROTOCOL_VERSION}, tag))
            elif frame_type == "stats":
                await send(
                    self._tagged(
                        {
                            "type": "stats",
                            "v": PROTOCOL_VERSION,
                            "stats": self.stats(),
                        },
                        tag,
                    )
                )
            elif frame_type == "cancel":
                await self._handle_cancel(frame, send, owned, tag)
            else:  # submit
                await self._handle_submit(frame, send, owned, pumps, tag, account)
        except ReproError as exc:
            # ProtocolError (malformed/mismatched frames) and request
            # validation errors alike: one line back, connection lives on.
            # Recoverable rejections carry a machine-readable "code" (a
            # Backpressure reply means "retry later", not "broken frame").
            code = getattr(exc, "code", None)
            self._errors_total.inc()
            if isinstance(exc, Backpressure):
                account.rejected += 1
                self._backpressure_total.inc(quota=exc.quota or "unknown")
            await send(
                self._tagged(
                    {
                        "type": "error",
                        "v": PROTOCOL_VERSION,
                        "error": str(exc),
                        **({} if code is None else {"code": code}),
                    },
                    tag,
                )
            )

    #: Disconnected-client accounts retained for the stats frame.
    _MAX_RETAINED_ACCOUNTS = 1024

    def _prune_accounts(self) -> None:
        if len(self._accounts) <= self._MAX_RETAINED_ACCOUNTS:
            return
        # Oldest disconnected clients go first (ids are "c<N>", N rising).
        for client in sorted(self._accounts, key=lambda name: int(name[1:])):
            if client in self._live_clients:
                continue
            del self._accounts[client]
            self._owned_of.pop(client, None)
            if len(self._accounts) <= self._MAX_RETAINED_ACCOUNTS:
                return

    @staticmethod
    def _tagged(frame: Dict[str, object], tag) -> Dict[str, object]:
        if tag is not None:
            frame["tag"] = tag
        return frame

    async def _handle_submit(self, frame, send, owned, pumps, tag, account) -> None:
        # Admission FIRST, before any decode or planning: a rejected
        # submit must leave zero trace in the session/scheduler, so the
        # surviving requests' execution (and fingerprints) are exactly
        # what they would have been had the rejected frame never arrived.
        self.quota.admit(
            account.client, self._inflight_of(owned), self._pending_total()
        )
        # Cache-write budget: an exhausted client still runs (results are
        # cache-independent by construction) but without the persistent
        # cache, so it cannot keep growing the shared snapshot.
        cache_policy = self._cache_policy
        if self.quota.cache_writes_exhausted(account.persistent_saved):
            cache_policy = None
            account.cache_throttled += 1
        # Decode (node-by-node AIG rebuild) and submit (cone planning,
        # persistent-cache warm) are CPU work: run them off-loop so one
        # client's large circuit never stalls other connections' frames.
        loop = asyncio.get_running_loop()
        request = await loop.run_in_executor(
            None, decode_request, frame.get("request"), cache_policy
        )
        handle = await loop.run_in_executor(None, self._session.submit, request)
        owned[handle.id] = None
        account.submitted += 1
        await send(
            self._tagged(
                {
                    "type": "event",
                    "v": PROTOCOL_VERSION,
                    "id": handle.id,
                    "name": handle.name,
                    "state": "queued",
                },
                tag,
            )
        )
        pump = asyncio.ensure_future(
            self._pump_request(handle, send, owned, account)
        )
        pumps.add(pump)
        pump.add_done_callback(pumps.discard)

    async def _handle_cancel(self, frame, send, owned, tag) -> None:
        request_id = frame.get("id")
        if not isinstance(request_id, int) or request_id not in owned:
            raise ProtocolError(
                f"cancel: unknown request id {request_id!r} for this connection"
            )
        handle = self._session.handle(request_id)
        if handle is not None:
            cancelled = handle.cancel()
            state = handle.state
        else:
            # Already finished and forgotten: report the real terminal
            # state the pump delivered, never a fictitious "cancelled".
            cancelled = False
            state = owned.get(request_id) or "done"
        await send(
            self._tagged(
                {
                    "type": "event",
                    "v": PROTOCOL_VERSION,
                    "id": request_id,
                    "state": state,
                    "cancelled": cancelled,
                },
                tag,
            )
        )

    async def _pump_request(
        self, handle: AsyncRequestHandle, send, owned, account
    ) -> None:
        """Relay one request's lifecycle to its connection, then forget it."""
        try:
            async for event in handle.events():
                if event["type"] == "record":
                    await send(
                        {
                            "type": "event",
                            "v": PROTOCOL_VERSION,
                            "id": handle.id,
                            "state": "running",
                            "output": event["output"],
                        }
                    )
                    continue
                state = event["state"]
                if state not in TERMINAL_STATES:
                    await send(
                        {
                            "type": "event",
                            "v": PROTOCOL_VERSION,
                            "id": handle.id,
                            "state": state,
                        }
                    )
                    continue
                result: Dict[str, object] = {
                    "type": "result",
                    "v": PROTOCOL_VERSION,
                    "id": handle.id,
                    "state": state,
                }
                if state == STATE_DONE:
                    report = handle.ticket.report
                    result["report"] = encode_report(report)
                    # Persistent-cache writes this request caused, charged
                    # against the client's cache_write_budget.
                    saved = report.schedule.get("persistent_saved", 0)
                    if isinstance(saved, int) and saved > 0:
                        account.persistent_saved += saved
                elif handle.error:
                    result["error"] = handle.error
                owned[handle.id] = state
                await send(result)
                # The span closes when the result frame is flushed: its
                # "replied" mark and per-phase durations land in this
                # daemon's registry, labelled by client.
                handle.ticket.span.finish(self.metrics, client=account.client)
            self._session.forget(handle.id)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


class ServiceThread:
    """A daemon embedded in this process, on its own event-loop thread.

    The test suite, the examples and notebooks use this to get a real
    socket-speaking service without managing a subprocess::

        with ServiceThread("/tmp/repro.sock", jobs=2, backend="thread"):
            with ServiceClient("/tmp/repro.sock") as client:
                report = client.run(request)

    The address may equally be TCP (``"127.0.0.1:0"`` binds an ephemeral
    port; read the resolved one back from :attr:`address` after
    :meth:`start`).  ``backend="thread"`` (the default here) keeps
    plug-in engines registered in this process visible to the daemon's
    workers.
    """

    def __init__(self, address: str, **service_kwargs) -> None:
        service_kwargs.setdefault("backend", "thread")
        self.address = address
        self.service = ReproService(**service_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def socket_path(self) -> str:
        """Backwards-compatible alias of :attr:`address`."""
        return self.address

    def start(self) -> "ServiceThread":
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise ServiceError(
                f"service failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=30)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.service.start(self.address)
        except BaseException as exc:  # noqa: BLE001 - relayed to start()
            self._startup_error = exc
            self._started.set()
            return
        # Publish the *resolved* address (TCP port 0 → the kernel's pick)
        # before start() returns in the launching thread.
        self.address = self.service.address
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await self.service.aclose()
