"""The sharded service tier: one front door, N daemon shards.

:class:`ReproRouter` is an asyncio server that speaks the exact client
protocol of :class:`repro.service.daemon.ReproService` — same handshake,
same frame catalogue — while owning **no** execution substrate of its
own.  Every ``submit`` is forwarded to one of N configured ``step
serve`` shards over a persistent connection, chosen by **consistent
hashing of the request's canonical cone signature set**: the same
circuit (and every structural duplicate of it) always lands on the same
shard, so each shard's warm persistent cone cache specialises and the
fleet behaves like one logical cache N times the size of any single
daemon's.

Mechanics:

* **Routing key.**  :func:`request_route_key` decodes the submitted
  circuit and computes the fanin-commutative
  :func:`repro.aig.signature.canonical_cone_signature` of every primary
  output — the exact keys the shards' cone caches use — then buckets by
  the *dominant* signature (most outputs; digest order breaks ties).
  Constant-free circuits with no outputs fall back to the circuit name.
* **Id translation.**  The router assigns its own request ids.  A
  shard's ``queued`` ack teaches the router the shard-local id; every
  subsequent ``event``/``result`` frame is relayed with the shard-local
  id translated back to the router-global one, and ``cancel`` frames
  travel the other way.  ``stats`` aggregates numeric counters across
  shards (per-shard detail under ``"shards"``, router counters under
  ``"router"``).
* **Failover.**  A shard that disconnects mid-request has its in-flight
  requests re-submitted to the next shard on the hash ring (bounded by
  ``max_attempts``; exhaustion yields a ``failed`` result carrying the
  last shard error).  A health probe re-dials down shards every
  ``probe_interval`` seconds and re-admits them to the ring on success.

Because every shard individually guarantees fingerprint-identical
reports, a report served through the router is fingerprint-identical to
a solo ``Session.run()`` **regardless of which shard served it** — the
property that makes failover invisible to clients
(``tests/test_router.py`` and the CI service-smoke job assert it).

``step route --listen ADDR --shard ADDR --shard ADDR ...`` is the CLI
front end; :class:`RouterThread` embeds a router in-process (tests,
examples).
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import os
import threading
from collections import Counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.aig.function import BooleanFunction
from repro.aig.signature import canonical_cone_signature
from repro.errors import FrameTooLarge, ProtocolError, ReproError, ServiceError
from repro.obs.registry import SNAPSHOT_VERSION, merge_snapshots
from repro.service.daemon import open_listener
from repro.service.protocol import (
    PROTOCOL_VERSION,
    WIRE_LINE_LIMIT,
    FrameReader,
    check_client_frame,
    decode_circuit,
    decode_frame,
    encode_frame,
    parse_address,
)

#: Virtual points per shard on the hash ring.  Enough that removing one
#: shard spreads its keyspace over every survivor instead of dumping it
#: on a single neighbour.
RING_REPLICAS = 64


# -- routing key ----------------------------------------------------------------


def request_route_key(payload: object) -> Tuple[str, str]:
    """The (route key, display name) of a submit frame's request payload.

    The key is the dominant canonical cone signature digest across the
    circuit's primary outputs — dominant by output count, ties broken by
    digest order, so the key is a pure function of the circuit's
    structure (never of output order or construction history).  Raises
    :class:`ProtocolError` for payloads whose circuit does not decode,
    exactly as a shard would.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("malformed submit: 'request' must be a JSON object")
    try:
        circuit = decode_circuit(payload["circuit"])
    except KeyError:
        raise ProtocolError("malformed submit: missing field 'circuit'") from None
    name = str(payload.get("name") or circuit.name)
    digests: List[str] = []
    for index in range(len(circuit.outputs)):
        function = BooleanFunction.from_output(circuit, index)
        signature = canonical_cone_signature(
            function.aig, function.root, function.inputs
        )
        digests.append(str(signature[2]))
    if not digests:
        return f"circuit:{name}", name
    counts = Counter(digests)
    dominant = max(counts, key=lambda digest: (counts[digest], digest))
    return f"cone:{dominant}", name


def _ring_point(data: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


def build_ring(
    shards: Sequence[str], replicas: int = RING_REPLICAS
) -> List[Tuple[int, str]]:
    """The sorted consistent-hash ring: ``replicas`` points per shard.

    Points depend only on the shard address strings, so every router
    configured with the same shard set — in any order — routes every key
    identically (the determinism the per-shard warm caches rely on).
    """
    ring = [
        (_ring_point(f"{address}#{index}"), address)
        for address in shards
        for index in range(replicas)
    ]
    ring.sort()
    return ring


# -- one shard ------------------------------------------------------------------


class _ShardLink:
    """One persistent connection to a shard, owned by the router loop.

    Tagged round trips (submit/cancel/stats relays) resolve through
    :meth:`call`; untagged frames — the shard's progress events and
    results — flow to :meth:`ReproRouter._relay` for id translation.
    All state lives on the router's event loop; no locks beyond the
    write lock.
    """

    def __init__(self, router: "ReproRouter", address: str) -> None:
        self.address = address
        self.up = False
        #: shard-local request id -> _PendingRequest being relayed.
        self.routes: Dict[int, "_PendingRequest"] = {}
        self._router = router
        self._writer: Optional[asyncio.StreamWriter] = None
        self._frames: Optional[FrameReader] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._write_lock = asyncio.Lock()
        self._calls: Dict[str, Tuple[Optional[object], asyncio.Future]] = {}
        self._next_tag = 0
        self._closing = False

    async def connect(self) -> None:
        """Dial the shard and complete the versioned handshake."""
        kind, host, port = parse_address(self.address)
        if kind == "tcp":
            reader, writer = await asyncio.open_connection(
                host or "127.0.0.1", port
            )
        else:
            reader, writer = await asyncio.open_unix_connection(host)
        frames = FrameReader(reader, limit=self._router.line_limit)
        try:
            hello = decode_frame(await frames.readline())
        except ProtocolError:
            writer.close()
            raise ServiceError(
                f"shard {self.address} did not complete the handshake"
            ) from None
        if hello.get("type") != "hello" or hello.get("v") != PROTOCOL_VERSION:
            writer.close()
            raise ServiceError(
                f"shard {self.address} speaks protocol {hello.get('v')!r}, "
                f"this router speaks {PROTOCOL_VERSION}"
            )
        self._writer = writer
        self._frames = frames
        self.up = True
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def close(self) -> None:
        self._closing = True
        self.up = False
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._writer is not None:
            self._writer.close()

    async def call(self, frame: Dict[str, object], on_reply=None) -> dict:
        """One tagged round trip; ``on_reply`` runs synchronously in the
        reader (before any later frame is processed) when given."""
        if not self.up:
            raise ServiceError(f"shard {self.address} is down")
        self._next_tag += 1
        tag = f"r{self._next_tag}"
        frame = dict(frame)
        frame["tag"] = tag
        future = asyncio.get_running_loop().create_future()
        self._calls[tag] = (on_reply, future)
        try:
            await self._send(frame)
        except (OSError, ServiceError) as exc:
            self._calls.pop(tag, None)
            raise ServiceError(
                f"shard {self.address} went away mid-call: {exc}"
            ) from None
        return await future

    async def _send(self, frame: Dict[str, object]) -> None:
        if self._writer is None:
            raise ServiceError(f"shard {self.address} is down")
        async with self._write_lock:
            self._writer.write(encode_frame(frame))
            await self._writer.drain()

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._frames.readline()
                if not line:
                    raise ServiceError(
                        f"shard {self.address} closed the connection"
                    )
                frame = decode_frame(line)
                tag = frame.get("tag")
                if tag is not None:
                    entry = self._calls.pop(tag, None)
                    if entry is not None:
                        on_reply, future = entry
                        if on_reply is not None:
                            on_reply(frame)
                        if not future.done():
                            future.set_result(frame)
                    continue  # tagged frames are always direct replies
                await self._router._relay(self, frame)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - any loss of the stream
            self._fail(exc)

    def _fail(self, exc: BaseException) -> None:
        """The connection is gone: fail callers, hand work to failover."""
        if self._closing or not self.up:
            return
        self.up = False
        if self._writer is not None:
            self._writer.close()
        calls, self._calls = self._calls, {}
        for _, future in calls.values():
            if not future.done():
                future.set_exception(
                    ServiceError(f"shard {self.address} disconnected: {exc}")
                )
        self._router._on_shard_down(self, exc)


# -- one routed request ---------------------------------------------------------


class _PendingRequest:
    """One client submit on its way through (possibly several) shards."""

    __slots__ = (
        "global_id",
        "connection",
        "payload",
        "key",
        "name",
        "shard",
        "local_id",
        "attempts",
        "last_error",
        "cancel_requested",
        "done",
        "final_state",
    )

    def __init__(self, global_id, connection, payload, key, name) -> None:
        self.global_id = global_id
        self.connection = connection
        self.payload = payload
        self.key = key
        self.name = name
        self.shard: Optional[_ShardLink] = None
        self.local_id: Optional[int] = None
        self.attempts = 0
        self.last_error: Optional[str] = None
        self.cancel_requested = False
        self.done = False
        self.final_state: Optional[str] = None


class _ClientConnection:
    """One client of the router: a writer, its lock, its requests."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._lock = asyncio.Lock()
        #: router-global id -> _PendingRequest (kept after completion so
        #: a late cancel gets the honest terminal state, like the daemon).
        self.owned: Dict[int, _PendingRequest] = {}

    async def send(self, frame: Dict[str, object]) -> None:
        async with self._lock:
            self._writer.write(encode_frame(frame))
            await self._writer.drain()

    async def push(self, frame: Dict[str, object]) -> None:
        """A server-initiated frame: a vanished client is not an error."""
        try:
            await self.send(frame)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


# -- the router -----------------------------------------------------------------


class ReproRouter:
    """The consistent-hash front door over N ``step serve`` shards."""

    def __init__(
        self,
        shards: Sequence[str],
        max_attempts: int = 3,
        probe_interval: float = 1.0,
        replicas: int = RING_REPLICAS,
        line_limit: int = WIRE_LINE_LIMIT,
        stats_timeout: float = 5.0,
    ) -> None:
        if not shards:
            raise ServiceError("a router needs at least one shard address")
        if len(set(shards)) != len(shards):
            raise ServiceError(f"duplicate shard addresses in {list(shards)!r}")
        self.line_limit = line_limit
        self._links: Dict[str, _ShardLink] = {
            address: _ShardLink(self, address) for address in shards
        }
        self._ring = build_ring(shards, replicas=replicas)
        self._max_attempts = max_attempts
        self._probe_interval = probe_interval
        self._stats_timeout = stats_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[str] = None
        self._socket_path: Optional[str] = None
        self._probe_task: Optional[asyncio.Task] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._conn_writers: Set[asyncio.StreamWriter] = set()
        self._next_global_id = 0
        self._counters = {
            "routed": 0,
            "failovers": 0,
            "results": 0,
            "connections": 0,
            "served_connections": 0,
        }

    @property
    def address(self) -> Optional[str]:
        """The bound client-facing address (resolved for TCP port 0)."""
        return self._address

    @property
    def shards(self) -> List[str]:
        return list(self._links)

    def shard_for(self, key: str) -> Optional[str]:
        """The address the ring currently routes ``key`` to (diagnostics)."""
        link = self._pick(key)
        return link.address if link is not None else None

    # -- lifecycle ----------------------------------------------------------------

    async def start(self, listen_address: str) -> asyncio.AbstractServer:
        """Dial the shards, bind the client-facing listener, start probing.

        Shards that are down at start are tolerated (the probe re-admits
        them) as long as at least one is reachable.
        """
        if self._server is not None:
            raise ServiceError("the router is already serving")
        failures = []
        for link in self._links.values():
            try:
                await link.connect()
            except (OSError, ReproError) as exc:
                failures.append(f"{link.address}: {exc}")
        if not any(link.up for link in self._links.values()):
            raise ServiceError(
                "none of the configured shards is reachable — "
                + "; ".join(failures)
            )
        self._server, self._address, self._socket_path = await open_listener(
            self._handle_connection, listen_address
        )
        self._probe_task = asyncio.ensure_future(self._probe_loop())
        return self._server

    async def aclose(self) -> None:
        if self._probe_task is not None:
            self._probe_task.cancel()
            self._probe_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # EOF still-connected clients so their handlers run their own
        # cleanup and exit, instead of being cancelled (noisily) at
        # event-loop teardown.
        # repro: allow[DET-SET-ITER] shutdown close order is irrelevant and StreamWriters are unsortable; nothing downstream observes it
        for conn_writer in list(self._conn_writers):
            conn_writer.close()
        if self._conn_tasks:
            await asyncio.wait(self._conn_tasks, timeout=5)
        for link in self._links.values():
            await link.close()
        if self._socket_path is not None:
            try:
                os.unlink(self._socket_path)
            except OSError:
                pass
            self._socket_path = None
        self._address = None

    async def serve_forever(self, listen_address: str) -> None:
        """Run until cancelled (the CLI entry point)."""
        server = await self.start(listen_address)
        try:
            async with server:
                await server.serve_forever()
        finally:
            await self.aclose()

    # -- the ring -----------------------------------------------------------------

    def _pick(self, key: str, exclude: Sequence[str] = ()) -> Optional[_ShardLink]:
        """First *up* shard clockwise of the key's ring point."""
        if not self._ring:
            return None
        index = bisect.bisect(self._ring, (_ring_point(key), ""))
        for step in range(len(self._ring)):
            _, address = self._ring[(index + step) % len(self._ring)]
            link = self._links[address]
            if link.up and address not in exclude:
                return link
        return None

    async def _probe_loop(self) -> None:
        """Re-dial down shards; success re-admits them to the ring."""
        while True:
            await asyncio.sleep(self._probe_interval)
            for link in list(self._links.values()):
                if not link.up:
                    try:
                        await link.connect()
                    except (OSError, ReproError):
                        pass  # still down; next probe retries

    # -- client connections -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._counters["connections"] += 1
        self._counters["served_connections"] += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        conn = _ClientConnection(writer)
        frames = FrameReader(reader, limit=self.line_limit)
        tasks: List[asyncio.Task] = []
        try:
            await conn.send(
                {"type": "hello", "v": PROTOCOL_VERSION, "server": "repro-router"}
            )
            while True:
                try:
                    line = await frames.readline()
                except FrameTooLarge as exc:
                    await conn.send(
                        self._tagged(
                            {
                                "type": "error",
                                "v": PROTOCOL_VERSION,
                                "error": str(exc),
                            },
                            exc.tag,
                        )
                    )
                    continue
                if not line:
                    break
                task = await self._handle_frame(conn, line)
                if task is not None:
                    tasks.append(task)
                    tasks = [t for t in tasks if not t.done()]
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._counters["connections"] -= 1
            if task is not None:
                self._conn_tasks.discard(task)
            self._conn_writers.discard(writer)
            # A vanished client's work must not hold shard workers: relay
            # a cancel for everything still in flight and stop relaying.
            for pending in conn.owned.values():
                if pending.done:
                    continue
                pending.cancel_requested = True
                link, local_id = pending.shard, pending.local_id
                if link is not None and local_id is not None:
                    link.routes.pop(local_id, None)
                    asyncio.ensure_future(self._cancel_on_shard(link, local_id))
            conn.owned.clear()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _cancel_on_shard(self, link: _ShardLink, local_id: int) -> None:
        try:
            await link.call(
                {"type": "cancel", "v": PROTOCOL_VERSION, "id": local_id}
            )
        except (OSError, ReproError):
            pass  # the shard is gone; nothing left to cancel

    @staticmethod
    def _tagged(frame: Dict[str, object], tag) -> Dict[str, object]:
        if tag is not None:
            frame["tag"] = tag
        return frame

    async def _handle_frame(
        self, conn: _ClientConnection, line: bytes
    ) -> Optional[asyncio.Task]:
        tag = None
        try:
            frame = decode_frame(line)
            tag = frame.get("tag")
            frame_type = check_client_frame(frame)
            if frame_type == "ping":
                await conn.send(
                    self._tagged({"type": "pong", "v": PROTOCOL_VERSION}, tag)
                )
            elif frame_type == "stats":
                await self._handle_stats(conn, tag)
            elif frame_type == "cancel":
                await self._handle_cancel(conn, frame, tag)
            else:  # submit
                return await self._handle_submit(conn, frame, tag)
        except ReproError as exc:
            await conn.send(
                self._tagged(
                    {"type": "error", "v": PROTOCOL_VERSION, "error": str(exc)},
                    tag,
                )
            )
        return None

    # -- submit / dispatch / failover ---------------------------------------------

    async def _handle_submit(
        self, conn: _ClientConnection, frame: dict, tag
    ) -> asyncio.Task:
        # Decoding the circuit and hashing every output cone is CPU work:
        # run it off-loop so one client's monster circuit never stalls
        # other connections' frames (mirrors the daemon's submit path).
        loop = asyncio.get_running_loop()
        key, name = await loop.run_in_executor(
            None, request_route_key, frame.get("request")
        )
        self._next_global_id += 1
        pending = _PendingRequest(
            self._next_global_id, conn, frame.get("request"), key, name
        )
        conn.owned[pending.global_id] = pending
        # Ack with the router-global id immediately: the client has a
        # stable handle even if the first shard dies before acking.
        await conn.send(
            self._tagged(
                {
                    "type": "event",
                    "v": PROTOCOL_VERSION,
                    "id": pending.global_id,
                    "name": name,
                    "state": "queued",
                },
                tag,
            )
        )
        return asyncio.ensure_future(self._dispatch(pending))

    async def _dispatch(self, pending: _PendingRequest) -> None:
        """Bind the request to a shard; walk the ring on shard failure."""
        while True:
            if pending.done:
                return
            if pending.cancel_requested:
                await self._finish(pending, "cancelled")
                return
            if pending.attempts >= self._max_attempts:
                await self._finish(
                    pending,
                    "failed",
                    error=(
                        f"gave up after {pending.attempts} shard attempt(s); "
                        f"last shard error: {pending.last_error}"
                    ),
                )
                return
            link = self._pick(pending.key)
            if link is None:
                await self._finish(
                    pending,
                    "failed",
                    error=(
                        "no shard is up"
                        + (
                            f"; last shard error: {pending.last_error}"
                            if pending.last_error
                            else ""
                        )
                    ),
                )
                return
            pending.attempts += 1
            try:
                reply = await link.call(
                    {
                        "type": "submit",
                        "v": PROTOCOL_VERSION,
                        "request": pending.payload,
                    },
                    on_reply=lambda frame, link=link: self._bind(
                        link, frame, pending
                    ),
                )
            except ServiceError as exc:
                pending.last_error = str(exc)
                continue
            if reply.get("type") == "error":
                # The shard judged the request itself invalid (unknown
                # engine, bad budgets, ...) — not a shard failure, and
                # every shard would answer the same; don't retry.
                await self._finish(
                    pending, "failed", error=str(reply.get("error"))
                )
                return
            self._counters["routed"] += 1
            if pending.cancel_requested:
                # The client cancelled in the pre-bind window and already
                # holds our "cancelled: True" promise — honour it
                # deterministically, like the daemon cancelling a queued
                # request: drop the route (the shard's racing outcome is
                # no longer relayed), tell the shard, synthesise the
                # terminal result.
                if pending.local_id is not None:
                    link.routes.pop(pending.local_id, None)
                    asyncio.ensure_future(
                        self._cancel_on_shard(link, pending.local_id)
                    )
                await self._finish(pending, "cancelled")
            return

    def _bind(self, link: _ShardLink, reply: dict, pending: _PendingRequest) -> None:
        """Register the shard-local id — synchronously, inside the link
        reader, so no event of this request can outrun its route entry."""
        local_id = reply.get("id")
        if reply.get("type") == "event" and isinstance(local_id, int):
            pending.shard = link
            pending.local_id = local_id
            link.routes[local_id] = pending

    async def _finish(
        self, pending: _PendingRequest, state: str, error: Optional[str] = None
    ) -> None:
        """Deliver a router-synthesised terminal result to the client."""
        if pending.done:
            return
        pending.done = True
        pending.final_state = state
        self._counters["results"] += 1
        frame: Dict[str, object] = {
            "type": "result",
            "v": PROTOCOL_VERSION,
            "id": pending.global_id,
            "state": state,
        }
        if error is not None:
            frame["error"] = error
        await pending.connection.push(frame)

    def _on_shard_down(self, link: _ShardLink, exc: BaseException) -> None:
        """Failover: every request the dead shard held goes back on the
        ring (the dead shard is already excluded — it is marked down)."""
        routes, link.routes = link.routes, {}
        for pending in routes.values():
            if pending.done:
                continue
            pending.shard = None
            pending.local_id = None
            pending.last_error = f"shard {link.address} disconnected: {exc}"
            self._counters["failovers"] += 1
            asyncio.ensure_future(self._dispatch(pending))

    # -- relay / cancel / stats ---------------------------------------------------

    async def _relay(self, link: _ShardLink, frame: dict) -> None:
        """Translate a shard's untagged frame to router-global ids."""
        local_id = frame.get("id")
        pending = link.routes.get(local_id)
        if pending is None:
            return  # a finished or cancelled-away request's late frames
        out = dict(frame)
        out["id"] = pending.global_id
        if frame.get("type") == "result":
            link.routes.pop(local_id, None)
            state = str(frame.get("state"))
            if state == "cancelled" and not pending.cancel_requested:
                # Nobody on this side asked: the shard is shedding its
                # in-flight work (draining/shutting down).  Re-route
                # instead of relaying — a graceful `kill -TERM` of one
                # shard must lose no requests, exactly like a crash.
                pending.shard = None
                pending.local_id = None
                pending.last_error = (
                    f"shard {link.address} cancelled the request while "
                    "shutting down"
                )
                self._counters["failovers"] += 1
                asyncio.ensure_future(self._dispatch(pending))
                return
            pending.done = True
            pending.final_state = state
            self._counters["results"] += 1
        await pending.connection.push(out)

    async def _handle_cancel(self, conn: _ClientConnection, frame: dict, tag) -> None:
        global_id = frame.get("id")
        pending = (
            conn.owned.get(global_id) if isinstance(global_id, int) else None
        )
        if pending is None:
            raise ProtocolError(
                f"cancel: unknown request id {global_id!r} for this connection"
            )
        if pending.done:
            # Honest terminal state, never a fictitious "cancelled".
            await conn.send(
                self._tagged(
                    {
                        "type": "event",
                        "v": PROTOCOL_VERSION,
                        "id": global_id,
                        "state": pending.final_state or "done",
                        "cancelled": False,
                    },
                    tag,
                )
            )
            return
        if pending.shard is None:
            # Not bound to a shard yet (dispatch or failover in flight):
            # the dispatcher honours the flag and synthesises the result.
            pending.cancel_requested = True
            await conn.send(
                self._tagged(
                    {
                        "type": "event",
                        "v": PROTOCOL_VERSION,
                        "id": global_id,
                        "state": "queued",
                        "cancelled": True,
                    },
                    tag,
                )
            )
            return
        link, local_id = pending.shard, pending.local_id
        # Record that cancellation is the *client's* wish before the shard
        # answers: a "cancelled" result arriving for this request must be
        # relayed as the honest outcome, not mistaken for the shard
        # shedding work and revived by failover.
        pending.cancel_requested = True
        try:
            reply = await link.call(
                {"type": "cancel", "v": PROTOCOL_VERSION, "id": local_id}
            )
        except ServiceError:
            # The shard died under the cancel; failover would only revive
            # work the client just told us to kill.
            pending.cancel_requested = True
            await conn.send(
                self._tagged(
                    {
                        "type": "event",
                        "v": PROTOCOL_VERSION,
                        "id": global_id,
                        "state": "queued",
                        "cancelled": True,
                    },
                    tag,
                )
            )
            return
        await conn.send(
            self._tagged(
                {
                    "type": "event",
                    "v": PROTOCOL_VERSION,
                    "id": global_id,
                    "state": reply.get("state"),
                    "cancelled": bool(reply.get("cancelled")),
                },
                tag,
            )
        )

    def _own_snapshot(self) -> Dict[str, object]:
        """The router's counters in metric-snapshot form, so they merge
        with (and render like) the shards' ``obs`` payloads."""
        return {
            "version": SNAPSHOT_VERSION,
            "counters": {
                f"repro_router_{name}_total": {
                    "help": f"router {name}",
                    "values": {"": value},
                }
                for name, value in sorted(self._counters.items())
            },
            "gauges": {
                "repro_router_shards_up": {
                    "help": "shards currently reachable",
                    "values": {
                        "": sum(link.up for link in self._links.values())
                    },
                }
            },
            "histograms": {},
        }

    # Per-shard scalar keys that must NOT be summed into the aggregate
    # (versions are identities, not quantities).
    _NO_AGGREGATE = frozenset({"protocol", "stats_version"})

    async def _handle_stats(self, conn: _ClientConnection, tag) -> None:
        aggregate: Dict[str, object] = {}
        shards: Dict[str, object] = {}
        obs_snapshots: List[Dict[str, object]] = [self._own_snapshot()]
        clients: Dict[str, object] = {}
        quotas: Dict[str, object] = {}
        for address in sorted(self._links):
            link = self._links[address]
            if not link.up:
                shards[address] = {"up": False}
                continue
            try:
                # A shard that dies (or wedges) mid-scrape must cost the
                # client its numbers only, never the reply: bound the
                # round trip and report the shard down.
                reply = await asyncio.wait_for(
                    link.call({"type": "stats", "v": PROTOCOL_VERSION}),
                    timeout=self._stats_timeout,
                )
            except (ServiceError, asyncio.TimeoutError):
                shards[address] = {"up": False}
                continue
            stats = reply.get("stats") if reply.get("type") == "stats" else None
            if not isinstance(stats, dict):
                shards[address] = {"up": True}
                continue
            shards[address] = {"up": True, **stats}
            for key, value in stats.items():
                if key in self._NO_AGGREGATE:
                    continue
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                aggregate[key] = aggregate.get(key, 0) + value
            shard_obs = stats.get("obs")
            if isinstance(shard_obs, dict):
                obs_snapshots.append(shard_obs)
            shard_clients = stats.get("clients")
            if isinstance(shard_clients, dict):
                # Shards number clients independently; the address prefix
                # keeps every series distinct in the fleet view.
                for client in sorted(shard_clients):
                    clients[f"{address}/{client}"] = shard_clients[client]
            shard_quotas = stats.get("quotas")
            if isinstance(shard_quotas, dict):
                quotas[address] = shard_quotas
        stats_frame: Dict[str, object] = dict(aggregate)
        stats_frame["stats_version"] = 2
        stats_frame["protocol"] = PROTOCOL_VERSION
        stats_frame["router"] = {
            **self._counters,
            "shards_up": sum(link.up for link in self._links.values()),
            "shards_down": sum(not link.up for link in self._links.values()),
        }
        stats_frame["shards"] = shards
        stats_frame["obs"] = merge_snapshots(obs_snapshots)
        stats_frame["clients"] = clients
        # Per-shard quota configuration, keyed by address: a fleet does
        # not have one quota, each shard enforces its own.
        stats_frame["quotas"] = quotas
        await conn.send(
            self._tagged(
                {"type": "stats", "v": PROTOCOL_VERSION, "stats": stats_frame},
                tag,
            )
        )


class RouterThread:
    """A router embedded in this process, on its own event-loop thread.

    The sibling of :class:`repro.service.daemon.ServiceThread` — tests
    and examples stand up a whole shard fleet in one process::

        shard_a = ServiceThread("127.0.0.1:0", jobs=2).start()
        shard_b = ServiceThread("127.0.0.1:0", jobs=2).start()
        with RouterThread("127.0.0.1:0", [shard_a.address, shard_b.address]) as front:
            with ServiceClient(front.address) as client:
                report = client.run(request)
    """

    def __init__(
        self, listen_address: str, shards: Sequence[str], **router_kwargs
    ) -> None:
        self.address = listen_address
        self.router = ReproRouter(shards, **router_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-router", daemon=True
        )

    def __enter__(self) -> "RouterThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def start(self) -> "RouterThread":
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise ServiceError(
                f"router failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=30)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.router.start(self.address)
        except BaseException as exc:  # noqa: BLE001 - relayed to start()
            self._startup_error = exc
            self._started.set()
            return
        self.address = self.router.address
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await self.router.aclose()
