"""repro.service — the long-lived decomposition daemon, router and clients.

Four modules put the session API on a stream socket (Unix or TCP):

* :mod:`repro.service.protocol` — the versioned JSON-lines wire protocol
  (``submit`` / ``event`` / ``result`` / ``cancel`` / ``stats`` frames)
  plus fingerprint-preserving codecs for circuits, requests and reports,
  address parsing and the size-capped :class:`FrameReader`;
* :mod:`repro.service.daemon` — :class:`ReproService`, an asyncio server
  multiplexing any number of client connections onto ONE
  :class:`repro.api.aio.AsyncSession` (one warm executor pool, one
  persistent cone cache, fair scheduling across all clients);
* :mod:`repro.service.router` — :class:`ReproRouter`, the sharded tier:
  a consistent-hash front door routing each request to one of N daemon
  shards by canonical cone signature, with failover and health probing;
* :mod:`repro.service.client` — :class:`ServiceClient`, a thin *blocking*
  client so existing synchronous scripts run unchanged against a remote
  session (``client.run(request)`` mirrors ``Session.run(request)``) —
  pointed at a daemon or a router alike.

The CLI front ends are ``step serve``, ``step route`` and ``step
client``; the protocol spec and deployment notes live in
``docs/service.md``.
"""

from repro.service.client import ServiceClient
from repro.service.daemon import ReproService, ServiceThread
from repro.service.protocol import PROTOCOL_VERSION, WIRE_LINE_LIMIT
from repro.service.router import ReproRouter, RouterThread

__all__ = [
    "PROTOCOL_VERSION",
    "WIRE_LINE_LIMIT",
    "ReproRouter",
    "ReproService",
    "RouterThread",
    "ServiceClient",
    "ServiceThread",
]
