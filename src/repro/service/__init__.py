"""repro.service — the long-lived decomposition daemon and its clients.

Three modules put the session API on a Unix socket:

* :mod:`repro.service.protocol` — the versioned JSON-lines wire protocol
  (``submit`` / ``event`` / ``result`` / ``cancel`` / ``stats`` frames)
  plus fingerprint-preserving codecs for circuits, requests and reports;
* :mod:`repro.service.daemon` — :class:`ReproService`, an asyncio server
  multiplexing any number of client connections onto ONE
  :class:`repro.api.aio.AsyncSession` (one warm executor pool, one
  persistent cone cache, fair scheduling across all clients);
* :mod:`repro.service.client` — :class:`ServiceClient`, a thin *blocking*
  client so existing synchronous scripts run unchanged against a remote
  session (``client.run(request)`` mirrors ``Session.run(request)``).

The CLI front ends are ``step serve`` and ``step client``; the protocol
spec and deployment notes live in ``docs/service.md``.
"""

from repro.service.client import ServiceClient
from repro.service.daemon import ReproService, ServiceThread
from repro.service.protocol import PROTOCOL_VERSION

__all__ = [
    "PROTOCOL_VERSION",
    "ReproService",
    "ServiceClient",
    "ServiceThread",
]
