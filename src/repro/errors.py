"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish parse errors, solver resource limits and
malformed problem specifications.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class ParseError(ReproError):
    """A circuit or formula file could not be parsed.

    Attributes
    ----------
    filename:
        Name of the offending file (or ``"<string>"`` for in-memory input).
    lineno:
        1-based line number where the problem was detected, or ``None``.
    """

    def __init__(self, message: str, filename: str = "<string>", lineno: int | None = None):
        self.filename = filename
        self.lineno = lineno
        location = filename if lineno is None else f"{filename}:{lineno}"
        super().__init__(f"{location}: {message}")


class CnfError(ReproError):
    """A CNF formula or clause is malformed (e.g. a zero literal)."""


class SolverError(ReproError):
    """The SAT or QBF solver was used incorrectly (e.g. invalid literal)."""


class ResourceLimitReached(ReproError):
    """A time, conflict or iteration budget was exhausted before completion."""


class TimeoutReached(ResourceLimitReached):
    """A wall-clock timeout expired before the computation finished."""


class ConflictLimitReached(ResourceLimitReached):
    """The SAT solver hit its conflict budget before reaching a verdict."""


class AigError(ReproError):
    """Invalid operation on an And-Inverter Graph."""


class BddError(ReproError):
    """Invalid operation on a BDD manager or node."""


class DecompositionError(ReproError):
    """A bi-decomposition request is inconsistent or cannot be honoured."""


class VerificationError(ReproError):
    """An extracted decomposition failed the independent equivalence check."""


class ProtocolError(ReproError):
    """A malformed or version-incompatible service wire frame."""


class FrameTooLarge(ProtocolError):
    """A wire line exceeded the per-frame size limit.

    The oversized line is discarded in full, so the connection remains
    usable; ``tag`` carries the client's correlation token when it could
    be recovered from the discarded bytes (best effort), letting servers
    answer with a *tagged* ``error`` frame.
    """

    def __init__(self, limit: int, tag: object = None) -> None:
        self.limit = limit
        self.tag = tag
        super().__init__(
            f"frame exceeds the {limit}-byte line limit; frame discarded"
        )


class ServiceError(ReproError):
    """The decomposition service (or a client's use of it) failed."""


class Backpressure(ServiceError):
    """A per-client quota or accept-queue bound rejected a submit.

    Recoverable by design: the connection stays up and the daemon keeps
    serving the client's in-flight requests — the client should retry the
    rejected submit once one of them completes.  On the wire this travels
    as a tagged ``error`` frame carrying ``"code": "backpressure"`` so
    clients can distinguish it (and retry) without string-matching the
    message; :class:`repro.service.client.ServiceClient` re-raises it as
    this type.

    ``quota`` names which bound rejected the request
    (``"max_inflight_per_client"`` or ``"max_pending"``) and ``limit`` its
    configured value, when known.
    """

    code = "backpressure"

    def __init__(
        self,
        message: str,
        quota: str | None = None,
        limit: int | None = None,
    ) -> None:
        self.quota = quota
        self.limit = limit
        super().__init__(message)


class UsageError(ReproError):
    """Invalid command-line usage (bad paths/flags, not a failed run).

    The CLI maps these to exit status 2 — mirroring argparse's own usage
    failures — so scripts can tell "you called it wrong" (2) apart from
    "it ran and found problems" (1).
    """

    exit_code = 2
