"""Boolean function bi-decomposition (the paper's contribution).

Public entry points:

* :class:`repro.core.engine.BiDecomposer` — decompose a single function or
  every primary output of a circuit with any of the engines the paper
  compares (LJH, STEP-MG, STEP-QD, STEP-QB, STEP-QDB, plus the BDD
  baseline).
* :class:`repro.core.partition.VariablePartition` — a partition
  ``X = {XA | XB | XC}`` with the paper's quality metrics (disjointness,
  balancedness, weighted cost).
* :mod:`repro.core.checks` — the SAT decomposability checks
  (Proposition 1 and its AND/XOR analogues).
* :mod:`repro.core.qbf_bidec` — the QBF-based engines with optimum search.
"""

from repro.core.partition import VariablePartition
from repro.core.spec import OR, AND, XOR, OPERATORS
from repro.core.result import BiDecResult, OutputResult, CircuitReport
from repro.core.engine import BiDecomposer, EngineOptions
from repro.core.executors import (
    BACKENDS,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.core.scheduler import BatchScheduler, OutputJob, SuiteScheduler, SuiteUnit
from repro.core.network import DecompositionNode, RecursiveDecomposer, network_to_aig
from repro.core.verify import verify_decomposition

__all__ = [
    "VariablePartition",
    "OR",
    "AND",
    "XOR",
    "OPERATORS",
    "BiDecResult",
    "OutputResult",
    "CircuitReport",
    "BiDecomposer",
    "EngineOptions",
    "BACKENDS",
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BatchScheduler",
    "OutputJob",
    "SuiteScheduler",
    "SuiteUnit",
    "DecompositionNode",
    "RecursiveDecomposer",
    "network_to_aig",
    "verify_decomposition",
]
