"""The LJH baseline (Lee–Jiang–Hung, DAC'08) — heuristic partition search.

The original ``Bi-dec`` tool derives a variable partition with SAT: it seeds
``XA``/``XB`` with a pair of variables, keeps everything else shared, and
greedily grows the private sets while the decomposability check stays
unsatisfiable, steering the growth with information from the unsatisfiable
cores.  The result is a *valid* but not necessarily optimal partition — the
behaviour the paper's Table I/II quantifies against the QBF engines.

This reimplementation follows that scheme:

1. enumerate seed pairs ``(xi, xj)`` (in support order);
2. for the first decomposable seed, greedily move shared variables into
   ``XA`` or ``XB`` whenever the check remains UNSAT, preferring the larger
   quality gain and skipping variables whose equality the last core proved
   necessary;
3. return the grown partition (or report the function non-decomposable when
   no seed pair works).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.checks import CheckOutcome, RelaxationChecker
from repro.core.partition import VariablePartition
from repro.core.result import BiDecResult, SearchStatistics
from repro.core.spec import ENGINE_LJH, check_operator
from repro.utils.timer import Deadline, Stopwatch, TruncationWitness


def ljh_find_partition(
    checker: RelaxationChecker,
    deadline: Optional[Deadline] = None,
    stats: Optional[SearchStatistics] = None,
    witness: Optional[TruncationWitness] = None,
) -> Optional[VariablePartition]:
    """Search for a non-trivial decomposable partition, LJH style.

    ``witness`` (when given) records whether the search was cut short by
    the deadline, so the caller can distinguish a truncated search from one
    that completed just before expiry.
    """
    variables = checker.variables
    stats = stats if stats is not None else SearchStatistics()
    witness = witness if witness is not None else TruncationWitness()

    seed = _find_seed(checker, variables, deadline, stats, witness)
    if seed is None:
        return None
    xa, xb = {seed[0]}, {seed[1]}
    xc = [name for name in variables if name not in (seed[0], seed[1])]

    blocked_a: Set[str] = set()
    blocked_b: Set[str] = set()
    for name in list(xc):
        if witness.check(deadline):
            break
        # Try the block that currently improves balancedness the most first.
        order = ("A", "B") if len(xa) <= len(xb) else ("B", "A")
        placed = False
        for block in order:
            if block == "A" and name in blocked_a:
                continue
            if block == "B" and name in blocked_b:
                continue
            candidate_a = xa | {name} if block == "A" else xa
            candidate_b = xb | {name} if block == "B" else xb
            outcome = _check(checker, variables, candidate_a, candidate_b, deadline, stats)
            if outcome.decomposable:
                xa, xb = set(candidate_a), set(candidate_b)
                _absorb_core_hints(outcome, blocked_a, blocked_b)
                placed = True
                break
            if outcome.decomposable is None:
                # Budget-induced unknown from the SAT call: truncated too.
                witness.mark()
                return _partition(variables, xa, xb)
        if not placed:
            continue
    return _partition(variables, xa, xb)


def _find_seed(
    checker: RelaxationChecker,
    variables: List[str],
    deadline: Optional[Deadline],
    stats: SearchStatistics,
    witness: TruncationWitness,
) -> Optional[Tuple[str, str]]:
    for i, first in enumerate(variables):
        for second in variables[i + 1 :]:
            if witness.check(deadline):
                return None
            outcome = _check(checker, variables, {first}, {second}, deadline, stats)
            if outcome.decomposable:
                return first, second
            if outcome.decomposable is None:
                # A budget-truncated check: a later "no seed found" verdict
                # is not definitive, so record the truncation.
                witness.mark()
    return None


def _check(
    checker: RelaxationChecker,
    variables: List[str],
    xa: Set[str],
    xb: Set[str],
    deadline: Optional[Deadline],
    stats: SearchStatistics,
) -> CheckOutcome:
    stats.sat_calls += 1
    alpha = {name: name in xa for name in variables}
    beta = {name: name in xb for name in variables}
    return checker.check_alpha_beta(alpha, beta, deadline=deadline)


def _absorb_core_hints(
    outcome: CheckOutcome, blocked_a: Set[str], blocked_b: Set[str]
) -> None:
    # Variables whose equality on the first (resp. second) copy is needed in
    # the refutation cannot be relaxed on that side later.
    blocked_a.update(outcome.needed_alpha)
    blocked_b.update(outcome.needed_beta)


def _partition(variables: List[str], xa: Set[str], xb: Set[str]) -> VariablePartition:
    ordered_a = tuple(name for name in variables if name in xa)
    ordered_b = tuple(name for name in variables if name in xb)
    ordered_c = tuple(name for name in variables if name not in xa and name not in xb)
    return VariablePartition(ordered_a, ordered_b, ordered_c)


def ljh_decompose(
    checker: RelaxationChecker,
    deadline: Optional[Deadline] = None,
) -> BiDecResult:
    """Run the LJH engine and package the outcome (partition only).

    Function extraction and verification are handled by the caller
    (:class:`repro.core.engine.BiDecomposer`), which is shared by every
    engine.
    """
    stopwatch = Stopwatch().start()
    stats = SearchStatistics()
    witness = TruncationWitness()
    partition = ljh_find_partition(
        checker, deadline=deadline, stats=stats, witness=witness
    )
    elapsed = stopwatch.stop()
    # Only an actually truncated search is a timeout; completing just
    # before expiry is a full (memoisable) result.
    timed_out = witness.truncated
    return BiDecResult(
        engine=ENGINE_LJH,
        operator=checker.operator,
        decomposed=partition is not None,
        partition=partition,
        optimum_proven=False,
        cpu_seconds=elapsed,
        timed_out=timed_out,
        stats=stats,
    )
