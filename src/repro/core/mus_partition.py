"""MUS-based partition derivation — the STEP-MG baseline.

The approach (Chen & Marques-Silva, VLSI-SoC'11) observes that the
decomposability check formula with *all* equality constraints enforced
(``X = X' = X''``) is trivially unsatisfiable, and that a (group) minimal
unsatisfiable subset of those equality constraints directly induces a
partition:

* a variable whose equality group is *outside* the MUS can be relaxed on
  both instantiated copies — the refutation never needed it — so it may be
  placed in ``XA`` or ``XB`` freely;
* a variable whose group is *inside* the MUS must keep its equalities, so it
  stays shared (``XC``).

Because enforcing a superset of a sufficient-for-UNSAT equality set keeps
the formula unsatisfiable, the derived partition is always valid; it is
merely not guaranteed optimal, which is the gap the QBF engines close.  The
engine performs deletion-based group-MUS extraction driven by UNSAT cores
(one SAT call per surviving group plus the refinement calls), which is what
makes STEP-MG the fastest of the engines — matching the paper's Table III
ordering.

When fewer than two variables turn out to be fully relaxable the group-MUS
cannot produce a non-trivial partition on its own; the engine then falls
back to a single-sided greedy pass (relax one copy at a time), mirroring the
original tool's engineering fallback.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.checks import RelaxationChecker
from repro.core.partition import VariablePartition
from repro.core.result import BiDecResult, SearchStatistics
from repro.core.spec import ENGINE_STEP_MG
from repro.utils.timer import Deadline, Stopwatch, TruncationWitness


def mus_find_partition(
    checker: RelaxationChecker,
    deadline: Optional[Deadline] = None,
    stats: Optional[SearchStatistics] = None,
    witness: Optional[TruncationWitness] = None,
) -> Optional[VariablePartition]:
    """Derive a partition from a deletion group-MUS over equality groups.

    ``witness`` (when given) records whether the search was cut short by
    the deadline, so the caller can tell a truncated negative apart from a
    definitive one.
    """
    variables = checker.variables
    stats = stats if stats is not None else SearchStatistics()
    witness = witness if witness is not None else TruncationWitness()

    free: Set[str] = set()          # relaxable on both copies
    needed: Set[str] = set(variables)  # groups currently enforced

    # Initial call with every equality enforced: trivially UNSAT; its core
    # already rules many groups out of the MUS (clause-set refinement).
    outcome = _check(checker, variables, relaxed=free, deadline=deadline, stats=stats)
    if outcome.decomposable is None:
        # Budget-induced unknown: this negative is truncated, not proven.
        witness.mark()
        return None
    if not outcome.decomposable:
        # Cannot happen for a well-formed completely specified function, but
        # guard against budget-induced inconsistencies.
        return None
    core = outcome.needed_alpha | outcome.needed_beta
    if core:
        free = set(variables) - core
        needed = set(core)

    # Deletion loop over the surviving groups.
    for name in [v for v in variables if v in needed]:
        if witness.check(deadline):
            break
        if name in free:
            continue
        candidate = free | {name}
        outcome = _check(checker, variables, relaxed=candidate, deadline=deadline, stats=stats)
        if outcome.decomposable is None:
            witness.mark()
            break
        if outcome.decomposable:
            free = candidate
            core = outcome.needed_alpha | outcome.needed_beta
            if core:
                # Refinement: anything outside the new core is also free.
                free |= set(variables) - core
        # Otherwise the group is part of the MUS: the variable stays in XC.

    if len(free) >= 2:
        return _assign_free(variables, free)

    # Fallback: single-sided greedy growth (the group-MUS found at most one
    # fully relaxable variable, but one-sided relaxations may still work).
    return _greedy_fallback(checker, variables, deadline, stats, witness)


def _check(
    checker: RelaxationChecker,
    variables: Sequence[str],
    relaxed: Set[str],
    deadline: Optional[Deadline],
    stats: SearchStatistics,
):
    stats.sat_calls += 1
    alpha = {name: name in relaxed for name in variables}
    beta = {name: name in relaxed for name in variables}
    return checker.check_alpha_beta(alpha, beta, deadline=deadline)


def _assign_free(variables: Sequence[str], free: Set[str]) -> VariablePartition:
    """Distribute fully relaxable variables alternately over XA and XB."""
    xa: List[str] = []
    xb: List[str] = []
    xc: List[str] = []
    toggle = True
    for name in variables:
        if name in free:
            if toggle:
                xa.append(name)
            else:
                xb.append(name)
            toggle = not toggle
        else:
            xc.append(name)
    return VariablePartition(tuple(xa), tuple(xb), tuple(xc))


def _greedy_fallback(
    checker: RelaxationChecker,
    variables: Sequence[str],
    deadline: Optional[Deadline],
    stats: SearchStatistics,
    witness: TruncationWitness,
) -> Optional[VariablePartition]:
    """One-sided relaxation pass used when the group-MUS is too coarse."""
    xa: Set[str] = set()
    xb: Set[str] = set()

    def attempt(candidate_a: Set[str], candidate_b: Set[str]) -> bool:
        stats.sat_calls += 1
        outcome = checker.check_alpha_beta(
            {v: v in candidate_a for v in variables},
            {v: v in candidate_b for v in variables},
            deadline=deadline,
        )
        if outcome.decomposable is None:
            # A budget-truncated check counts as truncation: the "no"
            # answer it degrades to is not definitive.
            witness.mark()
        return bool(outcome.decomposable)

    # Explicit seed-pair search (bounded by the first success).
    for i, first in enumerate(variables):
        for second in variables[i + 1 :]:
            if witness.check(deadline):
                return None
            if attempt({first}, {second}):
                xa, xb = {first}, {second}
                break
        if xa:
            break
    if not xa:
        return None
    for name in variables:
        if name in xa or name in xb:
            continue
        if witness.check(deadline):
            break
        target_first = "A" if len(xa) <= len(xb) else "B"
        for block in (target_first, "B" if target_first == "A" else "A"):
            candidate_a = xa | {name} if block == "A" else xa
            candidate_b = xb | {name} if block == "B" else xb
            if attempt(candidate_a, candidate_b):
                xa, xb = set(candidate_a), set(candidate_b)
                break
    ordered_a = tuple(name for name in variables if name in xa)
    ordered_b = tuple(name for name in variables if name in xb)
    ordered_c = tuple(name for name in variables if name not in xa and name not in xb)
    return VariablePartition(ordered_a, ordered_b, ordered_c)


def mus_decompose(
    checker: RelaxationChecker,
    deadline: Optional[Deadline] = None,
) -> BiDecResult:
    """Run the STEP-MG engine and package the outcome (partition only)."""
    stopwatch = Stopwatch().start()
    stats = SearchStatistics()
    witness = TruncationWitness()
    partition = mus_find_partition(
        checker, deadline=deadline, stats=stats, witness=witness
    )
    elapsed = stopwatch.stop()
    # Only an actually truncated search is a timeout; completing just
    # before expiry is a full (memoisable) result.
    timed_out = witness.truncated
    return BiDecResult(
        engine=ENGINE_STEP_MG,
        operator=checker.operator,
        decomposed=partition is not None,
        partition=partition,
        optimum_proven=False,
        cpu_seconds=elapsed,
        timed_out=timed_out,
        stats=stats,
    )
