"""Result containers for bi-decomposition runs.

Three granularities mirror how the paper reports results:

* :class:`BiDecResult` — one function decomposed by one engine (a single
  table cell's raw datum);
* :class:`OutputResult` — one primary output decomposed by several engines
  (one comparison point in Table I/II);
* :class:`CircuitReport` — a whole circuit (one row of Table I/III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.aig.function import BooleanFunction
from repro.core.partition import VariablePartition


@dataclass
class SearchStatistics:
    """Solver-level statistics accumulated while searching for a partition."""

    sat_calls: int = 0
    qbf_iterations: int = 0
    qbf_calls: int = 0
    refinements: int = 0
    conflicts: int = 0
    bound_sequence: List[int] = field(default_factory=list)

    def merge(self, other: "SearchStatistics") -> None:
        self.sat_calls += other.sat_calls
        self.qbf_iterations += other.qbf_iterations
        self.qbf_calls += other.qbf_calls
        self.refinements += other.refinements
        self.conflicts += other.conflicts
        self.bound_sequence.extend(other.bound_sequence)


@dataclass
class BiDecResult:
    """Outcome of decomposing one function with one engine.

    ``decomposed`` is true when a non-trivial decomposition was found;
    ``optimum_proven`` reports whether the engine proved its target metric
    optimal (only the QBF engines can do so).
    """

    engine: str
    operator: str
    decomposed: bool
    partition: Optional[VariablePartition] = None
    fa: Optional[BooleanFunction] = None
    fb: Optional[BooleanFunction] = None
    optimum_proven: bool = False
    cpu_seconds: float = 0.0
    timed_out: bool = False
    stats: SearchStatistics = field(default_factory=SearchStatistics)

    @property
    def disjointness(self) -> Optional[float]:
        if self.partition is None:
            return None
        return float(self.partition.disjointness)

    @property
    def balancedness(self) -> Optional[float]:
        if self.partition is None:
            return None
        return float(self.partition.balancedness)

    @property
    def combined_metric(self) -> Optional[float]:
        if self.partition is None:
            return None
        return float(self.partition.disjointness + self.partition.balancedness)

    def summary(self) -> str:
        """One-line human-readable summary."""
        if not self.decomposed:
            return f"{self.engine}[{self.operator}]: not decomposable"
        assert self.partition is not None
        flag = " (optimum)" if self.optimum_proven else ""
        return (
            f"{self.engine}[{self.operator}]: {self.partition} "
            f"eD={float(self.partition.disjointness):.3f} "
            f"eB={float(self.partition.balancedness):.3f}{flag} "
            f"[{self.cpu_seconds:.3f}s]"
        )


@dataclass
class OutputResult:
    """All engine results for one primary output of a circuit."""

    circuit: str
    output_name: str
    num_support: int
    results: Dict[str, BiDecResult] = field(default_factory=dict)

    def result_for(self, engine: str) -> Optional[BiDecResult]:
        return self.results.get(engine)


@dataclass
class CircuitReport:
    """All outputs of one circuit, decomposed by the requested engines."""

    circuit: str
    operator: str
    outputs: List[OutputResult] = field(default_factory=list)
    total_cpu: Dict[str, float] = field(default_factory=dict)

    def decomposed_count(self, engine: str) -> int:
        """The paper's ``#Dec`` column: outputs the engine decomposed."""
        return sum(
            1
            for output in self.outputs
            if output.results.get(engine) is not None
            and output.results[engine].decomposed
        )

    def cpu_seconds(self, engine: str) -> float:
        """The paper's ``CPU (s)`` column."""
        return self.total_cpu.get(
            engine,
            sum(
                output.results[engine].cpu_seconds
                for output in self.outputs
                if engine in output.results
            ),
        )
