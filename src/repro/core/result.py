"""Result containers for bi-decomposition runs.

Three granularities mirror how the paper reports results:

* :class:`BiDecResult` — one function decomposed by one engine (a single
  table cell's raw datum);
* :class:`OutputResult` — one primary output decomposed by several engines
  (one comparison point in Table I/II);
* :class:`CircuitReport` — a whole circuit (one row of Table I/III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.aig.function import BooleanFunction
from repro.core.partition import VariablePartition


@dataclass
class SearchStatistics:
    """Solver-level statistics accumulated while searching for a partition.

    ``cache_hits`` is set by the batch scheduler when the result was replayed
    from the cone memo cache instead of being searched for; the remaining
    counters then describe the original (memoised) search.
    """

    sat_calls: int = 0
    qbf_iterations: int = 0
    qbf_calls: int = 0
    refinements: int = 0
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    cache_hits: int = 0
    bound_sequence: List[int] = field(default_factory=list)

    def merge(self, other: "SearchStatistics") -> None:
        self.sat_calls += other.sat_calls
        self.qbf_iterations += other.qbf_iterations
        self.qbf_calls += other.qbf_calls
        self.refinements += other.refinements
        self.conflicts += other.conflicts
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.cache_hits += other.cache_hits
        self.bound_sequence.extend(other.bound_sequence)

    def copy(self) -> "SearchStatistics":
        return SearchStatistics(
            sat_calls=self.sat_calls,
            qbf_iterations=self.qbf_iterations,
            qbf_calls=self.qbf_calls,
            refinements=self.refinements,
            conflicts=self.conflicts,
            decisions=self.decisions,
            propagations=self.propagations,
            cache_hits=self.cache_hits,
            bound_sequence=list(self.bound_sequence),
        )


@dataclass
class BiDecResult:
    """Outcome of decomposing one function with one engine.

    ``decomposed`` is true when a non-trivial decomposition was found;
    ``optimum_proven`` reports whether the engine proved its target metric
    optimal (only the QBF engines can do so).
    """

    engine: str
    operator: str
    decomposed: bool
    partition: Optional[VariablePartition] = None
    fa: Optional[BooleanFunction] = None
    fb: Optional[BooleanFunction] = None
    optimum_proven: bool = False
    cpu_seconds: float = 0.0
    timed_out: bool = False
    stats: SearchStatistics = field(default_factory=SearchStatistics)

    @property
    def disjointness(self) -> Optional[float]:
        if self.partition is None:
            return None
        return float(self.partition.disjointness)

    @property
    def balancedness(self) -> Optional[float]:
        if self.partition is None:
            return None
        return float(self.partition.balancedness)

    @property
    def combined_metric(self) -> Optional[float]:
        if self.partition is None:
            return None
        return float(self.partition.disjointness + self.partition.balancedness)

    def summary(self) -> str:
        """One-line human-readable summary."""
        if not self.decomposed:
            return f"{self.engine}[{self.operator}]: not decomposable"
        assert self.partition is not None
        flag = " (optimum)" if self.optimum_proven else ""
        return (
            f"{self.engine}[{self.operator}]: {self.partition} "
            f"eD={float(self.partition.disjointness):.3f} "
            f"eB={float(self.partition.balancedness):.3f}{flag} "
            f"[{self.cpu_seconds:.3f}s]"
        )

    def fingerprint(self) -> tuple:
        """Canonical decomposition content, excluding timing and cache marks.

        Two results with equal fingerprints represent the same decomposition
        found by the same search (same partition, same proof status, same
        solver work).  ``cpu_seconds`` and ``stats.cache_hits`` are excluded:
        they describe *how long* and *where* the result was computed, not
        *what* was computed — the batch scheduler's identity guarantee
        (batched == sequential) is stated over this fingerprint.
        """
        partition = None
        if self.partition is not None:
            partition = (self.partition.xa, self.partition.xb, self.partition.xc)
        return (
            self.engine,
            self.operator,
            self.decomposed,
            partition,
            self.optimum_proven,
            self.timed_out,
            self.stats.sat_calls,
            self.stats.qbf_iterations,
            self.stats.qbf_calls,
            self.stats.refinements,
            self.stats.conflicts,
            self.stats.decisions,
            self.stats.propagations,
            tuple(self.stats.bound_sequence),
            _function_fingerprint(self.fa),
            _function_fingerprint(self.fb),
        )


@dataclass
class OutputResult:
    """All engine results for one primary output of a circuit."""

    circuit: str
    output_name: str
    num_support: int
    results: Dict[str, BiDecResult] = field(default_factory=dict)

    def result_for(self, engine: str) -> Optional[BiDecResult]:
        return self.results.get(engine)

    def fingerprint(self) -> tuple:
        return (
            self.circuit,
            self.output_name,
            self.num_support,
            tuple(
                (engine, result.fingerprint())
                for engine, result in sorted(self.results.items())
            ),
        )


@dataclass
class CircuitReport:
    """All outputs of one circuit, decomposed by the requested engines.

    ``schedule`` summarises how the batch scheduler executed the run:
    worker count (plus ``fallback``, the reason a jobs>1 request ran
    sequentially), unique cones and dedup cache hits, the names of
    budget-``skipped`` outputs, and — when a persistent cache directory is
    configured — ``persistent_hits``/``persistent_loaded``/
    ``persistent_saved``.  It is informational and excluded from
    :meth:`fingerprint`.
    """

    circuit: str
    operator: str
    outputs: List[OutputResult] = field(default_factory=list)
    total_cpu: Dict[str, float] = field(default_factory=dict)
    schedule: Dict[str, object] = field(default_factory=dict)

    def decomposed_count(self, engine: str) -> int:
        """The paper's ``#Dec`` column: outputs the engine decomposed."""
        return sum(
            1
            for output in self.outputs
            if output.results.get(engine) is not None
            and output.results[engine].decomposed
        )

    def cpu_seconds(self, engine: str) -> float:
        """The paper's ``CPU (s)`` column."""
        return self.total_cpu.get(
            engine,
            sum(
                output.results[engine].cpu_seconds
                for output in self.outputs
                if engine in output.results
            ),
        )

    def cache_hits(self) -> int:
        """Replayed *engine results* across all outputs.

        Counts per (output, engine) pair, so it is ``len(engines)`` times the
        per-job count in ``schedule["cache_hits"]`` (one cache entry replays
        every engine's result for that output at once).
        """
        return sum(
            result.stats.cache_hits
            for output in self.outputs
            for result in output.results.values()
        )

    def fingerprint(self) -> tuple:
        """Canonical report content (see :meth:`BiDecResult.fingerprint`).

        Batched, parallel and sequential runs of the same circuit must
        produce equal fingerprints; timing (``cpu_seconds``, ``total_cpu``)
        and the ``schedule`` summary are excluded.
        """
        return (
            self.circuit,
            self.operator,
            tuple(output.fingerprint() for output in self.outputs),
        )

    def fingerprint_hex(self) -> str:
        """A short stable digest of :meth:`fingerprint` (for diffing runs
        across processes — the CLI's ``--fingerprint`` flag and the CI
        service-smoke job compare these lines)."""
        import hashlib

        return hashlib.sha256(repr(self.fingerprint()).encode("utf-8")).hexdigest()[
            :16
        ]


def _function_fingerprint(function) -> Optional[tuple]:
    """Semantic identity of an extracted sub-function.

    Compares input names plus the truth table (functions this small are the
    only ones the engines extract); the hosting AIG's node numbering is
    deliberately ignored so that replayed (cache-hit) and worker-side
    extractions compare equal to freshly computed ones.  Beyond the truth
    table limit only the input names are compared — weaker discrimination,
    but never a spurious mismatch from host-AIG state.
    """
    if function is None:
        return None
    names = tuple(function.input_names)
    if function.num_inputs <= 16:
        return (names, function.truth_table())
    return (names, "wide")
