"""The top-level bi-decomposition driver (the `STEP` tool).

:class:`BiDecomposer` glues the pieces together the way the paper's flow
does: per primary output it extracts the cone as a
:class:`repro.aig.function.BooleanFunction`, searches for a variable
partition with the requested engine(s), extracts the sub-functions ``fA`` /
``fB`` and (optionally) verifies the result.  The paper's engines map to:

==============  ==========================================================
Engine          Partition search
==============  ==========================================================
``LJH``         seed pair + greedy growth (Lee–Jiang DAC'08 / Bi-dec)
``STEP-MG``     group-MUS over the equality constraints (VLSI-SoC'11)
``STEP-QD``     QBF, optimum disjointness (this paper)
``STEP-QB``     QBF, optimum balancedness (this paper)
``STEP-QDB``    QBF, optimum disjointness + balancedness (this paper)
``BDD``         classic quantification-based greedy growth (related work)
==============  ==========================================================
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.aig.aig import AIG
from repro.aig.function import BooleanFunction
from repro.bdd.bdd import BDD
from repro.core import qbf_bidec
from repro.core.checks import RelaxationChecker
from repro.core.extract import extract_functions
from repro.core.ljh import ljh_decompose
from repro.core.mus_partition import mus_decompose, mus_find_partition
from repro.core.partition import VariablePartition
from repro.core.result import BiDecResult, CircuitReport, OutputResult, SearchStatistics
from repro.core.spec import (
    ENGINE_BDD,
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QB,
    ENGINE_STEP_QD,
    ENGINE_STEP_QDB,
    ENGINES,
    EXTRACT_QUANTIFICATION,
    check_engine,
    check_extraction,
    check_operator,
)
from repro.core.verify import verify_decomposition
from repro.errors import DecompositionError
from repro.sat.solver import solver_work_snapshot
from repro.utils.timer import Deadline, Stopwatch

QBF_ENGINES = (ENGINE_STEP_QD, ENGINE_STEP_QB, ENGINE_STEP_QDB)

TARGET_BY_ENGINE = {
    ENGINE_STEP_QD: qbf_bidec.TARGET_DISJOINTNESS,
    ENGINE_STEP_QB: qbf_bidec.TARGET_BALANCEDNESS,
    ENGINE_STEP_QDB: qbf_bidec.TARGET_COMBINED,
}


@dataclass
class EngineOptions:
    """Knobs shared by all engines.

    The defaults mirror the paper's experimental setup scaled to this
    substrate: 4 seconds per QBF call and a per-output budget instead of the
    paper's 6000 second per-circuit budget.
    """

    per_call_timeout: Optional[float] = 4.0
    output_timeout: Optional[float] = 60.0
    extraction: str = EXTRACT_QUANTIFICATION
    extract: bool = True
    verify: bool = False
    qbf_strategy: str = qbf_bidec.STRATEGY_AUTO
    qbf_backend: str = "specialised"
    min_support: int = 2
    max_support: Optional[int] = None
    # Batch-scheduler knobs (see repro.core.scheduler): worker processes per
    # circuit, structural dedup of identical cones, the run seed from which
    # per-output job seeds are derived, and an optional directory for the
    # persistent (cross-run) cone cache.
    jobs: int = 1
    dedup: bool = True
    seed: int = 0
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        self.extraction = check_extraction(self.extraction)
        if self.qbf_strategy not in qbf_bidec.STRATEGIES:
            raise DecompositionError(f"unknown QBF strategy {self.qbf_strategy!r}")
        if self.jobs < 1:
            raise DecompositionError("jobs must be at least 1")

    def search_fingerprint(self) -> str:
        """Stable key of every option that can change a partition search.

        Part of the persistent cone cache's context key: a snapshot taken
        under one set of search budgets/strategies must never be replayed
        under another.  Extraction/verification options are excluded —
        replay re-runs them against the actual cone — as are the scheduler
        knobs (jobs, dedup, seed, cache_dir), which never change results.
        """
        return (
            f"pct={self.per_call_timeout}|ot={self.output_timeout}"
            f"|strategy={self.qbf_strategy}|backend={self.qbf_backend}"
            f"|min={self.min_support}|max={self.max_support}"
        )


def extract_and_verify(
    function: BooleanFunction,
    operator: str,
    partition: VariablePartition,
    options: "EngineOptions",
) -> Tuple[BooleanFunction, BooleanFunction]:
    """Extract ``fA``/``fB`` for a found partition, verifying if configured.

    The single extraction policy shared by the sequential driver, the batch
    scheduler's parent-side extraction of worker results and its cache
    replay — keeping all three result paths byte-identical.
    """
    fa, fb = extract_functions(
        function, operator, partition, method=options.extraction
    )
    if options.verify:
        verify_decomposition(function, operator, fa, fb, partition)
    return fa, fb


class BiDecomposer:
    """Decompose functions, outputs or whole circuits with selected engines."""

    def __init__(self, options: Optional[EngineOptions] = None) -> None:
        self.options = options or EngineOptions()

    # -- single function -----------------------------------------------------------

    def decompose_function(
        self,
        function: BooleanFunction,
        operator: str,
        engine: str = ENGINE_STEP_QD,
        bootstrap: Optional[VariablePartition] = None,
        deadline: Optional[Deadline] = None,
        extract: Optional[bool] = None,
    ) -> BiDecResult:
        """Decompose one function with one engine.

        ``extract`` overrides ``options.extract`` for this call; the driver
        uses it to skip sub-function extraction on bootstrap-only passes
        whose ``fA``/``fB`` nobody will read.
        """
        operator = check_operator(operator)
        engine = check_engine(engine)
        if extract is None:
            extract = self.options.extract
        deadline = deadline or Deadline(self.options.output_timeout)
        if function.num_inputs < self.options.min_support:
            return BiDecResult(engine=engine, operator=operator, decomposed=False)

        # Attribute solver work (conflicts/decisions/propagations) to this
        # result by sampling the thread-local solver counters around the
        # search.  The window deliberately closes *before* extraction:
        # extraction runs parent-side under the parallel backends, so
        # counting it would break the serial-vs-parallel fingerprint
        # identity.  Thread-local sampling keeps concurrent jobs (thread
        # backend) from bleeding into each other's counts.
        work_before = solver_work_snapshot()
        if engine == ENGINE_BDD:
            result = self._bdd_decompose(function, operator, deadline)
        elif engine not in ENGINES:
            result = self._plugin_decompose(function, operator, engine, deadline)
        else:
            checker = RelaxationChecker(function, operator)
            if engine == ENGINE_LJH:
                result = ljh_decompose(checker, deadline=deadline)
            elif engine == ENGINE_STEP_MG:
                result = mus_decompose(checker, deadline=deadline)
            else:
                if bootstrap is None:
                    bootstrap_stats = SearchStatistics()
                    bootstrap = mus_find_partition(
                        checker, deadline=deadline, stats=bootstrap_stats
                    )
                result = qbf_bidec.qbf_decompose(
                    checker,
                    TARGET_BY_ENGINE[engine],
                    bootstrap=bootstrap,
                    strategy=self.options.qbf_strategy,
                    per_call_timeout=self.options.per_call_timeout,
                    deadline=deadline,
                    backend=self.options.qbf_backend,
                )
        work_after = solver_work_snapshot()
        result.stats.conflicts += work_after[0] - work_before[0]
        result.stats.decisions += work_after[1] - work_before[1]
        result.stats.propagations += work_after[2] - work_before[2]
        if result.decomposed and result.partition is not None and extract:
            result.fa, result.fb = extract_and_verify(
                function, operator, result.partition, self.options
            )
        return result

    def decompose_function_all(
        self,
        function: BooleanFunction,
        operator: str,
        engines: Sequence[str],
        deadline: Optional[Deadline] = None,
    ) -> Dict[str, BiDecResult]:
        """Decompose one function with several engines, sharing the bootstrap.

        ``deadline`` is the enclosing *circuit* budget: each engine call runs
        under ``deadline.sub_deadline(output_timeout)``, i.e. its usual
        per-output budget capped by whatever the circuit has left.  Without
        one, every engine gets a fresh per-output budget (legacy behaviour).
        """
        engines = [check_engine(e) for e in engines]
        results: Dict[str, BiDecResult] = {}
        bootstrap: Optional[VariablePartition] = None
        ordered = sorted(engines, key=lambda e: 0 if e == ENGINE_STEP_MG else 1)
        needs_bootstrap = any(engine in QBF_ENGINES for engine in ordered)
        if needs_bootstrap and ENGINE_STEP_MG not in ordered:
            ordered.insert(0, ENGINE_STEP_MG)
        for engine in ordered:
            engine_deadline = None
            if deadline is not None:
                engine_deadline = deadline.sub_deadline(self.options.output_timeout)
            result = self.decompose_function(
                function,
                operator,
                engine,
                bootstrap=bootstrap,
                deadline=engine_deadline,
                # A bootstrap-only pass (STEP-MG inserted for the QBF
                # engines) only contributes its partition; extracting
                # fA/fB for it would be thrown away immediately.
                extract=None if engine in engines else False,
            )
            if engine == ENGINE_STEP_MG and result.decomposed:
                bootstrap = result.partition
            if engine in engines:
                results[engine] = result
        return results

    # -- outputs and circuits ---------------------------------------------------------

    def decompose_output(
        self,
        aig: AIG,
        output: int | str,
        operator: str,
        engines: Sequence[str],
        circuit_name: Optional[str] = None,
        function: Optional[BooleanFunction] = None,
        deadline: Optional[Deadline] = None,
    ) -> OutputResult:
        """Decompose one primary output with the requested engines.

        ``function`` optionally supplies the output's already-extracted cone
        (the batch scheduler builds it during planning) to avoid a second
        support traversal.  ``deadline`` is the circuit budget the scheduler
        plumbs through (including into pool workers); each engine runs under
        its per-output budget capped by the circuit's remaining time.
        """
        if function is None:
            function = BooleanFunction.from_output(aig, output)
        name = output if isinstance(output, str) else aig.outputs[output][0]
        record = OutputResult(
            circuit=circuit_name or aig.name,
            output_name=name,
            num_support=function.num_inputs,
        )
        if function.num_inputs < self.options.min_support:
            return record
        if (
            self.options.max_support is not None
            and function.num_inputs > self.options.max_support
        ):
            return record
        record.results = self.decompose_function_all(
            function, operator, engines, deadline=deadline
        )
        return record

    def decompose_circuit(
        self,
        aig: AIG,
        operator: str,
        engines: Sequence[str],
        circuit_timeout: Optional[float] = None,
        max_outputs: Optional[int] = None,
        circuit_name: Optional[str] = None,
        jobs: Optional[int] = None,
        dedup: Optional[bool] = None,
        cache_dir: Optional[str] = None,
    ) -> CircuitReport:
        """Decompose every primary output of a circuit.

        .. deprecated:: 1.1
            This is a thin shim over the session API: it builds a
            :class:`repro.api.DecompositionRequest` from the decomposer's
            options (plus the per-call overrides) and runs it through a
            :class:`repro.api.Session` — so its reports stay
            fingerprint-identical to the canonical path.  New code should
            construct the request directly; suites of circuits should go
            through :meth:`repro.api.Session.submit`, which shards them
            across one shared worker pool.

        Sequential circuits are made combinational first (the ABC ``comb``
        step of the paper's flow).  ``circuit_timeout`` mirrors the paper's
        per-circuit budget: outputs past the deadline are skipped (and named
        in ``report.schedule["skipped"]``).  The per-output work is planned
        and executed by :class:`repro.core.scheduler.BatchScheduler`; the
        report is fingerprint-identical for every (jobs, dedup) combination,
        provided no engine call is truncated by its wall-clock budget and
        duplicate cones are traversal-order-exact (see
        ``docs/architecture.md``).
        """
        warnings.warn(
            "BiDecomposer.decompose_circuit is deprecated; build a "
            "repro.api.DecompositionRequest and run it through "
            "repro.api.Session (Session.run / Session.submit)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.request import DecompositionRequest
        from repro.api.session import Session

        request = DecompositionRequest.from_options(
            aig,
            operator,
            engines,
            self.options,
            circuit_timeout=circuit_timeout,
            max_outputs=max_outputs,
            name=circuit_name,
            jobs=jobs,
            dedup=dedup,
            cache_dir=cache_dir,
        )
        return Session().run(request)

    # -- third-party engines ----------------------------------------------------------

    def _plugin_decompose(
        self,
        function: BooleanFunction,
        operator: str,
        engine: str,
        deadline: Optional[Deadline],
    ) -> BiDecResult:
        """Dispatch to a registered third-party engine (see repro.api.registry)."""
        from repro.api.registry import default_registry

        spec = default_registry().get(engine)
        stopwatch = Stopwatch().start()
        result = spec.runner(
            function, operator, options=self.options, deadline=deadline
        )
        if not isinstance(result, BiDecResult):
            raise DecompositionError(
                f"engine {engine!r} returned {type(result).__name__}; "
                "a registered runner must return a BiDecResult"
            )
        if result.cpu_seconds == 0.0:
            result.cpu_seconds = stopwatch.stop()
        return result

    # -- BDD baseline -----------------------------------------------------------------

    def _bdd_decompose(
        self, function: BooleanFunction, operator: str, deadline: Optional[Deadline]
    ) -> BiDecResult:
        """Classic BDD-based greedy partition search (related-work baseline)."""
        from repro.bdd.bidec_bdd import bdd_check_decomposable

        stopwatch = Stopwatch().start()
        stats = SearchStatistics()
        variables = list(function.input_names)
        manager = BDD()
        manager.from_function(function)

        def check(xa: Set[str], xb: Set[str]) -> bool:
            stats.sat_calls += 1
            xc = [v for v in variables if v not in xa and v not in xb]
            return bdd_check_decomposable(
                function, operator, sorted(xa), sorted(xb), xc, bdd=manager
            )

        # ``truncated`` records whether the deadline actually cut a search
        # loop short.  Reporting ``deadline.expired`` at result-construction
        # time would flag runs whose search completed just before expiry as
        # timed out — and make the scheduler refuse to memoise a perfectly
        # good result (see ``repro.core.scheduler._replayable``).
        truncated = False
        partition: Optional[VariablePartition] = None
        seed: Optional[Tuple[str, str]] = None
        for i, first in enumerate(variables):
            for second in variables[i + 1 :]:
                if deadline is not None and deadline.expired:
                    truncated = True
                    break
                if check({first}, {second}):
                    seed = (first, second)
                    break
            if seed or truncated:
                break
        if seed is not None:
            xa, xb = {seed[0]}, {seed[1]}
            for name in variables:
                if name in xa or name in xb:
                    continue
                if deadline is not None and deadline.expired:
                    truncated = True
                    break
                order = ("A", "B") if len(xa) <= len(xb) else ("B", "A")
                for block in order:
                    candidate_a = xa | {name} if block == "A" else xa
                    candidate_b = xb | {name} if block == "B" else xb
                    if check(candidate_a, candidate_b):
                        xa, xb = candidate_a, candidate_b
                        break
            partition = VariablePartition(
                tuple(v for v in variables if v in xa),
                tuple(v for v in variables if v in xb),
                tuple(v for v in variables if v not in xa and v not in xb),
            )
        elapsed = stopwatch.stop()
        return BiDecResult(
            engine=ENGINE_BDD,
            operator=operator,
            decomposed=partition is not None,
            partition=partition,
            optimum_proven=False,
            cpu_seconds=elapsed,
            timed_out=truncated,
            stats=stats,
        )
