"""Pluggable execution backends for the batch and suite schedulers.

The schedulers in :mod:`repro.core.scheduler` are *planners*: they turn
circuits into per-output jobs, dedup structurally identical cones and
assemble reports.  Everything about **where** the surviving jobs run lives
here, behind one small interface:

* :meth:`ExecutorBackend.start` receives the per-circuit execution
  contexts — ``(aig, operator, engines, worker options, circuit_name)``
  tuples, one per suite slot — and returns whether the substrate could be
  brought up (``False`` sends the scheduler to its sequential fallback).
* :meth:`ExecutorBackend.map_unordered` consumes job specs
  ``(slot, index, output_name, seed, deadline)`` and yields
  ``(slot, index, record)`` results as they complete, in whatever order
  the substrate finishes them.
* :meth:`ExecutorBackend.shutdown` releases the substrate.

Three implementations cover the useful points of the design space:

``SerialBackend``
    Runs every job inline in dispatch order.  It is the deterministic
    reference: no pool, no threads, no pickling — but the *same* job
    protocol as the parallel backends, so differential tests compare all
    three over one code path.
``ThreadBackend``
    A :class:`concurrent.futures.ThreadPoolExecutor`.  Jobs share the
    parent's memory (no pickling, plug-in engines just work) and threads
    are legal where ``multiprocessing`` is not — daemonic parents,
    restricted sandboxes — which used to force those environments onto
    the sequential path.  The engines are pure Python, so threads
    interleave on the GIL rather than use extra cores; the win is
    overlap of any C-level work plus substrate availability, not CPU
    scaling.
``ProcessBackend``
    The ``multiprocessing`` pool (fork-preferred) that used to live
    inline in ``core/scheduler.py``, moved here wholesale.  True CPU
    parallelism; job identities cross the pipe, results come back
    pickled.

Every backend executes jobs through the same :func:`run_job` body under
the same derived job seed, so for deterministic engines the three produce
bit-identical :class:`repro.core.result.OutputResult` records — the
scheduler's fingerprint-identity guarantee is backend-independent (and
differential-tested in ``tests/test_executors.py``).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.aig.aig import AIG
from repro.core.engine import BiDecomposer
from repro.core.result import OutputResult
from repro.errors import DecompositionError
from repro.utils.rng import seeded_job
from repro.utils.timer import Deadline

BACKEND_SERIAL = "serial"
BACKEND_THREAD = "thread"
BACKEND_PROCESS = "process"

#: Valid ``Parallelism.backend`` / ``--backend`` values, weakest first.
BACKENDS = (BACKEND_SERIAL, BACKEND_THREAD, BACKEND_PROCESS)

# One per-circuit execution context as shipped by the schedulers:
# (aig, operator, engines, worker-side EngineOptions, circuit_name).
ExecutionContext = Tuple[AIG, str, List[str], object, str]

# One job spec: (slot, output index, output name, derived seed, deadline).
JobSpec = Tuple[int, int, str, int, Optional[Deadline]]

# One result: the job's (slot, index) identity plus its record (None when
# the job was skipped because its circuit deadline had already expired).
JobResult = Tuple[int, int, Optional[OutputResult]]


def check_backend(name: str) -> str:
    """Validate (and return) an executor backend name."""
    if name not in BACKENDS:
        raise DecompositionError(
            f"unknown executor backend {name!r}; known backends: "
            + ", ".join(BACKENDS)
        )
    return name


def strongest_backend(names: Iterable[str]) -> str:
    """The most parallel backend among ``names`` (serial < thread < process).

    Used by :meth:`repro.api.session.Session.as_completed`: one suite runs
    on one substrate, so mixed requests are served by the strongest one
    any of them asked for.
    """
    strongest = BACKEND_SERIAL
    for name in names:
        check_backend(name)
        if BACKENDS.index(name) > BACKENDS.index(strongest):
            strongest = name
    return strongest


# One in-process runner context: a BiDecomposer plus everything
# `decompose_output` needs, mirroring what `_worker_init` installs in a
# pool worker.
_RunnerContext = Tuple[BiDecomposer, AIG, str, List[str], str]


def _build_runners(contexts: Sequence[ExecutionContext]) -> List[_RunnerContext]:
    """One BiDecomposer per circuit context (in-process backends)."""
    return [
        (BiDecomposer(options), aig, operator, engines, circuit_name)
        for aig, operator, engines, options, circuit_name in contexts
    ]


def run_job(
    context: _RunnerContext, job: JobSpec, function: Optional[object] = None
) -> JobResult:
    """Execute one job against its circuit context (all backends).

    Honours the job's circuit deadline exactly like the historical pool
    worker: a job that starts after expiry returns a ``None`` record (the
    scheduler reports it in ``schedule["skipped"]``), one that starts
    before expiry runs its engines under sub-deadlines capped by the
    circuit's remaining budget.  The job's derived seed is installed for
    the duration (thread-locally, so concurrent thread-backend jobs do
    not see each other's streams).

    ``function`` optionally supplies the cone the planner already
    extracted, saving a re-traversal; only the in-process backends can
    pass it (a pool worker's job identity crosses the pipe bare).
    """
    slot, index, output_name, seed, deadline = job
    if deadline is not None and deadline.expired:
        return slot, index, None
    decomposer, aig, operator, engines, circuit_name = context
    with seeded_job(seed):
        record = decomposer.decompose_output(
            aig,
            output_name,
            operator,
            engines,
            circuit_name=circuit_name,
            function=function,
            deadline=deadline,
        )
    return slot, index, record


class ExecutorBackend:
    """Interface every execution substrate implements.

    ``workers`` is the effective worker count the backend runs with —
    what the scheduler reports in ``schedule["jobs"]`` (1 for the serial
    backend regardless of the requested count).
    """

    name: str = ""
    workers: int = 1

    def start(self, contexts: Sequence[ExecutionContext]) -> bool:
        """Bring the substrate up; ``False`` means "fall back sequential"."""
        raise NotImplementedError

    def map_unordered(
        self,
        jobs: Sequence[JobSpec],
        functions: Optional[Dict[Tuple[int, int], object]] = None,
    ) -> Iterator[JobResult]:
        """Run jobs, yielding ``(slot, index, record)`` as each completes.

        ``functions`` optionally maps a job's ``(slot, index)`` identity to
        its planner-extracted cone; in-process backends reuse it instead of
        re-traversing the AIG, the process backend ignores it (cones do not
        cross the pipe).
        """
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release the substrate (idempotent; called in a ``finally``)."""


class SerialBackend(ExecutorBackend):
    """Inline execution in dispatch order — the deterministic reference."""

    name = BACKEND_SERIAL

    def __init__(self, workers: int = 1) -> None:
        # Serial means serial: the requested worker count is ignored.
        self.workers = 1
        self._contexts: Optional[List[_RunnerContext]] = None

    def start(self, contexts: Sequence[ExecutionContext]) -> bool:
        self._contexts = _build_runners(contexts)
        return True

    def map_unordered(
        self,
        jobs: Sequence[JobSpec],
        functions: Optional[Dict[Tuple[int, int], object]] = None,
    ) -> Iterator[JobResult]:
        assert self._contexts is not None, "start() must precede map_unordered()"
        functions = functions or {}
        for job in jobs:
            yield run_job(
                self._contexts[job[0]], job, functions.get((job[0], job[1]))
            )

    def shutdown(self) -> None:
        self._contexts = None


class ThreadBackend(ExecutorBackend):
    """A thread pool: shared memory, no pickling, legal under daemonic
    parents where ``multiprocessing`` raises."""

    name = BACKEND_THREAD

    def __init__(self, workers: int) -> None:
        self.workers = max(1, workers)
        self._contexts: Optional[List[_RunnerContext]] = None
        self._executor: Optional[ThreadPoolExecutor] = None

    def start(self, contexts: Sequence[ExecutionContext]) -> bool:
        try:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        except (OSError, RuntimeError):  # pragma: no cover - thread limits
            return False
        self._contexts = _build_runners(contexts)
        return True

    def map_unordered(
        self,
        jobs: Sequence[JobSpec],
        functions: Optional[Dict[Tuple[int, int], object]] = None,
    ) -> Iterator[JobResult]:
        assert self._executor is not None and self._contexts is not None
        functions = functions or {}
        futures = [
            self._executor.submit(
                run_job, self._contexts[job[0]], job, functions.get((job[0], job[1]))
            )
            for job in jobs
        ]
        for future in as_completed(futures):
            yield future.result()

    def shutdown(self) -> None:
        if self._executor is not None:
            # cancel_futures: a no-op after a full drain (nothing queued),
            # but on an error/abandoned drain it discards unstarted jobs
            # instead of blocking until every queued search finishes —
            # mirroring ProcessBackend.terminate()'s promptness.
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._contexts = None


class ProcessBackend(ExecutorBackend):
    """The historical ``multiprocessing`` pool, owned by this module now."""

    name = BACKEND_PROCESS

    def __init__(self, workers: int) -> None:
        self.workers = max(1, workers)
        self._pool = None

    def start(self, contexts: Sequence[ExecutionContext]) -> bool:
        self._pool = _create_pool(self.workers, contexts)
        return self._pool is not None

    def map_unordered(
        self,
        jobs: Sequence[JobSpec],
        functions: Optional[Dict[Tuple[int, int], object]] = None,
    ) -> Iterator[JobResult]:
        # ``functions`` is deliberately unused: worker processes rebuild
        # cones from their own forked AIG copy.
        assert self._pool is not None, "start() must precede map_unordered()"
        for result in self._pool.imap_unordered(_worker_run, list(jobs)):
            yield result

    def shutdown(self) -> None:
        if self._pool is not None:
            # Mirrors the historical `with pool:` block: terminate is safe
            # after a full drain and correct after an abandoned one.
            self._pool.terminate()
            self._pool.join()
            self._pool = None


_BACKEND_TYPES = {
    BACKEND_SERIAL: SerialBackend,
    BACKEND_THREAD: ThreadBackend,
    BACKEND_PROCESS: ProcessBackend,
}


def create_backend(name: str, workers: int) -> ExecutorBackend:
    """Instantiate the named backend sized to ``workers``."""
    return _BACKEND_TYPES[check_backend(name)](workers)


# -- process-pool plumbing (module level for pickling) --------------------------

_WORKER_STATE: Dict[str, object] = {}


def _create_pool(worker_count: int, contexts: Sequence[ExecutionContext]):
    """Fork a worker pool initialised with the given circuit contexts.

    Returns ``None`` where no pool can exist (restricted sandboxes, or a
    daemonic parent process, which multiprocessing rejects via
    AssertionError) so callers fall back to the sequential path — or pick
    the :class:`ThreadBackend` up front, which those environments accept.
    Exceptions raised *inside* jobs still propagate from the map calls,
    exactly as they would from the sequential driver.
    """
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        context = multiprocessing.get_context()
    try:
        return context.Pool(
            processes=worker_count,
            initializer=_worker_init,
            initargs=(list(contexts),),
        )
    except (OSError, ValueError, ImportError, AssertionError):  # pragma: no cover
        return None


def _worker_init(contexts: List[ExecutionContext]) -> None:
    """Install the per-circuit contexts in this worker process.

    Each entry is ``(aig, operator, engines, options, circuit_name)``; the
    worker builds one BiDecomposer per circuit so suite jobs from different
    requests run under their own options.
    """
    _WORKER_STATE["contexts"] = _build_runners(contexts)


def _worker_run(args: JobSpec) -> JobResult:
    """Run one job in a pool worker, honouring its circuit's deadline.

    ``args`` is ``(slot, index, output_name, seed, deadline)`` where
    ``slot`` selects the circuit context installed by :func:`_worker_init`.
    The :class:`Deadline` crosses the pipe as plain data; its expiry check
    compares the system-wide monotonic clock, which parent and (forked or
    spawned) workers on one machine share, so "expired" means the same
    thing on both sides.
    """
    contexts: List[_RunnerContext] = _WORKER_STATE["contexts"]  # type: ignore[assignment]
    return run_job(contexts[args[0]], args)
