"""Pluggable execution backends for the batch and suite schedulers.

The schedulers in :mod:`repro.core.scheduler` are *planners*: they turn
circuits into per-output jobs, dedup structurally identical cones and
assemble reports.  Everything about **where** the surviving jobs run lives
here, behind one small interface:

* :meth:`ExecutorBackend.start` receives the per-circuit execution
  contexts — ``(aig, operator, engines, worker options, circuit_name)``
  tuples, one per suite slot — and returns whether the substrate could be
  brought up (``False`` sends the scheduler to its sequential fallback).
* :meth:`ExecutorBackend.map_unordered` consumes job specs
  ``(slot, index, output_name, seed, deadline)`` and yields
  ``(slot, index, record)`` results as they complete, in whatever order
  the substrate finishes them.
* :meth:`ExecutorBackend.shutdown` releases the substrate.

Three implementations cover the useful points of the design space:

``SerialBackend``
    Runs every job inline in dispatch order.  It is the deterministic
    reference: no pool, no threads, no pickling — but the *same* job
    protocol as the parallel backends, so differential tests compare all
    three over one code path.
``ThreadBackend``
    A :class:`concurrent.futures.ThreadPoolExecutor`.  Jobs share the
    parent's memory (no pickling, plug-in engines just work) and threads
    are legal where ``multiprocessing`` is not — daemonic parents,
    restricted sandboxes — which used to force those environments onto
    the sequential path.  The engines are pure Python, so threads
    interleave on the GIL rather than use extra cores; the win is
    overlap of any C-level work plus substrate availability, not CPU
    scaling.
``ProcessBackend``
    The ``multiprocessing`` pool (fork-preferred) that used to live
    inline in ``core/scheduler.py``, moved here wholesale.  True CPU
    parallelism; job identities cross the pipe, results come back
    pickled.

Every backend executes jobs through the same :func:`run_job` body under
the same derived job seed, so for deterministic engines the three produce
bit-identical :class:`repro.core.result.OutputResult` records — the
scheduler's fingerprint-identity guarantee is backend-independent (and
differential-tested in ``tests/test_executors.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.aig.aig import AIG
from repro.core.engine import BiDecomposer
from repro.core.result import OutputResult
from repro.errors import DecompositionError
from repro.utils.rng import seeded_job
from repro.utils.timer import Deadline

BACKEND_SERIAL = "serial"
BACKEND_THREAD = "thread"
BACKEND_PROCESS = "process"

#: Valid ``Parallelism.backend`` / ``--backend`` values, weakest first.
BACKENDS = (BACKEND_SERIAL, BACKEND_THREAD, BACKEND_PROCESS)

# One per-circuit execution context as shipped by the schedulers:
# (aig, operator, engines, worker-side EngineOptions, circuit_name).
ExecutionContext = Tuple[AIG, str, List[str], object, str]

# One job spec: (slot, output index, output name, derived seed, deadline).
JobSpec = Tuple[int, int, str, int, Optional[Deadline]]

# One result: the job's (slot, index) identity plus its record (None when
# the job was skipped because its circuit deadline had already expired).
JobResult = Tuple[int, int, Optional[OutputResult]]

# Live-mode completion hook: (slot, index, record, error).  Exactly one of
# record/error is meaningful; a budget-skipped job delivers (None, None).
# Invoked from whatever thread completed the job (the submitting thread for
# the serial backend, a pool thread otherwise) — implementations must be
# thread-safe and non-blocking.
CompletionHook = Callable[[int, int, Optional[OutputResult], Optional[BaseException]], None]


def check_backend(name: str) -> str:
    """Validate (and return) an executor backend name."""
    if name not in BACKENDS:
        raise DecompositionError(
            f"unknown executor backend {name!r}; known backends: "
            + ", ".join(BACKENDS)
        )
    return name


def strongest_backend(names: Iterable[str]) -> str:
    """The most parallel backend among ``names`` (serial < thread < process).

    Used by :meth:`repro.api.session.Session.as_completed`: one suite runs
    on one substrate, so mixed requests are served by the strongest one
    any of them asked for.
    """
    strongest = BACKEND_SERIAL
    for name in names:
        check_backend(name)
        if BACKENDS.index(name) > BACKENDS.index(strongest):
            strongest = name
    return strongest


# One in-process runner context: a BiDecomposer plus everything
# `decompose_output` needs, mirroring what `_worker_init` installs in a
# pool worker.
_RunnerContext = Tuple[BiDecomposer, AIG, str, List[str], str]


def _build_runners(contexts: Sequence[ExecutionContext]) -> List[_RunnerContext]:
    """One BiDecomposer per circuit context (in-process backends)."""
    return [
        (BiDecomposer(options), aig, operator, engines, circuit_name)
        for aig, operator, engines, options, circuit_name in contexts
    ]


def run_job(
    context: _RunnerContext, job: JobSpec, function: Optional[object] = None
) -> JobResult:
    """Execute one job against its circuit context (all backends).

    Honours the job's circuit deadline exactly like the historical pool
    worker: a job that starts after expiry returns a ``None`` record (the
    scheduler reports it in ``schedule["skipped"]``), one that starts
    before expiry runs its engines under sub-deadlines capped by the
    circuit's remaining budget.  The job's derived seed is installed for
    the duration (thread-locally, so concurrent thread-backend jobs do
    not see each other's streams).

    ``function`` optionally supplies the cone the planner already
    extracted, saving a re-traversal; only the in-process backends can
    pass it (a pool worker's job identity crosses the pipe bare).
    """
    slot, index, output_name, seed, deadline = job
    if deadline is not None and deadline.expired:
        return slot, index, None
    decomposer, aig, operator, engines, circuit_name = context
    with seeded_job(seed):
        record = decomposer.decompose_output(
            aig,
            output_name,
            operator,
            engines,
            circuit_name=circuit_name,
            function=function,
            deadline=deadline,
        )
    return slot, index, record


class ExecutorBackend:
    """Interface every execution substrate implements.

    ``workers`` is the effective worker count the backend runs with —
    what the scheduler reports in ``schedule["jobs"]`` (1 for the serial
    backend regardless of the requested count).

    Two operating modes share one substrate:

    * **Batch** (:meth:`start` + :meth:`map_unordered`) — all contexts and
      jobs are known up front; results stream back through a blocking
      generator.  This is what :class:`repro.core.scheduler.BatchScheduler`
      and :class:`~repro.core.scheduler.SuiteScheduler` drive.
    * **Live** (:meth:`open` + :meth:`add_context` + :meth:`submit`) —
      the substrate is brought up empty and long-lived; circuit contexts
      join incrementally (one per request) and every submitted job
      delivers its result through a **non-blocking completion hook**
      instead of a drain loop.  This is the seam the asyncio session and
      the service daemon sit on
      (:class:`repro.core.scheduler.LiveSuiteScheduler`).
    """

    name: str = ""
    workers: int = 1

    def start(self, contexts: Sequence[ExecutionContext]) -> bool:
        """Bring the substrate up; ``False`` means "fall back sequential"."""
        raise NotImplementedError

    def map_unordered(
        self,
        jobs: Sequence[JobSpec],
        functions: Optional[Dict[Tuple[int, int], object]] = None,
    ) -> Iterator[JobResult]:
        """Run jobs, yielding ``(slot, index, record)`` as each completes.

        ``functions`` optionally maps a job's ``(slot, index)`` identity to
        its planner-extracted cone; in-process backends reuse it instead of
        re-traversing the AIG, the process backend ignores it (cones do not
        cross the pipe).
        """
        raise NotImplementedError

    # -- live (incremental) mode ------------------------------------------------

    def open(self, on_done: CompletionHook) -> bool:
        """Bring the substrate up empty, for incremental submission.

        ``on_done`` is invoked once per submitted job with ``(slot, index,
        record, error)`` from whatever thread completed it.  Returns
        ``False`` when the substrate cannot exist here (the caller picks a
        weaker backend).
        """
        raise NotImplementedError

    def add_context(self, context: ExecutionContext) -> int:
        """Register one circuit context; returns its slot for job specs.

        Slots are assigned monotonically per backend instance and never
        reused, so a long-lived service can tell request N's jobs from
        request M's even after N completed.
        """
        raise NotImplementedError

    def submit(self, job: JobSpec, function: Optional[object] = None) -> None:
        """Schedule one job; its result arrives through the ``open`` hook.

        Non-blocking for the pooled backends.  The serial backend runs the
        job inline, so the hook fires before ``submit`` returns — callers
        must tolerate synchronous completion.
        """
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release the substrate (idempotent; called in a ``finally``)."""


class SerialBackend(ExecutorBackend):
    """Inline execution in dispatch order — the deterministic reference."""

    name = BACKEND_SERIAL

    def __init__(self, workers: int = 1) -> None:
        # Serial means serial: the requested worker count is ignored.
        self.workers = 1
        self._contexts: Optional[List[_RunnerContext]] = None
        self._on_done: Optional[CompletionHook] = None

    def start(self, contexts: Sequence[ExecutionContext]) -> bool:
        self._contexts = _build_runners(contexts)
        return True

    def open(self, on_done: CompletionHook) -> bool:
        self._contexts = []
        self._on_done = on_done
        return True

    def add_context(self, context: ExecutionContext) -> int:
        assert self._contexts is not None, "open() must precede add_context()"
        aig, operator, engines, options, circuit_name = context
        self._contexts.append(
            (BiDecomposer(options), aig, operator, engines, circuit_name)
        )
        return len(self._contexts) - 1

    def submit(self, job: JobSpec, function: Optional[object] = None) -> None:
        assert self._contexts is not None and self._on_done is not None
        try:
            slot, index, record = run_job(self._contexts[job[0]], job, function)
        except BaseException as exc:  # noqa: BLE001 - delivered, not swallowed
            self._on_done(job[0], job[1], None, exc)
        else:
            self._on_done(slot, index, record, None)

    def map_unordered(
        self,
        jobs: Sequence[JobSpec],
        functions: Optional[Dict[Tuple[int, int], object]] = None,
    ) -> Iterator[JobResult]:
        assert self._contexts is not None, "start() must precede map_unordered()"
        functions = functions or {}
        for job in jobs:
            yield run_job(
                self._contexts[job[0]], job, functions.get((job[0], job[1]))
            )

    def shutdown(self) -> None:
        self._contexts = None


class ThreadBackend(ExecutorBackend):
    """A thread pool: shared memory, no pickling, legal under daemonic
    parents where ``multiprocessing`` raises."""

    name = BACKEND_THREAD

    def __init__(self, workers: int) -> None:
        self.workers = max(1, workers)
        self._contexts: Optional[List[_RunnerContext]] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._on_done: Optional[CompletionHook] = None
        # add_context appends under this lock; submit reads by index only,
        # which is safe against concurrent appends.
        self._context_lock = threading.Lock()

    def start(self, contexts: Sequence[ExecutionContext]) -> bool:
        try:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        except (OSError, RuntimeError):  # pragma: no cover - thread limits
            return False
        self._contexts = _build_runners(contexts)
        return True

    def open(self, on_done: CompletionHook) -> bool:
        if not self.start([]):
            return False  # pragma: no cover - thread limits
        self._on_done = on_done
        return True

    def add_context(self, context: ExecutionContext) -> int:
        assert self._contexts is not None, "open() must precede add_context()"
        aig, operator, engines, options, circuit_name = context
        runner = (BiDecomposer(options), aig, operator, engines, circuit_name)
        with self._context_lock:
            self._contexts.append(runner)
            return len(self._contexts) - 1

    def submit(self, job: JobSpec, function: Optional[object] = None) -> None:
        assert self._executor is not None and self._contexts is not None
        assert self._on_done is not None
        on_done = self._on_done
        slot, index = job[0], job[1]

        def deliver(future) -> None:
            try:
                _slot, _index, record = future.result()
            except BaseException as exc:  # noqa: BLE001 - includes cancellation
                on_done(slot, index, None, exc)
            else:
                on_done(slot, index, record, None)

        future = self._executor.submit(run_job, self._contexts[slot], job, function)
        future.add_done_callback(deliver)

    def map_unordered(
        self,
        jobs: Sequence[JobSpec],
        functions: Optional[Dict[Tuple[int, int], object]] = None,
    ) -> Iterator[JobResult]:
        assert self._executor is not None and self._contexts is not None
        functions = functions or {}
        futures = [
            self._executor.submit(
                run_job, self._contexts[job[0]], job, functions.get((job[0], job[1]))
            )
            for job in jobs
        ]
        for future in as_completed(futures):
            yield future.result()

    def shutdown(self) -> None:
        if self._executor is not None:
            # cancel_futures: a no-op after a full drain (nothing queued),
            # but on an error/abandoned drain it discards unstarted jobs
            # instead of blocking until every queued search finishes —
            # mirroring ProcessBackend.terminate()'s promptness.
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._contexts = None


class ProcessBackend(ExecutorBackend):
    """The historical ``multiprocessing`` pool, owned by this module now."""

    name = BACKEND_PROCESS

    def __init__(self, workers: int) -> None:
        self.workers = max(1, workers)
        self._pool = None
        self._on_done: Optional[CompletionHook] = None
        self._blobs: List[bytes] = []
        self._context_lock = threading.Lock()

    def start(self, contexts: Sequence[ExecutionContext]) -> bool:
        self._pool = _create_pool(self.workers, contexts)
        return self._pool is not None

    def open(self, on_done: CompletionHook) -> bool:
        self._pool = _create_pool(self.workers, [])
        if self._pool is None:
            return False
        self._on_done = on_done
        return True

    def add_context(self, context: ExecutionContext) -> int:
        """Register a context by pickling it ONCE into a reusable blob.

        Pool workers cannot be re-initialised after the fork, and which
        worker picks up a given job is unknowable, so every live job ships
        its context blob alongside the spec; workers unpickle it the first
        time they see the slot and serve later jobs from a per-worker LRU
        (:func:`_live_worker_run`).  Pre-pickling here means the parent
        pays AIG serialisation once per request, and the pool's own
        argument pickling just copies bytes.
        """
        assert self._pool is not None, "open() must precede add_context()"
        with self._context_lock:
            slot = len(self._blobs)
            self._blobs.append(pickle.dumps(context, pickle.HIGHEST_PROTOCOL))
        return slot

    def submit(self, job: JobSpec, function: Optional[object] = None) -> None:
        # ``function`` is deliberately ignored: cones do not cross the pipe.
        assert self._pool is not None and self._on_done is not None
        on_done = self._on_done
        slot, index = job[0], job[1]

        def deliver(result: JobResult) -> None:
            on_done(result[0], result[1], result[2], None)

        def deliver_error(exc: BaseException) -> None:
            on_done(slot, index, None, exc)

        self._pool.apply_async(
            _live_worker_run,
            ((os.getpid(), slot), self._blobs[slot], job),
            callback=deliver,
            error_callback=deliver_error,
        )

    def map_unordered(
        self,
        jobs: Sequence[JobSpec],
        functions: Optional[Dict[Tuple[int, int], object]] = None,
    ) -> Iterator[JobResult]:
        # ``functions`` is deliberately unused: worker processes rebuild
        # cones from their own forked AIG copy.
        assert self._pool is not None, "start() must precede map_unordered()"
        for result in self._pool.imap_unordered(_worker_run, list(jobs)):
            yield result

    def shutdown(self) -> None:
        if self._pool is not None:
            # Mirrors the historical `with pool:` block: terminate is safe
            # after a full drain and correct after an abandoned one.
            self._pool.terminate()
            self._pool.join()
            self._pool = None


_BACKEND_TYPES = {
    BACKEND_SERIAL: SerialBackend,
    BACKEND_THREAD: ThreadBackend,
    BACKEND_PROCESS: ProcessBackend,
}


def create_backend(name: str, workers: int) -> ExecutorBackend:
    """Instantiate the named backend sized to ``workers``."""
    kind = check_backend(name)
    backend = _BACKEND_TYPES[kind](workers)
    # Parent-side observability only: create_backend never runs inside
    # pool workers, so these counters stay in the serving process.
    from repro.obs.registry import default_registry as _obs_registry

    registry = _obs_registry()
    registry.counter(
        "repro_executor_backends_total",
        "executor backends instantiated, by kind",
    ).inc(backend=kind)
    registry.gauge(
        "repro_executor_workers",
        "effective worker count of the most recent backend, by kind",
    ).set(backend.workers, backend=kind)
    return backend


# -- process-pool plumbing (module level for pickling) --------------------------

_WORKER_STATE: Dict[str, object] = {}


def _create_pool(worker_count: int, contexts: Sequence[ExecutionContext]):
    """Fork a worker pool initialised with the given circuit contexts.

    Returns ``None`` where no pool can exist (restricted sandboxes, or a
    daemonic parent process, which multiprocessing rejects via
    AssertionError) so callers fall back to the sequential path — or pick
    the :class:`ThreadBackend` up front, which those environments accept.
    Exceptions raised *inside* jobs still propagate from the map calls,
    exactly as they would from the sequential driver.
    """
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        context = multiprocessing.get_context()
    try:
        return context.Pool(
            processes=worker_count,
            initializer=_worker_init,
            initargs=(list(contexts),),
        )
    except (OSError, ValueError, ImportError, AssertionError):  # pragma: no cover
        return None


def _worker_init(contexts: List[ExecutionContext]) -> None:
    """Install the per-circuit contexts in this worker process.

    Each entry is ``(aig, operator, engines, options, circuit_name)``; the
    worker builds one BiDecomposer per circuit so suite jobs from different
    requests run under their own options.
    """
    _WORKER_STATE["contexts"] = _build_runners(contexts)


def _worker_run(args: JobSpec) -> JobResult:
    """Run one job in a pool worker, honouring its circuit's deadline.

    ``args`` is ``(slot, index, output_name, seed, deadline)`` where
    ``slot`` selects the circuit context installed by :func:`_worker_init`.
    The :class:`Deadline` crosses the pipe as plain data; its expiry check
    compares the system-wide monotonic clock, which parent and (forked or
    spawned) workers on one machine share, so "expired" means the same
    thing on both sides.
    """
    contexts: List[_RunnerContext] = _WORKER_STATE["contexts"]  # type: ignore[assignment]
    return run_job(contexts[args[0]], args)


# Per-worker cache of live-mode runner contexts, keyed by (parent pid, slot).
# A long-lived service daemon streams a fresh circuit context with every
# request; capping the cache keeps worker memory bounded over thousands of
# requests (evicted contexts are simply rebuilt from the job's blob).
_LIVE_RUNNER_CACHE_LIMIT = 32
_LIVE_RUNNERS: "OrderedDict[Tuple[int, int], _RunnerContext]" = OrderedDict()


def _live_worker_run(token: Tuple[int, int], blob: bytes, job: JobSpec) -> JobResult:
    """Run one live-mode job in a pool worker.

    ``blob`` is the pickled :data:`ExecutionContext`; the first job of a
    context builds its :class:`BiDecomposer` and caches it under ``token``
    so the request's remaining jobs skip the unpickle + rebuild.
    """
    runner = _LIVE_RUNNERS.get(token)
    if runner is None:
        aig, operator, engines, options, circuit_name = pickle.loads(blob)
        runner = (BiDecomposer(options), aig, operator, engines, circuit_name)
        _LIVE_RUNNERS[token] = runner
        while len(_LIVE_RUNNERS) > _LIVE_RUNNER_CACHE_LIMIT:
            _LIVE_RUNNERS.popitem(last=False)
    else:
        _LIVE_RUNNERS.move_to_end(token)
    return run_job(runner, job)
