"""Recursive bi-decomposition into a network of two-input gates.

Bi-decomposition is used in logic synthesis by applying it *recursively*:
``f`` is split into ``fA <OP> fB``, then ``fA`` and ``fB`` are split again,
until the leaves are simple (few inputs) or no further non-trivial
decomposition exists.  The result is a tree of two-input OR/AND/XOR gates
over leaf functions — the "decomposed Boolean network" whose area/delay the
paper's quality metrics are proxies for.  This module provides that driver
on top of any of the partition-search engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.aig.aig import AIG, AigLiteral
from repro.aig.function import BooleanFunction
from repro.core.engine import BiDecomposer, EngineOptions
from repro.core.spec import ENGINE_STEP_QD, check_engine, check_operator
from repro.errors import DecompositionError


@dataclass
class DecompositionNode:
    """A node of the recursive decomposition tree.

    Internal nodes carry the gate ``operator`` and two children; leaves carry
    the (small) residual ``function``.
    """

    function: BooleanFunction
    operator: Optional[str] = None
    children: List["DecompositionNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def gate_count(self) -> int:
        """Number of two-input gates in the tree."""
        if self.is_leaf:
            return 0
        return 1 + sum(child.gate_count() for child in self.children)

    def depth(self) -> int:
        """Gate depth of the tree (leaves have depth 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def leaves(self) -> List["DecompositionNode"]:
        if self.is_leaf:
            return [self]
        result: List["DecompositionNode"] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def max_leaf_support(self) -> int:
        return max((leaf.function.num_inputs for leaf in self.leaves()), default=0)

    def to_function(self) -> BooleanFunction:
        """Rebuild a single function from the tree (for verification)."""
        if self.is_leaf:
            return self.function
        left = self.children[0].to_function()
        right = self.children[1].to_function()
        return left.combine(right, self.operator)


class RecursiveDecomposer:
    """Recursively bi-decompose a function into a gate tree.

    Parameters
    ----------
    engine:
        The partition-search engine used at every level (default STEP-QD).
    operators:
        Gate types tried, in order, at every level.
    max_leaf_inputs:
        Recursion stops once a sub-function has at most this many inputs.
    max_depth:
        Safety bound on the recursion depth.
    """

    def __init__(
        self,
        engine: str = ENGINE_STEP_QD,
        operators: Sequence[str] = ("or", "and", "xor"),
        max_leaf_inputs: int = 2,
        max_depth: int = 16,
        options: Optional[EngineOptions] = None,
    ) -> None:
        self.engine = check_engine(engine)
        self.operators = [check_operator(op) for op in operators]
        if max_leaf_inputs < 1:
            raise DecompositionError("max_leaf_inputs must be at least 1")
        self.max_leaf_inputs = max_leaf_inputs
        self.max_depth = max_depth
        self._step = BiDecomposer(options or EngineOptions(extract=True))

    def decompose(self, function: BooleanFunction) -> DecompositionNode:
        """Build the decomposition tree of ``function``."""
        return self._decompose(function, depth=0)

    def _decompose(self, function: BooleanFunction, depth: int) -> DecompositionNode:
        if function.num_inputs <= self.max_leaf_inputs or depth >= self.max_depth:
            return DecompositionNode(function)
        for operator in self.operators:
            result = self._step.decompose_function(function, operator, engine=self.engine)
            if not result.decomposed or result.fa is None or result.fb is None:
                continue
            left = self._decompose(result.fa, depth + 1)
            right = self._decompose(result.fb, depth + 1)
            return DecompositionNode(function, operator, [left, right])
        return DecompositionNode(function)


def network_to_aig(root: DecompositionNode, name: str = "decomposed") -> AIG:
    """Flatten a decomposition tree into a single AIG with one output."""
    aig = AIG(name)
    name_to_lit = {}
    for leaf in root.leaves():
        for node in leaf.function.inputs:
            input_name = leaf.function.aig.input_name(node)
            if input_name not in name_to_lit:
                name_to_lit[input_name] = aig.add_input(input_name)

    def build(node: DecompositionNode) -> AigLiteral:
        if node.is_leaf:
            return node.function.copy_into(aig, name_to_lit)
        left = build(node.children[0])
        right = build(node.children[1])
        if node.operator == "or":
            return aig.lor(left, right)
        if node.operator == "and":
            return aig.add_and(left, right)
        return aig.lxor(left, right)

    aig.add_output("f", build(root))
    return aig
