"""Batched multi-output decomposition scheduling.

The paper's STEP flow decomposes every primary output independently, which
makes the circuit driver embarrassingly parallel and highly redundant:
multi-output circuits routinely drive several outputs with structurally
identical cones.  :class:`BatchScheduler` exploits both properties while
preserving the sequential driver's results exactly:

* **Planning** — every primary output becomes an :class:`OutputJob` carrying
  its cone's structural signature (:func:`repro.aig.signature.cone_signature`),
  a cost estimate (cone size) and a derived deterministic seed.
* **Dedup** — jobs whose cones are structurally identical up to a
  position-respecting input renaming share one partition search: the first
  job computes, the rest *replay* the memoised result with input names mapped
  positionally (extraction and verification re-run against the actual cone,
  so the replayed ``fA``/``fB`` are exactly what a fresh run would build).
* **Fan-out** — with ``jobs > 1`` the unique cones are dispatched to a
  pluggable :class:`repro.core.executors.ExecutorBackend` (``serial``,
  ``thread`` or ``process``), heaviest cone first; the single-process path
  is the deterministic fallback (and every backend produces identical
  :meth:`repro.core.result.CircuitReport.fingerprint` values, which the
  differential tests assert).  The scheduler itself knows nothing about
  pools, forks or threads — it emits ``(slot, index, output, seed,
  deadline)`` job specs and absorbs ``(slot, index, record)`` results.
* **Deadlines** — a circuit budget (``circuit_timeout``) is honoured on
  *both* paths: every engine call runs under a sub-deadline capped by the
  circuit's remaining time (the :class:`repro.utils.timer.Deadline` is
  shipped to pool workers, whose monotonic clock is shared with the
  parent), a worker whose job starts after expiry skips it immediately, and
  the report names every budget-skipped output in
  ``schedule["skipped"]``.
* **Persistence** — with ``cache_dir`` set, replayable cache entries are
  snapshotted to ``<cache_dir>/cone_cache.json`` keyed by (canonical
  signature, operator, engine set, options fingerprint); the next run over
  the same configuration warms its cache from the snapshot and reports the
  reuse in ``schedule["persistent_hits"]``.
* **Suite sharding** — :class:`SuiteScheduler` takes the prepared jobs of
  *several* circuits and shards them across **one** shared executor
  backend, streaming each finished
  :class:`repro.core.result.OutputResult` back as it completes.  One suite
  sweep pays pool startup once instead of once per circuit, and a straggler
  circuit's cones load-balance across workers that finished lighter
  circuits' jobs.  This is the execution layer under
  :meth:`repro.api.session.Session.submit`.
* **Fair interleaving** — suite dispatch is weighted fair queueing over
  the units, not a global heaviest-first sort: each unit's own jobs stay
  heaviest-first, but units take turns in proportion to their
  ``priority``, so one huge circuit no longer monopolises every worker
  while the rest of the suite starves (:func:`fair_dispatch`).
* **Cross-circuit dedup** — units that opt in
  (``CachePolicy(cross_circuit_dedup=True)``) share one canonical-
  signature cone store for the drain: a cone solved in circuit A replays
  for its structural twin in circuit B (same search context), reported in
  ``schedule["cross_circuit_hits"]``.  Off by default so solo fingerprints
  stay bit-identical.

The identity guarantee is stated for runs whose engine calls finish within
their wall-clock budgets: a search truncated by ``per_call_timeout`` /
``output_timeout`` / ``circuit_timeout`` reflects machine load, and load
differs between runs regardless of jobs count — timed-out results (and
searches completed near the budget) can therefore differ run to run on the
sequential path too.  Dedup is keyed by the *canonical* (fanin-commutative)
cone signature: for traversal-order-exact duplicates the replay is
bit-for-bit what a fresh search would produce, while for merely
fanin-permuted duplicates it is a valid partition of the same function that
a fresh search over the permuted encoding might not have chosen.

Every job runs under a seed derived from (run seed, circuit, output name) —
never from scheduling order or worker identity — so parallel runs are
bit-for-bit reproducible (:mod:`repro.utils.rng`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.aig.aig import AIG
from repro.aig.function import BooleanFunction
from repro.aig.signature import (
    ConeCache,
    PersistentConeCache,
    canonical_cone_signature,
)
from repro.core.engine import BiDecomposer, EngineOptions, extract_and_verify
from repro.core.executors import (
    BACKEND_PROCESS,
    BACKEND_SERIAL,
    ExecutionContext,
    check_backend,
    create_backend,
)
from repro.core.partition import VariablePartition
from repro.core.result import BiDecResult, CircuitReport, OutputResult
from repro.core.spec import check_engine, check_operator
from repro.errors import DecompositionError
from repro.obs.registry import MetricsRegistry
from repro.obs.registry import default_registry as obs_registry
from repro.sat.solver import active_kernel_name
from repro.utils.rng import derive_seed, seeded_job
from repro.utils.timer import Deadline, Stopwatch, monotonic

# File name of the persistent cone cache inside ``cache_dir``.
PERSISTENT_CACHE_FILENAME = "cone_cache.json"

# Fallback reasons recorded in ``CircuitReport.schedule["fallback"]`` when a
# parallel run ends up on the sequential path.
FALLBACK_DEADLINE = "deadline"
FALLBACK_POOL_UNAVAILABLE = "pool-unavailable"
FALLBACK_WARM_CACHE = "warm-cache"
FALLBACK_SINGLE_JOB = "single-job"

# Template stored in the cone cache: the primary job's input names (for the
# positional rename) and its fully computed per-engine record.
_CacheEntry = Tuple[Tuple[str, ...], OutputResult]


def _replayable(record: OutputResult) -> bool:
    """Only complete searches are memoised: replaying a budget-truncated
    result would amplify one transient timeout across every duplicate cone,
    where recomputing gives each duplicate its own fresh budget."""
    return all(not result.timed_out for result in record.results.values())


def _aggregate_solver_stats(report: CircuitReport) -> Dict[str, int]:
    """Total solver work behind a report, for ``schedule["solver_stats"]``."""
    conflicts = decisions = propagations = 0
    for record in report.outputs:
        for result in record.results.values():
            conflicts += result.stats.conflicts
            decisions += result.stats.decisions
            propagations += result.stats.propagations
    return {
        "conflicts": conflicts,
        "decisions": decisions,
        "propagations": propagations,
    }


#: schedule key -> process-wide cache counter fed from every finalized run.
_CACHE_COUNTERS = (
    ("cache_hits", "repro_cone_cache_hits_total", "in-memory cone-cache hits"),
    ("cache_misses", "repro_cone_cache_misses_total", "in-memory cone-cache misses"),
    ("persistent_hits", "repro_persistent_cache_hits_total", "persistent cone-cache hits"),
    ("persistent_saved", "repro_persistent_cache_saved_total", "persistent cone-cache entries written"),
)


def _count_cache_activity(schedule: Dict[str, object]) -> None:
    """Fold one finalized run's cache numbers into the obs registry.

    Counting from the already-assembled schedule dict (instead of inside
    the cache hot path) keeps observability strictly downstream of the
    fingerprinted execution: the report is complete before any metric
    moves.
    """
    registry = obs_registry()
    for key, name, help_text in _CACHE_COUNTERS:
        amount = schedule.get(key, 0)
        if isinstance(amount, int) and amount > 0:
            registry.counter(name, help_text).inc(amount)


@dataclass
class OutputJob:
    """One primary output scheduled for decomposition.

    ``function`` carries the cone extracted during planning so the in-process
    execution paths do not traverse the support again; workers rebuild it in
    their own process (only the job identity crosses the pipe).
    """

    index: int
    output_name: str
    num_support: int
    input_names: Tuple[str, ...]
    cost: int
    seed: int
    cache_key: Optional[tuple]
    function: Optional[BooleanFunction] = None


@dataclass
class PreparedRun:
    """One circuit's run state between planning and report assembly.

    Produced by :meth:`BatchScheduler.prepare`, consumed by the execution
    paths and :meth:`BatchScheduler.finalize`.  The split exists so that
    :class:`SuiteScheduler` can prepare *several* circuits, interleave their
    jobs on one pool, and still finalize each circuit's report exactly as a
    standalone run would.
    """

    aig: AIG
    operator: str
    engines: List[str]
    report: CircuitReport
    deadline: Optional[Deadline]
    jobs: List[OutputJob]
    cache: ConeCache
    persistent: Optional[PersistentConeCache]
    context: str
    warmed: int
    max_outputs: Optional[int]
    # Entries the suite's sequential path absorbed (and saved) into the
    # persistent snapshot before finalize ran; counted into
    # ``schedule["persistent_saved"]``.
    saved_early: int = 0


class BatchScheduler:
    """Plan and execute per-output decomposition jobs for one circuit.

    Parameters
    ----------
    decomposer:
        The :class:`BiDecomposer` whose options and per-output pipeline the
        scheduler delegates to; ``scheduler.run(...)`` returns the same
        :class:`CircuitReport` the decomposer's sequential driver would.
    jobs:
        Worker processes; ``1`` keeps everything in-process (deterministic
        fallback).
    dedup:
        Memoise structurally identical cones (see module docstring).
    seed:
        Run seed from which every job's seed is derived.
    cache_dir:
        Directory for the persistent (cross-run) cone cache; ``None`` keeps
        the cache in-memory only.  Only meaningful with ``dedup``.
    backend:
        Executor backend for ``jobs > 1`` runs — ``"serial"``, ``"thread"``
        or ``"process"`` (see :mod:`repro.core.executors`).  All three are
        fingerprint-identical; ``jobs = 1`` never touches a backend.
    cache_max_entries:
        Persistent-cache compaction bound: at save time the snapshot is
        evicted down to this many entries, least-recently-hit first
        (``None`` = unbounded; see
        :class:`repro.aig.signature.PersistentConeCache`).
    cache_provider:
        Optional ``(path, max_entries) -> PersistentConeCache`` factory.
        A session passes one returning **shared** instances so every run
        against the same snapshot path reuses one in-memory cache (one
        disk read per session instead of per run, cumulative saves, and a
        deterministic flush point at ``Session.close()``); ``None`` opens
        a fresh instance per run, the standalone behaviour.
    """

    def __init__(
        self,
        decomposer: BiDecomposer,
        jobs: int = 1,
        dedup: bool = True,
        seed: int | str | None = 0,
        cache_dir: Optional[str] = None,
        backend: str = BACKEND_PROCESS,
        cache_max_entries: Optional[int] = None,
        cache_provider=None,
    ) -> None:
        if jobs < 1:
            raise DecompositionError("jobs must be at least 1")
        self._decomposer = decomposer
        self.jobs = jobs
        self.dedup = dedup
        self.seed = seed
        self.cache_dir = cache_dir
        self.backend = check_backend(backend)
        self.cache_max_entries = cache_max_entries
        self._cache_provider = cache_provider

    # -- planning -----------------------------------------------------------------

    def plan(
        self,
        aig: AIG,
        max_outputs: Optional[int] = None,
        circuit_name: Optional[str] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[OutputJob]:
        """Build the job list: one entry per primary output, in output order.

        Planning stops at the circuit ``deadline``: outputs past it could
        never be executed, so their cones are not even extracted.  Planning
        itself (one linear cone traversal per output, before any search
        runs) consumes an O(circuit-size) slice of the budget that the old
        interleaved driver spent output by output.
        """
        circuit = circuit_name or aig.name
        options = self._decomposer.options
        jobs: List[OutputJob] = []
        for index, (name, _) in enumerate(aig.outputs):
            if max_outputs is not None and index >= max_outputs:
                break
            if deadline is not None and deadline.expired:
                break
            function = BooleanFunction.from_output(aig, name)
            names = tuple(function.input_names)
            searchable = function.num_inputs >= options.min_support and (
                options.max_support is None
                or function.num_inputs <= options.max_support
            )
            cache_key = None
            cost = 0
            # The signature serves dedup keys and parallel dispatch costs;
            # a plain sequential no-dedup run needs neither.
            if searchable and (self.dedup or self.jobs > 1):
                signature = canonical_cone_signature(
                    function.aig, function.root, function.inputs
                )
                # Cone size (inputs + gates), read off the signature.
                cost = signature[0] + signature[1]
                if self.dedup:
                    # The engines iterate variables in input order but sort
                    # name sets in a few places (QBF blocking clauses, BDD
                    # cofactor order), so memoised results are only replayed
                    # for cones whose input names sort in the same relative
                    # order — then the search is literally the same
                    # computation.
                    sort_perm = tuple(
                        sorted(range(len(names)), key=names.__getitem__)
                    )
                    cache_key = (signature, sort_perm)
            jobs.append(
                OutputJob(
                    index=index,
                    output_name=name,
                    num_support=function.num_inputs,
                    input_names=names,
                    cost=cost,
                    seed=derive_seed(self.seed, circuit, name),
                    cache_key=cache_key,
                    function=function,
                )
            )
        return jobs

    # -- prepare / finalize -------------------------------------------------------

    def prepare(
        self,
        aig: AIG,
        operator: str,
        engines: Sequence[str],
        circuit_timeout: Optional[float] = None,
        max_outputs: Optional[int] = None,
        circuit_name: Optional[str] = None,
    ) -> PreparedRun:
        """Validate, normalise and plan one circuit run (no search yet)."""
        operator = check_operator(operator)
        engines = [check_engine(engine) for engine in engines]
        if aig.latches:
            aig = aig.make_combinational()
        report = CircuitReport(circuit=circuit_name or aig.name, operator=operator)
        deadline = Deadline(circuit_timeout) if circuit_timeout is not None else None
        jobs = self.plan(
            aig,
            max_outputs=max_outputs,
            circuit_name=report.circuit,
            deadline=deadline,
        )
        cache = ConeCache(enabled=self.dedup)
        persistent, context = self._open_persistent_cache(operator, engines)
        warmed = persistent.warm(cache, context) if persistent is not None else 0
        return PreparedRun(
            aig=aig,
            operator=operator,
            engines=engines,
            report=report,
            deadline=deadline,
            jobs=jobs,
            cache=cache,
            persistent=persistent,
            context=context,
            warmed=warmed,
            max_outputs=max_outputs,
        )

    def finalize(
        self,
        prepared: PreparedRun,
        records: Dict[int, OutputResult],
        used_workers: int,
        fallback: Optional[str],
        extra_schedule: Optional[Dict[str, object]] = None,
    ) -> CircuitReport:
        """Assemble the circuit report from executed records."""
        report = prepared.report
        for index in sorted(records):
            records[index].circuit = report.circuit
            report.outputs.append(records[index])
        totals: Dict[str, float] = {engine: 0.0 for engine in prepared.engines}
        for record in report.outputs:
            for engine, result in record.results.items():
                totals[engine] = totals.get(engine, 0.0) + result.cpu_seconds
        report.total_cpu = totals
        executed_names = {record.output_name for record in report.outputs}
        considered = [name for name, _ in prepared.aig.outputs]
        if prepared.max_outputs is not None:
            considered = considered[: prepared.max_outputs]
        cache = prepared.cache
        report.schedule = {
            # "jobs" is the worker count the run actually used: the pool
            # size on the parallel path, 1 whenever the scheduler fell back
            # to (or was forced onto) the sequential path.
            "jobs": used_workers or 1,
            "requested_jobs": self.jobs,
            # Which executor backend a parallel run would use (and, when
            # used_workers > 0, actually did).
            "backend": self.backend,
            "planned": len(prepared.jobs),
            "executed": len(records),
            # Outputs the circuit budget cut off (never planned, or planned
            # but not started before expiry), in output order.
            "skipped": [name for name in considered if name not in executed_names],
            # Why a jobs>1 request ran sequentially (None when it did not).
            "fallback": fallback,
            "unique_cones": len(cache),
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            # Which solver substrate produced this report ("c" when the
            # compiled kernel is active, "python" otherwise).  Lives in the
            # schedule, which fingerprints exclude: both substrates are
            # decision-for-decision identical, so the fingerprint must not
            # depend on which one ran.
            "solver_kernel": active_kernel_name(),
            # Aggregate solver work across every executed result (cache
            # replays included — their memoised search counters replay with
            # them, keeping the aggregate independent of cache state).
            "solver_stats": _aggregate_solver_stats(report),
        }
        if extra_schedule:
            report.schedule.update(extra_schedule)
        if prepared.persistent is not None:
            saved = prepared.persistent.absorb(cache, prepared.context)
            if saved or prepared.persistent.dirty:
                # dirty without new entries = recency bumps under a
                # max_entries bound; they must reach disk for LRU
                # compaction to see them.
                prepared.persistent.save()
            report.schedule["persistent_hits"] = cache.warm_hits
            report.schedule["persistent_loaded"] = prepared.warmed
            report.schedule["persistent_saved"] = prepared.saved_early + saved
        _count_cache_activity(report.schedule)
        return report

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        aig: AIG,
        operator: str,
        engines: Sequence[str],
        circuit_timeout: Optional[float] = None,
        max_outputs: Optional[int] = None,
        circuit_name: Optional[str] = None,
    ) -> CircuitReport:
        """Decompose every primary output and assemble the circuit report."""
        prepared = self.prepare(
            aig,
            operator,
            engines,
            circuit_timeout=circuit_timeout,
            max_outputs=max_outputs,
            circuit_name=circuit_name,
        )
        records: Dict[int, OutputResult] = {}
        used_workers = 0
        fallback: Optional[str] = None
        if self.jobs > 1:
            if prepared.deadline is not None and prepared.deadline.expired:
                # The budget was consumed by planning alone; forking a pool
                # just to have every worker skip its job would be waste.
                fallback = FALLBACK_DEADLINE
            elif len(prepared.jobs) <= 1:
                # Nothing to fan out: the circuit planned at most one job.
                fallback = FALLBACK_SINGLE_JOB
            else:
                used_workers, fallback = self._run_parallel(prepared, records)
        if not used_workers:
            self._run_sequential(prepared, records)
        return self.finalize(prepared, records, used_workers, fallback)

    def _open_persistent_cache(
        self, operator: str, engines: List[str]
    ) -> Tuple[Optional[PersistentConeCache], str]:
        """The cross-run snapshot (if configured) and this run's context key.

        The context key ties entries to everything that determines a
        partition search besides the cone itself: the gate operator, the
        engine *set* (order never changes results — the driver always runs
        STEP-MG first and shares its bootstrap) and the search-relevant
        engine options.  Without dedup there is nothing to warm or absorb,
        so the snapshot is not even opened.
        """
        context = (
            f"op={operator}|engines={','.join(sorted(set(engines)))}"
            f"|{self._decomposer.options.search_fingerprint()}"
        )
        if self.cache_dir is None or not self.dedup:
            return None, context
        path = os.path.join(self.cache_dir, PERSISTENT_CACHE_FILENAME)
        if self._cache_provider is not None:
            return self._cache_provider(path, self.cache_max_entries), context
        return PersistentConeCache(path, max_entries=self.cache_max_entries), context

    def _run_sequential(
        self, prepared: PreparedRun, records: Dict[int, OutputResult]
    ) -> None:
        """In-process execution in output order (mirrors the legacy driver)."""
        for _record in self.execute_local(prepared, prepared.jobs, records):
            pass

    def _execute_job(
        self,
        aig: AIG,
        job: OutputJob,
        operator: str,
        engines: List[str],
        circuit_name: str,
        cache: ConeCache,
        deadline: Optional[Deadline] = None,
    ) -> OutputResult:
        """Run one job, consulting and feeding the cone memo cache."""
        if job.cache_key is not None:
            entry = cache.lookup(job.cache_key)
            if entry is not None:
                return self._replay(aig, job, operator, entry)
        with seeded_job(job.seed):
            record = self._decomposer.decompose_output(
                aig,
                job.output_name,
                operator,
                engines,
                circuit_name=circuit_name,
                function=job.function,
                deadline=deadline,
            )
        if job.cache_key is not None and _replayable(record):
            cache.store(job.cache_key, (job.input_names, record))
        return record

    # -- pool plumbing shared with SuiteScheduler ---------------------------------

    def split_for_pool(
        self, prepared: PreparedRun
    ) -> Tuple[List[OutputJob], List[OutputJob]]:
        """Partition jobs into pool-dispatched primaries and local followers.

        A follower is an in-run duplicate of an earlier job's cone, or a
        cone the warmed persistent snapshot already answers: it replays
        locally and is never dispatched.
        """
        primaries: List[OutputJob] = []
        followers: List[OutputJob] = []
        seen: set = set()
        for job in prepared.jobs:
            if job.cache_key is not None and (
                job.cache_key in seen or prepared.cache.contains(job.cache_key)
            ):
                followers.append(job)
                continue
            if job.cache_key is not None:
                seen.add(job.cache_key)
            primaries.append(job)
        return primaries, followers

    def worker_options(self) -> EngineOptions:
        """The options a pool worker runs under: search only, no recursion.

        Workers run the partition search but never extract, verify or
        persist — those happen in the parent against its own AIG, so results
        do not ship whole worker-side AIG copies through the pipe.
        """
        return replace(
            self._decomposer.options, jobs=1, extract=False, verify=False,
            cache_dir=None,
        )

    def absorb_worker_record(
        self, prepared: PreparedRun, job: OutputJob, record: OutputResult
    ) -> None:
        """Parent-side completion of a worker-computed record.

        Extracts (and optionally verifies) ``fA``/``fB`` against the
        parent's AIG and mirrors the sequential path's cache accounting
        (one miss, then the store) so hit/miss counters are identical for
        any jobs count.
        """
        if self._decomposer.options.extract:
            self._extract_record(prepared.aig, job, prepared.operator, record)
        if job.cache_key is not None:
            prepared.cache.lookup(job.cache_key)
            if _replayable(record):
                prepared.cache.store(job.cache_key, (job.input_names, record))

    def execute_local(
        self,
        prepared: PreparedRun,
        jobs: Sequence[OutputJob],
        records: Dict[int, OutputResult],
    ) -> Iterator[OutputResult]:
        """Run jobs in-process in the given order, yielding each record.

        Serves both the sequential path (all jobs) and the follower replay
        after a pool run: ``_execute_job`` replays on a cache hit; when a
        follower's primary record was not cached (budget-truncated or
        skipped), it recomputes with a fresh budget — exactly as the
        sequential path would.
        """
        for job in jobs:
            if prepared.deadline is not None and prepared.deadline.expired:
                break
            record = self._execute_job(
                prepared.aig,
                job,
                prepared.operator,
                prepared.engines,
                prepared.report.circuit,
                prepared.cache,
                prepared.deadline,
            )
            records[job.index] = record
            yield record

    def _run_parallel(
        self, prepared: PreparedRun, records: Dict[int, OutputResult]
    ) -> Tuple[int, Optional[str]]:
        """Fan unique cones out to the executor backend; replay duplicates
        locally.

        Returns ``(worker_count, fallback_reason)``: the backend's
        effective worker count on success, or ``0`` plus the reason when
        the run belongs on the sequential path instead — the backend could
        not start (no process pool in restricted environments), or every
        cone replays from the warmed persistent cache and spinning up an
        executor would be pure overhead.

        Stop-at-expiry semantics under a circuit ``deadline``: the deadline
        object is shipped with every job (wall-clock deadlines compare the
        shared system monotonic clock, so parent and workers agree on
        expiry), a job that starts after expiry yields a skip marker
        instead of searching, and engine calls inside a job run under
        sub-deadlines capped by the circuit's remaining time.  Which jobs
        get skipped depends on dispatch order and worker load — the
        sequential path skips in output order instead — but on budgets
        generous enough that nothing is truncated both paths skip nothing
        and stay fingerprint-identical.
        """
        primaries, followers = self.split_for_pool(prepared)
        if not primaries:
            # Everything replays from the warmed cache; no executor needed.
            return 0, FALLBACK_WARM_CACHE

        # Heaviest cones first so stragglers start early (cost-ordered
        # scheduling); results are placed back by output index.
        dispatch = sorted(primaries, key=lambda job: (-job.cost, job.index))
        backend = create_backend(self.backend, min(self.jobs, len(dispatch)))
        contexts: List[ExecutionContext] = [
            (
                prepared.aig,
                prepared.operator,
                prepared.engines,
                self.worker_options(),
                prepared.report.circuit,
            )
        ]
        if not backend.start(contexts):
            return 0, FALLBACK_POOL_UNAVAILABLE
        try:
            job_of = {job.index: job for job in dispatch}
            for _slot, index, record in backend.map_unordered(
                [
                    (0, job.index, job.output_name, job.seed, prepared.deadline)
                    for job in dispatch
                ],
                # In-process backends reuse the planner's extracted cones;
                # the process backend ignores this (workers rebuild them).
                functions={
                    (0, job.index): job.function
                    for job in dispatch
                    if job.function is not None
                },
            ):
                if record is None:
                    continue  # budget-skipped in the worker
                self.absorb_worker_record(prepared, job_of[index], record)
                records[index] = record
        finally:
            backend.shutdown()
        for _record in self.execute_local(prepared, followers, records):
            pass
        return backend.workers, None

    def _extract_record(
        self, aig: AIG, job: OutputJob, operator: str, record: OutputResult
    ) -> None:
        """Extract (and optionally verify) fA/fB for a worker-computed record."""
        options = self._decomposer.options
        function = job.function
        for result in record.results.values():
            if not result.decomposed or result.partition is None:
                continue
            if function is None:
                function = BooleanFunction.from_output(aig, job.output_name)
            result.fa, result.fb = extract_and_verify(
                function, operator, result.partition, options
            )

    # -- cache replay -------------------------------------------------------------

    def _replay(
        self, aig: AIG, job: OutputJob, operator: str, entry: _CacheEntry
    ) -> OutputResult:
        """Reconstruct a memoised record for a structurally identical cone.

        Partition names are mapped positionally from the primary cone's
        inputs to this cone's; extraction and verification are re-run against
        the actual cone so the sub-functions are the ones a fresh
        decomposition would have produced.
        """
        template_names, template = entry
        options = self._decomposer.options
        function = job.function  # planned cone; only consumed when extracting
        mapping = dict(zip(template_names, job.input_names))
        record = OutputResult(
            circuit=template.circuit,
            output_name=job.output_name,
            num_support=job.num_support,
        )
        for engine, result in template.results.items():
            stopwatch = Stopwatch().start()
            partition = None
            if result.partition is not None:
                partition = VariablePartition(
                    tuple(mapping[name] for name in result.partition.xa),
                    tuple(mapping[name] for name in result.partition.xb),
                    tuple(mapping[name] for name in result.partition.xc),
                )
            stats = result.stats.copy()
            stats.cache_hits += 1
            replayed = BiDecResult(
                engine=result.engine,
                operator=result.operator,
                decomposed=result.decomposed,
                partition=partition,
                optimum_proven=result.optimum_proven,
                timed_out=result.timed_out,
                stats=stats,
            )
            if replayed.decomposed and partition is not None and options.extract:
                if function is None:
                    function = BooleanFunction.from_output(aig, job.output_name)
                replayed.fa, replayed.fb = extract_and_verify(
                    function, operator, partition, options
                )
            replayed.cpu_seconds = stopwatch.stop()
            record.results[engine] = replayed
        return record


@dataclass
class SuiteUnit:
    """One circuit's slice of a suite run: a scheduler plus run parameters.

    The suite layer deliberately couples each circuit to its *own*
    :class:`BatchScheduler` (options, dedup cache, persistent snapshot,
    seed) so a suite run stays fingerprint-identical to running each
    circuit individually — only the executor backend is shared.

    ``priority`` weights the unit in the suite's fair dispatch: a unit of
    priority 2 is charged half as much virtual time per cone as a unit of
    priority 1, so its jobs reach workers roughly twice as often.
    ``cross_dedup`` opts the unit into the suite-wide cone store (a cone
    solved by any opted-in unit with the same search context replays for
    this unit's structural twins).
    """

    scheduler: BatchScheduler
    aig: AIG
    operator: str
    engines: Sequence[str]
    circuit_timeout: Optional[float] = None
    max_outputs: Optional[int] = None
    circuit_name: Optional[str] = None
    priority: float = 1.0
    cross_dedup: bool = False


class _CrossUnitCache:
    """A unit's cone-cache view coupled to a suite-wide shared store.

    Wraps the unit's own :class:`repro.aig.signature.ConeCache` (all
    per-unit accounting — hits, misses, warm hits, entry count — still
    lives there, so solo-comparable stats survive) and adds a second
    lookup level: entries any opted-in unit stored under the same search
    ``context``.  A lookup that misses the unit's own cache but hits the
    shared store is a **cross-circuit replay**, counted in
    ``cross_hits`` and reported as ``schedule["cross_circuit_hits"]``;
    the unit-local miss counter still increments, keeping per-unit
    counters identical to a solo run.

    The shared key includes the unit's persistent-cache context string
    (operator, engine set, search-relevant options), so two units only
    ever exchange cones their searches would have computed identically.
    """

    def __init__(self, base: ConeCache, shared: Dict[tuple, object], context: str) -> None:
        self.base = base
        self._shared = shared
        self._context = context
        self.cross_hits = 0
        # Entries the unit already holds when it joins the suite store —
        # cones warmed from its persistent snapshot during prepare() —
        # become cross-circuit replayable too (only replayable entries are
        # ever persisted, so publishing them is always safe).
        if base.enabled:
            for key, value in base.items():
                shared.setdefault((context, key), value)

    @property
    def enabled(self) -> bool:
        return self.base.enabled

    @property
    def hits(self) -> int:
        return self.base.hits

    @property
    def misses(self) -> int:
        return self.base.misses

    @property
    def warm_hits(self) -> int:
        return self.base.warm_hits

    @property
    def hit_keys(self) -> set:
        return self.base.hit_keys

    def __len__(self) -> int:
        return len(self.base)

    def contains(self, key) -> bool:
        return self.base.contains(key) or (
            self.base.enabled and (self._context, key) in self._shared
        )

    def lookup(self, key):
        value = self.base.lookup(key)
        if value is not None or not self.base.enabled:
            return value
        value = self._shared.get((self._context, key))
        if value is not None:
            self.cross_hits += 1
            # Adopt the entry locally: the cross replay now plays the role
            # of this unit's primary, so the unit's *own* later duplicates
            # hit its own cache — per-unit dedup counters stay exactly
            # what a solo run reports (one miss for the first sight of the
            # cone, hits for the rest).
            self.base.store(key, value)
        return value

    def store(self, key, value) -> None:
        self.base.store(key, value)
        if self.base.enabled:
            # First writer wins: entries are deterministic per context, so
            # keeping the earliest preserves "one search, many replays".
            self._shared.setdefault((self._context, key), value)

    def warm(self, key, value) -> None:
        self.base.warm(key, value)
        if self.base.enabled:
            self._shared.setdefault((self._context, key), value)

    def items(self):
        # Own entries only: persistent-snapshot absorption must not
        # re-serialise cones another unit computed (that unit absorbs them).
        return self.base.items()

    def stats(self) -> Dict[str, int]:
        merged = self.base.stats()
        merged["cross_hits"] = self.cross_hits
        return merged


def fair_dispatch(
    queues: Sequence[Sequence[OutputJob]], priorities: Sequence[float]
) -> List[Tuple[int, OutputJob]]:
    """Weighted fair interleaving of per-unit job queues.

    Each unit's jobs are kept in its solo dispatch order (heaviest cone
    first, ties by output index); *between* units the sequence is weighted
    fair queueing: dispatching a job charges its unit ``(cost + 1) /
    priority`` units of virtual time, and the next job dispatched is
    always the one with the smallest virtual finish time anywhere (ties
    broken by submit slot).  Compared with the old global heaviest-first
    sort, a unit with many heavy cones no longer pushes every other
    unit's jobs to the back of the dispatch sequence — light units get
    workers early in proportion to their priority, which is what bounds
    a small request's latency when it shares a suite with a monster.

    The sequence is a pure function of (costs, indices, priorities):
    deterministic, and identical for every backend.  O(N log U) for N jobs
    over U units: a heap of per-unit virtual finish times, one push/pop
    per dispatched job.
    """
    from heapq import heapify, heappop, heappush

    ordered = [
        sorted(queue, key=lambda job: (-job.cost, job.index)) for queue in queues
    ]
    position = [0] * len(ordered)
    # (virtual finish time of the unit's NEXT job, slot): popping the heap
    # minimum IS the linear "smallest finish anywhere, ties by slot" rule.
    heap = [
        (float(queue[0].cost + 1) / priorities[slot], slot)
        for slot, queue in enumerate(ordered)
        if queue
    ]
    heapify(heap)
    dispatch: List[Tuple[int, OutputJob]] = []
    while heap:
        finish, slot = heappop(heap)
        queue = ordered[slot]
        dispatch.append((slot, queue[position[slot]]))
        position[slot] += 1
        if position[slot] < len(queue):
            next_cost = queue[position[slot]].cost + 1
            heappush(heap, (finish + next_cost / priorities[slot], slot))
    return dispatch


class SuiteScheduler:
    """Shard the outputs of several circuits across ONE shared executor.

    Where ``BatchScheduler.run`` starts an executor per circuit, the suite
    scheduler prepares every unit first, then dispatches *all* their unique
    cones — interleaved fairly across units (:func:`fair_dispatch`) — to a
    single backend, so a benchmark sweep pays executor startup once and
    cross-circuit load imbalance is absorbed by whichever workers free up
    first.  Followers (in-run duplicates and persistent-cache hits) replay
    locally per unit, exactly as in a standalone run, which keeps every
    unit's report fingerprint-identical to its individual
    ``decompose_circuit`` result.

    :meth:`stream` is a generator yielding ``(unit_index, OutputResult)``
    pairs as jobs complete; with ``jobs > 1`` the order is completion order
    (nondeterministic), with ``jobs = 1`` it is submit × output order.  The
    *content* — each record and each finalized report — is deterministic
    either way.  Reports are assembled once the stream is drained.

    Each report's ``schedule`` gains ``shared_pool`` (whether the unit's
    jobs ran on the suite executor), ``pool_id`` (the same identifier
    across every unit of one suite — the "exactly one executor" witness),
    ``suite_size``, ``backend`` and ``priority`` — plus
    ``cross_circuit_dedup`` / ``cross_circuit_hits`` for units that opted
    into the suite-wide cone store; ``pools_created`` on the scheduler
    records how many executors the whole suite started (0 on the
    sequential path, never more than 1).
    """

    def __init__(
        self,
        units: Sequence[SuiteUnit],
        jobs: int = 1,
        pool_id: int = 0,
        backend: str = BACKEND_PROCESS,
    ) -> None:
        if jobs < 1:
            raise DecompositionError("jobs must be at least 1")
        for unit in units:
            if not unit.priority > 0:
                raise DecompositionError(
                    f"unit priority must be > 0 (got {unit.priority!r})"
                )
        self.units = list(units)
        self.jobs = jobs
        self.pool_id = pool_id
        self.backend = check_backend(backend)
        self.pools_created = 0
        self.worker_count = 0
        self._reports: Optional[List[CircuitReport]] = None

    def reports(self) -> List[CircuitReport]:
        """Per-unit reports, in submit order; requires a drained stream."""
        if self._reports is None:
            raise DecompositionError(
                "suite reports are assembled when the job stream is drained; "
                "iterate stream() (or call run()) first"
            )
        return self._reports

    def run(self) -> List[CircuitReport]:
        """Drain the stream and return the per-unit reports."""
        for _ in self.stream():
            pass
        return self.reports()

    @staticmethod
    def _arm_deadline(ready: PreparedRun, budget_left: Optional[float]) -> None:
        """Restart a unit's circuit budget the moment its jobs can run.

        ``budget_left`` is what the budget had left right after the unit's
        own planning; arming from that snapshot (rather than the live
        deadline) is idempotent, so the sequential fallback after a failed
        pool creation re-arms to the same remaining budget, not less.
        """
        if ready.deadline is not None and budget_left is not None:
            ready.deadline = Deadline(budget_left)

    @staticmethod
    def _share_persistent_caches(prepared: List[PreparedRun]) -> None:
        """Point units with one snapshot path at ONE in-memory instance.

        Suite units prepare (and therefore load the snapshot) before any of
        them runs; with per-unit instances the *last* finalize's save would
        rewrite the file from a copy loaded before the other units absorbed
        their entries, dropping them.  Sharing the instance makes each save
        cumulative — the per-circuit sequential flow built that up by
        construction (load N+1 happened after save N).  Warming already
        happened against identical loaded state, so reports are unaffected.
        """
        shared: Dict[str, PersistentConeCache] = {}
        for ready in prepared:
            if ready.persistent is None:
                continue
            path = os.path.abspath(ready.persistent.path)
            if path in shared:
                ready.persistent = shared[path]
            else:
                shared[path] = ready.persistent

    def stream(self) -> Iterator[Tuple[int, OutputResult]]:
        """Execute the suite, yielding ``(unit_index, record)`` as completed."""
        prepared: List[PreparedRun] = []
        budgets_left: List[Optional[float]] = []
        for unit in self.units:
            ready = unit.scheduler.prepare(
                unit.aig,
                unit.operator,
                unit.engines,
                circuit_timeout=unit.circuit_timeout,
                max_outputs=unit.max_outputs,
                circuit_name=unit.circuit_name,
            )
            prepared.append(ready)
            # A unit's circuit budget must pay for its own planning and
            # execution — never for the time *other* units spend running
            # before it.  Snapshot what is left right after planning and
            # re-arm the deadline when this unit's jobs can actually start
            # (_arm_deadline); otherwise earlier units' execution would
            # drain later units' budgets and suite reports would diverge
            # from solo runs.
            budgets_left.append(
                None if ready.deadline is None else ready.deadline.remaining()
            )
        records: List[Dict[int, OutputResult]] = [{} for _ in self.units]
        self._share_persistent_caches(prepared)
        # Units that opted into cross-circuit dedup look their cones up in
        # a suite-wide store as well as their own cache; everything any
        # opted-in unit computes (or warms from disk) under the same
        # search context becomes replayable for the others.
        shared_cones: Dict[tuple, object] = {}
        for unit, ready in zip(self.units, prepared):
            if unit.cross_dedup and ready.cache.enabled:
                ready.cache = _CrossUnitCache(
                    ready.cache, shared_cones, ready.context
                )
        used_workers = 0
        fallback: Optional[str] = None

        # A suite on the serial backend takes the sequential path outright:
        # inline execution cannot overlap units, so arming every circuit
        # budget "concurrently" at executor start would make earlier units'
        # inline searches drain later units' budgets — the sequential path
        # below re-arms each budget when that unit actually starts, exactly
        # like a solo run.
        if self.jobs > 1 and self.backend != BACKEND_SERIAL:
            splits = [
                unit.scheduler.split_for_pool(ready)
                for unit, ready in zip(self.units, prepared)
            ]
            # Weighted fair interleaving across units (each unit's own jobs
            # stay heaviest-first); deterministic dispatch sequence, though
            # arrival order still varies with worker load.
            dispatch = fair_dispatch(
                [primaries for primaries, _ in splits],
                [unit.priority for unit in self.units],
            )
            dispatch, cross_followers, needs, provider_key = (
                self._cross_dedup_dispatch(dispatch, prepared)
            )
            if sum(len(ready.jobs) for ready in prepared) <= 1:
                fallback = FALLBACK_SINGLE_JOB
            elif not dispatch:
                fallback = FALLBACK_WARM_CACHE
            else:
                contexts: List[ExecutionContext] = [
                    (
                        ready.aig,
                        ready.operator,
                        ready.engines,
                        unit.scheduler.worker_options(),
                        ready.report.circuit,
                    )
                    for unit, ready in zip(self.units, prepared)
                ]
                backend = create_backend(
                    self.backend, min(self.jobs, len(dispatch))
                )
                if not backend.start(contexts):
                    fallback = FALLBACK_POOL_UNAVAILABLE
                else:
                    self.pools_created += 1
                    self.worker_count = backend.workers
                    used_workers = backend.workers
                    # Backend units execute concurrently: every budget
                    # starts now.
                    for slot, ready in enumerate(prepared):
                        self._arm_deadline(ready, budgets_left[slot])
                    job_of = {(slot, job.index): job for slot, job in dispatch}
                    followers_of = [followers for _, followers in splits]
                    pending = [0] * len(self.units)
                    for slot, _job in dispatch:
                        pending[slot] += 1
                    replayed = [False] * len(self.units)
                    # Keys whose provider job has come back (with a record
                    # or a skip marker — either way, waiting longer is
                    # pointless).
                    done_keys: set = set()

                    def replay_ready_units():
                        """Replay followers of every unit with nothing left
                        in flight.

                        A unit is ready once its own primaries have all
                        arrived AND every provider its cross twins wait on
                        has come back — never later, so its circuit budget
                        does not pay for unrelated units' remaining
                        searches.  Cross twins replay first (adopting the
                        provider's entry as the unit's local primary), then
                        the unit's own followers replay against it exactly
                        as in a solo run.
                        """
                        for slot in range(len(self.units)):
                            if (
                                replayed[slot]
                                or pending[slot]
                                or not needs[slot] <= done_keys
                            ):
                                continue
                            replayed[slot] = True
                            for record in self.units[slot].scheduler.execute_local(
                                prepared[slot],
                                cross_followers[slot] + followers_of[slot],
                                records[slot],
                            ):
                                yield slot, record

                    # Units needing nothing from the backend — and nothing
                    # from other units' in-flight searches — replay their
                    # followers now, before their budgets are spent waiting
                    # on other units.
                    yield from replay_ready_units()
                    try:
                        for slot, index, record in backend.map_unordered(
                            [
                                (
                                    slot,
                                    job.index,
                                    job.output_name,
                                    job.seed,
                                    prepared[slot].deadline,
                                )
                                for slot, job in dispatch
                            ],
                            # In-process backends reuse the planner's cones;
                            # the process backend ignores this.
                            functions={
                                (slot, job.index): job.function
                                for slot, job in dispatch
                                if job.function is not None
                            },
                        ):
                            pending[slot] -= 1
                            key = provider_key.get((slot, index))
                            if key is not None:
                                done_keys.add(key)
                            if record is not None:
                                job = job_of[(slot, index)]
                                self.units[slot].scheduler.absorb_worker_record(
                                    prepared[slot], job, record
                                )
                                records[slot][index] = record
                                yield slot, record
                            yield from replay_ready_units()
                    finally:
                        backend.shutdown()
                    # A full drain leaves nothing behind: the last arrival
                    # completed every unit's pending count and provider
                    # set, so every unit replayed inside the loop.

        if not used_workers:
            # Sequential path: submit order, then output order (the exact
            # execution a per-circuit sequential run would perform).
            for slot, ready in enumerate(prepared):
                scheduler = self.units[slot].scheduler
                self._arm_deadline(ready, budgets_left[slot])
                if ready.persistent is not None:
                    # Earlier units may have absorbed entries into the shared
                    # snapshot; re-warm so this unit replays them — exactly
                    # what the legacy run-per-circuit flow got by loading
                    # the snapshot after the previous circuit saved it.
                    ready.warmed = ready.persistent.warm(ready.cache, ready.context)
                for record in scheduler.execute_local(ready, ready.jobs, records[slot]):
                    yield slot, record
                if ready.persistent is not None:
                    # Absorb (and save) now so the next unit's re-warm sees
                    # this unit's entries; finalize counts saved_early into
                    # schedule["persistent_saved"] and only rewrites the
                    # snapshot if anything new appeared since.
                    ready.saved_early = ready.persistent.absorb(
                        ready.cache, ready.context
                    )
                    if ready.saved_early or ready.persistent.dirty:
                        ready.persistent.save()

        base_extra: Dict[str, object] = {
            "shared_pool": used_workers > 0,
            "pool_id": self.pool_id if used_workers else None,
            "suite_size": len(self.units),
            # The suite's backend overrides the per-unit scheduler's: one
            # suite runs on one substrate.
            "backend": self.backend,
        }
        reports: List[CircuitReport] = []
        for slot, (unit, ready) in enumerate(zip(self.units, prepared)):
            extra = dict(base_extra)
            extra["priority"] = unit.priority
            if isinstance(ready.cache, _CrossUnitCache):
                extra["cross_circuit_dedup"] = True
                extra["cross_circuit_hits"] = ready.cache.cross_hits
            reports.append(
                unit.scheduler.finalize(
                    ready, records[slot], used_workers, fallback, extra_schedule=extra
                )
            )
        self._reports = reports

    def _cross_dedup_dispatch(
        self,
        dispatch: List[Tuple[int, OutputJob]],
        prepared: List[PreparedRun],
    ) -> Tuple[
        List[Tuple[int, OutputJob]],
        List[List[OutputJob]],
        List[set],
        Dict[Tuple[int, int], tuple],
    ]:
        """Dedup the dispatch sequence across opted-in units.

        The first dispatched job of each ``(search context, cone key)``
        pair stays on the backend; later structural twins from *other*
        opted-in units are pulled out and replayed locally once the
        provider's record lands in the suite-wide store (in-unit twins
        were already split off as followers).  Units that did not opt in
        are passed through untouched.

        Returns ``(kept_dispatch, cross_followers, needs, provider_key)``:
        ``needs[slot]`` is the set of shared-store keys whose provider jobs
        must come back before the unit's local replays can run, and
        ``provider_key`` maps a provider job's ``(slot, index)`` identity
        to the key it provides — the drain loop's readiness bookkeeping.
        """
        cross_followers: List[List[OutputJob]] = [[] for _ in self.units]
        needs: List[set] = [set() for _ in self.units]
        provider_key: Dict[Tuple[int, int], tuple] = {}
        if not any(unit.cross_dedup for unit in self.units):
            return dispatch, cross_followers, needs, provider_key
        providers: Dict[tuple, Tuple[int, int]] = {}
        kept: List[Tuple[int, OutputJob]] = []
        for slot, job in dispatch:
            if self.units[slot].cross_dedup and job.cache_key is not None:
                key = (prepared[slot].context, job.cache_key)
                if key in providers:
                    cross_followers[slot].append(job)
                    needs[slot].add(key)
                    provider_key[providers[key]] = key
                    continue
                providers[key] = (slot, job.index)
            kept.append((slot, job))
        return kept, cross_followers, needs, provider_key


class LiveFairQueue:
    """Incremental weighted fair queueing over per-unit job queues.

    The live counterpart of :func:`fair_dispatch`: units *join* (and
    leave) while dispatch is in flight, so the whole sequence can never be
    computed up front.  The virtual-time rule is the same — dispatching a
    job charges its unit ``(cost + 1) / priority`` — with one addition: a
    unit that joins mid-stream starts its virtual clock at the **current**
    global virtual time, so it competes fairly from now on instead of
    retroactively (it can neither starve incumbents by back-dating its
    backlog nor be starved by theirs).

    Not thread-safe on its own; :class:`LiveSuiteScheduler` serialises
    access under its lock.
    """

    def __init__(self) -> None:
        from collections import deque

        self._deque = deque  # constructor cached for add_unit
        self._virtual = 0.0
        self._heap: List[Tuple[float, int, int]] = []
        self._queues: Dict[int, object] = {}
        self._priorities: Dict[int, float] = {}
        self._seq = 0

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def add_unit(
        self, slot: int, jobs: Sequence[OutputJob], priority: float
    ) -> None:
        """Enqueue a unit's jobs (kept in the given order) at weight
        ``priority``."""
        from heapq import heappush

        if not jobs:
            return
        self._queues[slot] = self._deque(jobs)
        self._priorities[slot] = priority
        self._seq += 1
        finish = self._virtual + (jobs[0].cost + 1) / priority
        heappush(self._heap, (finish, slot, self._seq))

    def pop(self) -> Optional[Tuple[int, OutputJob]]:
        """The next ``(slot, job)`` under WFQ order, or ``None`` when empty.

        Entries whose unit was removed (cancelled) are skipped lazily.
        """
        from heapq import heappop, heappush

        while self._heap:
            finish, slot, _seq = heappop(self._heap)
            queue = self._queues.get(slot)
            if queue is None:
                continue  # unit cancelled after this entry was pushed
            job = queue.popleft()
            self._virtual = max(self._virtual, finish)
            if queue:
                self._seq += 1
                next_finish = finish + (queue[0].cost + 1) / self._priorities[slot]
                heappush(self._heap, (next_finish, slot, self._seq))
            else:
                del self._queues[slot]
                del self._priorities[slot]
            return slot, job
        return None

    def remove_unit(self, slot: int) -> int:
        """Drop a unit's queued jobs (cooperative cancel); returns how many."""
        queue = self._queues.pop(slot, None)
        self._priorities.pop(slot, None)
        return len(queue) if queue is not None else 0


@dataclass
class _LiveUnit:
    """One live request's execution state inside :class:`LiveSuiteScheduler`."""

    unit: Optional[SuiteUnit]
    prepared: Optional[PreparedRun]
    ticket: object  # RequestTicket (typed loosely: api imports core, not back)
    followers: List[OutputJob]
    job_of: Dict[int, OutputJob]
    records: Dict[int, OutputResult]
    inflight: int = 0
    queued: int = 0
    dispatched: bool = False  # any primary reached the executor
    finished: bool = False
    # Remaining circuit budget right after planning; armed at first
    # dispatch so queue wait behind other clients costs the unit nothing.
    budget_left: Optional[float] = None
    armed: bool = False
    # Monotonic timestamp of fair-queue entry; the arming point observes
    # the difference as this request's fair-queue wait (obs only).
    enqueued_at: Optional[float] = None
    # forget() was requested while jobs were still in flight; the entry
    # is dropped when the last one lands.
    forgotten: bool = False

    def release(self) -> None:
        """Drop the heavy per-run state once the request is terminal (a
        daemon keeps tickets for its lifetime; it must not keep AIGs)."""
        self.unit = None
        self.prepared = None
        self.followers = []
        self.job_of = {}
        self.records = {}


class LiveSuiteScheduler:
    """A long-lived, incrementally fed fair scheduler over ONE executor.

    Where :class:`SuiteScheduler` executes a *closed* batch (every unit
    known before the first job dispatches), the live scheduler is the
    **open** counterpart the asyncio session and the service daemon sit
    on: it brings one executor backend up in live mode
    (:meth:`repro.core.executors.ExecutorBackend.open`) and keeps it warm
    for its whole lifetime, while requests

    * **join** at any time (:meth:`add_request`) — the unit is planned,
      its unique cones enter the live fair queue
      (:class:`LiveFairQueue`) and start competing for workers
      immediately, interleaved with every other in-flight request;
    * **cancel** cooperatively (:meth:`cancel`) — queued jobs are
      dropped, in-flight jobs finish but their results are discarded,
      and no other request is perturbed;
    * **complete** independently — once a unit's primaries are back its
      followers replay locally and its report finalizes exactly as a
      standalone run's would (same per-unit cache, deadline and seed
      machinery, so fingerprints match solo runs).

    Results are pushed, not pulled: job completions arrive through the
    executor's non-blocking hook, and the scheduler surfaces them through
    the per-request :class:`repro.api.lifecycle.RequestTicket` (state
    transitions, final report, failure) plus an optional ``on_record``
    callback per finished output.  Callbacks fire under the scheduler
    lock from executor threads — they must not block (the async session
    only posts to its event loop).

    One request's failure marks *its* ticket ``failed`` and releases its
    state; the executor, the other requests and the daemon all keep
    going.
    """

    def __init__(
        self,
        jobs: int = 1,
        backend: str = BACKEND_PROCESS,
        pool_id: int = 0,
        on_record=None,
        cache_provider=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        import threading

        if jobs < 1:
            raise DecompositionError("jobs must be at least 1")
        self.jobs = jobs
        self.backend = check_backend(backend)
        self.pool_id = pool_id
        self.pools_created = 0
        self.worker_count = 0
        self._on_record = on_record
        self._cache_provider = cache_provider
        # Observability sink.  The daemon passes its own registry so two
        # services in one process keep separate per-client series; the
        # embedded async session defaults to the process-wide registry.
        self.metrics = metrics if metrics is not None else obs_registry()
        self._queue_wait = self.metrics.histogram(
            "repro_fair_queue_wait_seconds",
            "submit-to-first-dispatch wait in the live fair queue",
        )
        self._jobs_dispatched = self.metrics.counter(
            "repro_jobs_dispatched_total",
            "primary jobs handed to the live executor, by backend",
        )
        self._lock = threading.RLock()
        self._backend_impl = None
        self._fallback: Optional[str] = None
        self._queue = LiveFairQueue()
        self._units: Dict[int, _LiveUnit] = {}
        self._inflight_total = 0
        self._pumping = False
        self._closed = False
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "cancelled": 0,
            "failed": 0,
            "records": 0,
        }

    # -- lifecycle ----------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._backend_impl is not None:
            return
        from repro.core.executors import create_backend as _create

        backend = _create(self.backend, self.jobs)
        if backend.open(self._on_job_done):
            if self.backend != BACKEND_SERIAL:
                self.pools_created += 1
        else:
            # No process pool in this environment: degrade to inline
            # execution, report it per-request like the batch path does.
            self._fallback = FALLBACK_POOL_UNAVAILABLE
            backend = _create(BACKEND_SERIAL, 1)
            backend.open(self._on_job_done)
        self._backend_impl = backend
        self.worker_count = backend.workers

    def close(self) -> None:
        """Shut the executor down; cancels everything still pending."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            backend = self._backend_impl
            self._backend_impl = None
            for slot, unit in self._units.items():
                if not unit.ticket.terminal:
                    self._queue.remove_unit(slot)
                    if unit.ticket.mark_cancelled():
                        self.stats["cancelled"] += 1
                    unit.release()
        # Outside the lock: pooled backends wait for in-flight jobs, whose
        # completion hooks need the lock (they see _closed and return).
        if backend is not None:
            backend.shutdown()

    # -- submission ---------------------------------------------------------------

    def add_request(self, unit: SuiteUnit, ticket) -> int:
        """Plan one request and enter it into the live dispatch stream.

        Returns the request's executor slot.  Planning (cone extraction,
        dedup splitting, persistent-cache warm) happens here, on the
        caller's thread — **outside** the scheduler lock, so a large
        circuit's planning never stalls other requests' completion hooks
        (the shared persistent cache has its own lock); only queue entry
        and context registration are serialised.
        """
        if not unit.priority > 0:
            raise DecompositionError(
                f"unit priority must be > 0 (got {unit.priority!r})"
            )
        with self._lock:
            if self._closed:
                raise DecompositionError(
                    "the live scheduler is closed; no further requests"
                )
            self._ensure_open()
        prepared = unit.scheduler.prepare(
            unit.aig,
            unit.operator,
            unit.engines,
            circuit_timeout=unit.circuit_timeout,
            max_outputs=unit.max_outputs,
            circuit_name=unit.circuit_name,
        )
        primaries, followers = unit.scheduler.split_for_pool(prepared)
        dispatch = sorted(primaries, key=lambda job: (-job.cost, job.index))
        state = _LiveUnit(
            unit=unit,
            prepared=prepared,
            ticket=ticket,
            followers=followers,
            job_of={job.index: job for job in dispatch},
            records={},
            queued=len(dispatch),
            # The circuit budget must not pay for queue wait behind other
            # clients: snapshot what planning left and re-arm the deadline
            # when the unit's jobs actually reach the executor (_pump) —
            # the live analogue of SuiteScheduler._arm_deadline.
            budget_left=(
                None if prepared.deadline is None else prepared.deadline.remaining()
            ),
            enqueued_at=monotonic(),
        )
        with self._lock:
            if self._closed:
                raise DecompositionError(
                    "the live scheduler is closed; no further requests"
                )
            slot = self._backend_impl.add_context(
                (
                    prepared.aig,
                    prepared.operator,
                    prepared.engines,
                    unit.scheduler.worker_options(),
                    prepared.report.circuit,
                )
            )
            self._units[slot] = state
            self.stats["submitted"] += 1
            if dispatch:
                self._queue.add_unit(slot, dispatch, unit.priority)
                self._pump()
                return slot
        # Nothing to fan out (all followers/warm hits, or nothing
        # planned): the request completes synchronously — outside the
        # lock, like every other completion.
        self._complete_unit(slot)
        return slot

    def cancel(self, slot: int) -> bool:
        """Cooperatively cancel a request; ``True`` if it was cancellable.

        Queued jobs are dropped immediately; jobs already on the executor
        run to completion but their results are discarded.  Terminal
        requests (and unknown slots) return ``False``.
        """
        with self._lock:
            unit = self._units.get(slot)
            if unit is None or unit.ticket.terminal:
                return False
            removed = self._queue.remove_unit(slot)
            unit.queued -= removed
            cancelled = unit.ticket.mark_cancelled()
            if cancelled:
                self.stats["cancelled"] += 1
            if unit.inflight == 0:
                unit.release()
            self._pump()
            return cancelled

    def forget(self, slot: int) -> None:
        """Drop a terminal request's unit entirely (daemon hygiene: a
        service fed an unbounded request stream must not keep per-request
        entries forever).  Non-terminal requests are kept — their jobs
        may still be in flight."""
        with self._lock:
            unit = self._units.get(slot)
            if unit is None or not unit.ticket.terminal:
                return
            if unit.inflight == 0:
                del self._units[slot]
            else:
                unit.forgotten = True  # dropped when the last job lands

    def ticket(self, slot: int):
        with self._lock:
            unit = self._units.get(slot)
            return unit.ticket if unit is not None else None

    def tickets(self) -> List[object]:
        """Every request's ticket, in submission order."""
        with self._lock:
            return [self._units[slot].ticket for slot in sorted(self._units)]

    # -- executor plumbing --------------------------------------------------------

    def _pump(self) -> None:
        """Keep the executor saturated (lock held by the caller).

        Iterative, with a reentrancy latch: the serial live backend
        completes jobs synchronously inside ``submit``, so the completion
        hook runs *during* the loop body — it processes the result and
        returns, and this loop (not a recursive pump) dispatches the next
        job.
        """
        if self._pumping or self._closed or self._backend_impl is None:
            return
        self._pumping = True
        try:
            while self._inflight_total < self.worker_count:
                item = self._queue.pop()
                if item is None:
                    break
                slot, job = item
                unit = self._units[slot]
                if not unit.armed:
                    # The unit's jobs start NOW: arm its circuit budget
                    # from the post-planning snapshot, not from submit
                    # time — queue wait behind other requests must not
                    # drain it (mirrors SuiteScheduler._arm_deadline).
                    unit.armed = True
                    if unit.budget_left is not None:
                        unit.prepared.deadline = Deadline(unit.budget_left)
                    if unit.enqueued_at is not None:
                        self._queue_wait.observe(monotonic() - unit.enqueued_at)
                unit.queued -= 1
                unit.inflight += 1
                unit.dispatched = True
                self._inflight_total += 1
                self._jobs_dispatched.inc(backend=self.backend)
                unit.ticket.mark_running()
                self._backend_impl.submit(
                    (
                        slot,
                        job.index,
                        job.output_name,
                        job.seed,
                        unit.prepared.deadline,
                    ),
                    job.function,
                )
        finally:
            self._pumping = False

    def _on_job_done(self, slot, index, record, error) -> None:
        """Executor completion hook (any thread; serialised by the lock)."""
        complete_slot = None
        with self._lock:
            if self._closed:
                return
            self._inflight_total -= 1
            unit = self._units.get(slot)
            if unit is not None:
                unit.inflight -= 1
                if unit.finished or unit.ticket.terminal:
                    # Cancelled or failed with jobs in flight: discard the
                    # result, release once the last one lands.
                    if unit.inflight == 0:
                        unit.release()
                        if unit.forgotten:
                            del self._units[slot]
                elif error is not None:
                    self._fail_unit(slot, unit, error)
                else:
                    if record is not None:
                        job = unit.job_of[index]
                        try:
                            unit.unit.scheduler.absorb_worker_record(
                                unit.prepared, job, record
                            )
                        except Exception as exc:  # extraction/verify failed
                            self._fail_unit(slot, unit, exc)
                        else:
                            unit.records[index] = record
                            self._emit_record(unit, record)
                    if unit.inflight == 0 and unit.queued == 0:
                        complete_slot = slot
            self._pump()
        if complete_slot is not None:
            self._complete_unit(complete_slot)

    def _emit_record(self, unit: _LiveUnit, record: OutputResult) -> None:
        # Callers hold the lock on the hook path but not on the
        # completion path; re-entrant, so counting under it is cheap.
        with self._lock:
            self.stats["records"] += 1
        if self._on_record is not None:
            self._on_record(unit.ticket, record)

    def _fail_unit(self, slot: int, unit: _LiveUnit, error: BaseException) -> None:
        removed = self._queue.remove_unit(slot)
        unit.queued -= removed
        unit.finished = True
        self.stats["failed"] += 1
        unit.ticket.mark_failed(f"{type(error).__name__}: {error}")
        if unit.inflight == 0:
            unit.release()

    def _complete_unit(self, slot: int) -> None:
        """Follower replay + report assembly for one finished unit.

        Called WITHOUT the scheduler lock: follower replay can be real
        search work and finalize rewrites the persistent snapshot, and
        neither may stall other requests' dispatch or completion hooks.
        The unit is claimed (``finished``) under the lock first, so
        exactly one thread ever completes it; the shared persistent cache
        is internally locked.  Mirrors the tail of
        ``BatchScheduler._run_parallel``."""
        with self._lock:
            unit = self._units.get(slot)
            if unit is None or unit.finished or unit.ticket.terminal:
                return
            unit.finished = True
            prepared = unit.prepared
            scheduler = unit.unit.scheduler
            followers = unit.followers
            records = unit.records
            priority = unit.unit.priority
            dispatched = unit.dispatched
            if not unit.armed:
                # All-follower units never reach _pump: their budget
                # starts at replay time.
                unit.armed = True
                if unit.budget_left is not None:
                    prepared.deadline = Deadline(unit.budget_left)
                if unit.enqueued_at is not None:
                    self._queue_wait.observe(monotonic() - unit.enqueued_at)
        try:
            unit.ticket.mark_running()  # no-op if already running
            for record in scheduler.execute_local(prepared, followers, records):
                self._emit_record(unit, record)
            if dispatched:
                used_workers = 0 if self._fallback else self.worker_count
                fallback = self._fallback
            else:
                used_workers = 0
                fallback = self._fallback or (
                    FALLBACK_WARM_CACHE if followers else None
                )
            report = scheduler.finalize(
                prepared,
                records,
                used_workers,
                fallback,
                extra_schedule={
                    "live": True,
                    "shared_pool": used_workers > 0,
                    "pool_id": self.pool_id if used_workers else None,
                    "backend": self.backend,
                    "priority": priority,
                },
            )
        except Exception as exc:
            with self._lock:
                self._fail_unit(slot, unit, exc)
            return
        with self._lock:
            # Count BEFORE the transition: mark_done fires listeners that
            # resolve the awaited report, and a caller may read stats the
            # instant report() returns.
            self.stats["completed"] += 1
            if not unit.ticket.mark_done(report):
                self.stats["completed"] -= 1  # lost the race to a cancel
            unit.release()
            if unit.forgotten and slot in self._units:
                del self._units[slot]
