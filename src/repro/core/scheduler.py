"""Batched multi-output decomposition scheduling.

The paper's STEP flow decomposes every primary output independently, which
makes the circuit driver embarrassingly parallel and highly redundant:
multi-output circuits routinely drive several outputs with structurally
identical cones.  :class:`BatchScheduler` exploits both properties while
preserving the sequential driver's results exactly:

* **Planning** — every primary output becomes an :class:`OutputJob` carrying
  its cone's structural signature (:func:`repro.aig.signature.cone_signature`),
  a cost estimate (cone size) and a derived deterministic seed.
* **Dedup** — jobs whose cones are structurally identical up to a
  position-respecting input renaming share one partition search: the first
  job computes, the rest *replay* the memoised result with input names mapped
  positionally (extraction and verification re-run against the actual cone,
  so the replayed ``fA``/``fB`` are exactly what a fresh run would build).
* **Fan-out** — with ``jobs > 1`` the unique cones are dispatched to a
  ``multiprocessing`` pool, heaviest cone first; the single-process path is
  the deterministic fallback (and the two produce identical
  :meth:`repro.core.result.CircuitReport.fingerprint` values, which the
  differential tests assert).
* **Deadlines** — a circuit budget (``circuit_timeout``) is honoured on
  *both* paths: every engine call runs under a sub-deadline capped by the
  circuit's remaining time (the :class:`repro.utils.timer.Deadline` is
  shipped to pool workers, whose monotonic clock is shared with the
  parent), a worker whose job starts after expiry skips it immediately, and
  the report names every budget-skipped output in
  ``schedule["skipped"]``.  On the sequential path skips follow output
  order; on the pool path they are whichever jobs had not started at
  expiry — on a budget generous enough that nothing is truncated the two
  sets are identically empty (differential-tested).
* **Persistence** — with ``cache_dir`` set, replayable cache entries are
  snapshotted to ``<cache_dir>/cone_cache.json`` keyed by (canonical
  signature, operator, engine set, options fingerprint); the next run over
  the same configuration warms its cache from the snapshot and reports the
  reuse in ``schedule["persistent_hits"]``.

The identity guarantee is stated for runs whose engine calls finish within
their wall-clock budgets: a search truncated by ``per_call_timeout`` /
``output_timeout`` / ``circuit_timeout`` reflects machine load, and load
differs between runs regardless of jobs count — timed-out results (and
searches completed near the budget) can therefore differ run to run on the
sequential path too.  Dedup is keyed by the *canonical* (fanin-commutative)
cone signature: for traversal-order-exact duplicates the replay is
bit-for-bit what a fresh search would produce, while for merely
fanin-permuted duplicates it is a valid partition of the same function that
a fresh search over the permuted encoding might not have chosen.

Every job runs under a seed derived from (run seed, circuit, output name) —
never from scheduling order or worker identity — so parallel runs are
bit-for-bit reproducible (:mod:`repro.utils.rng`).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.aig import AIG
from repro.aig.function import BooleanFunction
from repro.aig.signature import (
    ConeCache,
    PersistentConeCache,
    canonical_cone_signature,
)
from repro.core.engine import BiDecomposer, EngineOptions, extract_and_verify
from repro.core.partition import VariablePartition
from repro.core.result import BiDecResult, CircuitReport, OutputResult
from repro.core.spec import check_engine, check_operator
from repro.errors import DecompositionError
from repro.utils.rng import derive_seed, seeded_job
from repro.utils.timer import Deadline, Stopwatch

# File name of the persistent cone cache inside ``cache_dir``.
PERSISTENT_CACHE_FILENAME = "cone_cache.json"

# Fallback reasons recorded in ``CircuitReport.schedule["fallback"]`` when a
# parallel run ends up on the sequential path.
FALLBACK_DEADLINE = "deadline"
FALLBACK_POOL_UNAVAILABLE = "pool-unavailable"
FALLBACK_WARM_CACHE = "warm-cache"
FALLBACK_SINGLE_JOB = "single-job"

# Template stored in the cone cache: the primary job's input names (for the
# positional rename) and its fully computed per-engine record.
_CacheEntry = Tuple[Tuple[str, ...], OutputResult]


def _replayable(record: OutputResult) -> bool:
    """Only complete searches are memoised: replaying a budget-truncated
    result would amplify one transient timeout across every duplicate cone,
    where recomputing gives each duplicate its own fresh budget."""
    return all(not result.timed_out for result in record.results.values())


@dataclass
class OutputJob:
    """One primary output scheduled for decomposition.

    ``function`` carries the cone extracted during planning so the in-process
    execution paths do not traverse the support again; workers rebuild it in
    their own process (only the job identity crosses the pipe).
    """

    index: int
    output_name: str
    num_support: int
    input_names: Tuple[str, ...]
    cost: int
    seed: int
    cache_key: Optional[tuple]
    function: Optional[BooleanFunction] = None


class BatchScheduler:
    """Plan and execute per-output decomposition jobs for one circuit.

    Parameters
    ----------
    decomposer:
        The :class:`BiDecomposer` whose options and per-output pipeline the
        scheduler delegates to; ``scheduler.run(...)`` returns the same
        :class:`CircuitReport` the decomposer's sequential driver would.
    jobs:
        Worker processes; ``1`` keeps everything in-process (deterministic
        fallback).
    dedup:
        Memoise structurally identical cones (see module docstring).
    seed:
        Run seed from which every job's seed is derived.
    cache_dir:
        Directory for the persistent (cross-run) cone cache; ``None`` keeps
        the cache in-memory only.  Only meaningful with ``dedup``.
    """

    def __init__(
        self,
        decomposer: BiDecomposer,
        jobs: int = 1,
        dedup: bool = True,
        seed: int | str | None = 0,
        cache_dir: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise DecompositionError("jobs must be at least 1")
        self._decomposer = decomposer
        self.jobs = jobs
        self.dedup = dedup
        self.seed = seed
        self.cache_dir = cache_dir

    # -- planning -----------------------------------------------------------------

    def plan(
        self,
        aig: AIG,
        max_outputs: Optional[int] = None,
        circuit_name: Optional[str] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[OutputJob]:
        """Build the job list: one entry per primary output, in output order.

        Planning stops at the circuit ``deadline``: outputs past it could
        never be executed, so their cones are not even extracted.  Planning
        itself (one linear cone traversal per output, before any search
        runs) consumes an O(circuit-size) slice of the budget that the old
        interleaved driver spent output by output.
        """
        circuit = circuit_name or aig.name
        options = self._decomposer.options
        jobs: List[OutputJob] = []
        for index, (name, _) in enumerate(aig.outputs):
            if max_outputs is not None and index >= max_outputs:
                break
            if deadline is not None and deadline.expired:
                break
            function = BooleanFunction.from_output(aig, name)
            names = tuple(function.input_names)
            searchable = function.num_inputs >= options.min_support and (
                options.max_support is None
                or function.num_inputs <= options.max_support
            )
            cache_key = None
            cost = 0
            # The signature serves dedup keys and parallel dispatch costs;
            # a plain sequential no-dedup run needs neither.
            if searchable and (self.dedup or self.jobs > 1):
                signature = canonical_cone_signature(
                    function.aig, function.root, function.inputs
                )
                # Cone size (inputs + gates), read off the signature.
                cost = signature[0] + signature[1]
                if self.dedup:
                    # The engines iterate variables in input order but sort
                    # name sets in a few places (QBF blocking clauses, BDD
                    # cofactor order), so memoised results are only replayed
                    # for cones whose input names sort in the same relative
                    # order — then the search is literally the same
                    # computation.
                    sort_perm = tuple(
                        sorted(range(len(names)), key=names.__getitem__)
                    )
                    cache_key = (signature, sort_perm)
            jobs.append(
                OutputJob(
                    index=index,
                    output_name=name,
                    num_support=function.num_inputs,
                    input_names=names,
                    cost=cost,
                    seed=derive_seed(self.seed, circuit, name),
                    cache_key=cache_key,
                    function=function,
                )
            )
        return jobs

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        aig: AIG,
        operator: str,
        engines: Sequence[str],
        circuit_timeout: Optional[float] = None,
        max_outputs: Optional[int] = None,
        circuit_name: Optional[str] = None,
    ) -> CircuitReport:
        """Decompose every primary output and assemble the circuit report."""
        operator = check_operator(operator)
        engines = [check_engine(engine) for engine in engines]
        if aig.latches:
            aig = aig.make_combinational()
        report = CircuitReport(circuit=circuit_name or aig.name, operator=operator)
        deadline = Deadline(circuit_timeout) if circuit_timeout is not None else None
        jobs = self.plan(
            aig,
            max_outputs=max_outputs,
            circuit_name=report.circuit,
            deadline=deadline,
        )
        cache = ConeCache(enabled=self.dedup)
        persistent, context = self._open_persistent_cache(operator, engines)
        warmed = persistent.warm(cache, context) if persistent is not None else 0
        records: Dict[int, OutputResult] = {}

        used_workers = 0
        fallback: Optional[str] = None
        if self.jobs > 1:
            if deadline is not None and deadline.expired:
                # The budget was consumed by planning alone; forking a pool
                # just to have every worker skip its job would be waste.
                fallback = FALLBACK_DEADLINE
            elif len(jobs) <= 1:
                # Nothing to fan out: the circuit planned at most one job.
                fallback = FALLBACK_SINGLE_JOB
            else:
                used_workers, fallback = self._run_parallel(
                    aig,
                    jobs,
                    operator,
                    engines,
                    report.circuit,
                    cache,
                    records,
                    deadline,
                )
        if not used_workers:
            self._run_sequential(
                aig, jobs, operator, engines, report.circuit, cache, records, deadline
            )

        for index in sorted(records):
            records[index].circuit = report.circuit
            report.outputs.append(records[index])
        totals: Dict[str, float] = {engine: 0.0 for engine in engines}
        for record in report.outputs:
            for engine, result in record.results.items():
                totals[engine] = totals.get(engine, 0.0) + result.cpu_seconds
        report.total_cpu = totals
        executed_names = {record.output_name for record in report.outputs}
        considered = [name for name, _ in aig.outputs]
        if max_outputs is not None:
            considered = considered[:max_outputs]
        report.schedule = {
            # "jobs" is the worker count the run actually used: the pool
            # size on the parallel path, 1 whenever the scheduler fell back
            # to (or was forced onto) the sequential path.
            "jobs": used_workers or 1,
            "requested_jobs": self.jobs,
            "planned": len(jobs),
            "executed": len(records),
            # Outputs the circuit budget cut off (never planned, or planned
            # but not started before expiry), in output order.
            "skipped": [name for name in considered if name not in executed_names],
            # Why a jobs>1 request ran sequentially (None when it did not).
            "fallback": fallback,
            "unique_cones": len(cache),
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
        }
        if persistent is not None:
            saved = persistent.absorb(cache, context)
            if saved:
                persistent.save()
            report.schedule["persistent_hits"] = cache.warm_hits
            report.schedule["persistent_loaded"] = warmed
            report.schedule["persistent_saved"] = saved
        return report

    def _open_persistent_cache(
        self, operator: str, engines: List[str]
    ) -> Tuple[Optional[PersistentConeCache], str]:
        """The cross-run snapshot (if configured) and this run's context key.

        The context key ties entries to everything that determines a
        partition search besides the cone itself: the gate operator, the
        engine *set* (order never changes results — the driver always runs
        STEP-MG first and shares its bootstrap) and the search-relevant
        engine options.  Without dedup there is nothing to warm or absorb,
        so the snapshot is not even opened.
        """
        context = (
            f"op={operator}|engines={','.join(sorted(set(engines)))}"
            f"|{self._decomposer.options.search_fingerprint()}"
        )
        if self.cache_dir is None or not self.dedup:
            return None, context
        path = os.path.join(self.cache_dir, PERSISTENT_CACHE_FILENAME)
        return PersistentConeCache(path), context

    def _run_sequential(
        self,
        aig: AIG,
        jobs: List[OutputJob],
        operator: str,
        engines: List[str],
        circuit_name: str,
        cache: ConeCache,
        records: Dict[int, OutputResult],
        deadline: Optional[Deadline],
    ) -> None:
        """In-process execution in output order (mirrors the legacy driver)."""
        for job in jobs:
            if deadline is not None and deadline.expired:
                break
            records[job.index] = self._execute_job(
                aig, job, operator, engines, circuit_name, cache, deadline
            )

    def _execute_job(
        self,
        aig: AIG,
        job: OutputJob,
        operator: str,
        engines: List[str],
        circuit_name: str,
        cache: ConeCache,
        deadline: Optional[Deadline] = None,
    ) -> OutputResult:
        """Run one job, consulting and feeding the cone memo cache."""
        if job.cache_key is not None:
            entry = cache.lookup(job.cache_key)
            if entry is not None:
                return self._replay(aig, job, operator, entry)
        with seeded_job(job.seed):
            record = self._decomposer.decompose_output(
                aig,
                job.output_name,
                operator,
                engines,
                circuit_name=circuit_name,
                function=job.function,
                deadline=deadline,
            )
        if job.cache_key is not None and _replayable(record):
            cache.store(job.cache_key, (job.input_names, record))
        return record

    def _run_parallel(
        self,
        aig: AIG,
        jobs: List[OutputJob],
        operator: str,
        engines: List[str],
        circuit_name: str,
        cache: ConeCache,
        records: Dict[int, OutputResult],
        deadline: Optional[Deadline],
    ) -> Tuple[int, Optional[str]]:
        """Fan unique cones out to a process pool; replay duplicates locally.

        Returns ``(worker_count, fallback_reason)``: the pool's worker count
        on success, or ``0`` plus the reason when the run belongs on the
        sequential path instead — no pool could be created (restricted
        environments), or every cone replays from the warmed persistent
        cache and forking would be pure overhead.

        Stop-at-expiry semantics under a circuit ``deadline``: the deadline
        object is shipped to every worker (wall-clock deadlines compare the
        shared system monotonic clock, so parent and workers agree on
        expiry), a worker whose job starts after expiry returns a skip
        marker instead of searching, and engine calls inside a job run under
        sub-deadlines capped by the circuit's remaining time.  Which jobs
        get skipped depends on dispatch order and worker load — the
        sequential path skips in output order instead — but on budgets
        generous enough that nothing is truncated both paths skip nothing
        and stay fingerprint-identical.
        """
        primaries: List[OutputJob] = []
        followers: List[OutputJob] = []
        seen: set = set()
        for job in jobs:
            if job.cache_key is not None and (
                job.cache_key in seen or cache.contains(job.cache_key)
            ):
                # In-run duplicate, or a cone the persistent snapshot
                # already answers: replay locally, never dispatch.
                followers.append(job)
                continue
            if job.cache_key is not None:
                seen.add(job.cache_key)
            primaries.append(job)

        if not primaries:
            # Everything replays from the warmed cache; no pool needed.
            return 0, FALLBACK_WARM_CACHE

        # Heaviest cones first so stragglers start early (cost-ordered
        # scheduling); results are placed back by output index.  Workers run
        # the partition search only: extraction (and verification) happen in
        # the parent against its own AIG, so results do not ship whole
        # worker-side AIG copies through the pipe and the returned
        # sub-functions live in the parent's circuit exactly as on the
        # sequential path.
        dispatch = sorted(primaries, key=lambda job: (-job.cost, job.index))
        options = self._decomposer.options
        worker_options = replace(
            options, jobs=1, extract=False, verify=False, cache_dir=None
        )
        worker_count = min(self.jobs, len(dispatch))
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            context = multiprocessing.get_context()
        try:
            pool = context.Pool(
                processes=worker_count,
                initializer=_worker_init,
                initargs=(aig, operator, engines, worker_options, circuit_name),
            )
        except (OSError, ValueError, ImportError, AssertionError):  # pragma: no cover
            # No pool in this environment (restricted sandbox, or a daemonic
            # worker process, which multiprocessing rejects via
            # AssertionError): fall back to the sequential path.  Exceptions
            # raised *inside* jobs propagate from pool.map below, exactly as
            # they would from the sequential driver.
            return 0, FALLBACK_POOL_UNAVAILABLE
        with pool:
            computed = pool.map(
                _worker_run,
                [
                    (job.index, job.output_name, job.seed, deadline)
                    for job in dispatch
                ],
            )

        by_index = dict(computed)
        for job in dispatch:
            record = by_index[job.index]
            if record is None:
                continue  # budget-skipped in the worker
            if options.extract:
                self._extract_record(aig, job, operator, record)
            records[job.index] = record
            if job.cache_key is not None:
                # Mirror the sequential path's miss accounting before storing
                # so hit/miss counters are identical for any jobs count.
                cache.lookup(job.cache_key)
                if _replayable(record):
                    cache.store(job.cache_key, (job.input_names, record))
        for job in followers:
            if deadline is not None and deadline.expired:
                break
            # _execute_job replays on a hit; when the primary's record was
            # not cached (budget-truncated or skipped), it recomputes with a
            # fresh budget — exactly as the sequential path would.
            records[job.index] = self._execute_job(
                aig, job, operator, engines, circuit_name, cache, deadline
            )
        return worker_count, None

    def _extract_record(
        self, aig: AIG, job: OutputJob, operator: str, record: OutputResult
    ) -> None:
        """Extract (and optionally verify) fA/fB for a worker-computed record."""
        options = self._decomposer.options
        function = job.function
        for result in record.results.values():
            if not result.decomposed or result.partition is None:
                continue
            if function is None:
                function = BooleanFunction.from_output(aig, job.output_name)
            result.fa, result.fb = extract_and_verify(
                function, operator, result.partition, options
            )

    # -- cache replay -------------------------------------------------------------

    def _replay(
        self, aig: AIG, job: OutputJob, operator: str, entry: _CacheEntry
    ) -> OutputResult:
        """Reconstruct a memoised record for a structurally identical cone.

        Partition names are mapped positionally from the primary cone's
        inputs to this cone's; extraction and verification are re-run against
        the actual cone so the sub-functions are the ones a fresh
        decomposition would have produced.
        """
        template_names, template = entry
        options = self._decomposer.options
        function = job.function  # planned cone; only consumed when extracting
        mapping = dict(zip(template_names, job.input_names))
        record = OutputResult(
            circuit=template.circuit,
            output_name=job.output_name,
            num_support=job.num_support,
        )
        for engine, result in template.results.items():
            stopwatch = Stopwatch().start()
            partition = None
            if result.partition is not None:
                partition = VariablePartition(
                    tuple(mapping[name] for name in result.partition.xa),
                    tuple(mapping[name] for name in result.partition.xb),
                    tuple(mapping[name] for name in result.partition.xc),
                )
            stats = result.stats.copy()
            stats.cache_hits += 1
            replayed = BiDecResult(
                engine=result.engine,
                operator=result.operator,
                decomposed=result.decomposed,
                partition=partition,
                optimum_proven=result.optimum_proven,
                timed_out=result.timed_out,
                stats=stats,
            )
            if replayed.decomposed and partition is not None and options.extract:
                if function is None:
                    function = BooleanFunction.from_output(aig, job.output_name)
                replayed.fa, replayed.fb = extract_and_verify(
                    function, operator, partition, options
                )
            replayed.cpu_seconds = stopwatch.stop()
            record.results[engine] = replayed
        return record


# -- worker-process plumbing (module level for pickling) ------------------------

_WORKER_STATE: Dict[str, object] = {}


def _worker_init(
    aig: AIG,
    operator: str,
    engines: List[str],
    options: EngineOptions,
    circuit_name: str,
) -> None:
    _WORKER_STATE["decomposer"] = BiDecomposer(options)
    _WORKER_STATE["aig"] = aig
    _WORKER_STATE["operator"] = operator
    _WORKER_STATE["engines"] = engines
    _WORKER_STATE["circuit_name"] = circuit_name


def _worker_run(
    args: Tuple[int, str, int, Optional[Deadline]]
) -> Tuple[int, Optional[OutputResult]]:
    """Run one job in a pool worker, honouring the circuit deadline.

    The :class:`Deadline` crosses the pipe as plain data; its expiry check
    compares the system-wide monotonic clock, which parent and (forked or
    spawned) workers on one machine share, so "expired" means the same thing
    on both sides.  A job that starts after expiry is skipped (``None``
    marker — the parent reports it in ``schedule["skipped"]``); a job that
    starts before expiry runs its engines under sub-deadlines capped by the
    circuit's remaining budget.
    """
    index, output_name, seed, deadline = args
    if deadline is not None and deadline.expired:
        return index, None
    decomposer: BiDecomposer = _WORKER_STATE["decomposer"]  # type: ignore[assignment]
    with seeded_job(seed):
        record = decomposer.decompose_output(
            _WORKER_STATE["aig"],  # type: ignore[arg-type]
            output_name,
            _WORKER_STATE["operator"],  # type: ignore[arg-type]
            _WORKER_STATE["engines"],  # type: ignore[arg-type]
            circuit_name=_WORKER_STATE["circuit_name"],  # type: ignore[arg-type]
            deadline=deadline,
        )
    return index, record
