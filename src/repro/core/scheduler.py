"""Batched multi-output decomposition scheduling.

The paper's STEP flow decomposes every primary output independently, which
makes the circuit driver embarrassingly parallel and highly redundant:
multi-output circuits routinely drive several outputs with structurally
identical cones.  :class:`BatchScheduler` exploits both properties while
preserving the sequential driver's results exactly:

* **Planning** — every primary output becomes an :class:`OutputJob` carrying
  its cone's structural signature (:func:`repro.aig.signature.cone_signature`),
  a cost estimate (cone size) and a derived deterministic seed.
* **Dedup** — jobs whose cones are structurally identical up to a
  position-respecting input renaming share one partition search: the first
  job computes, the rest *replay* the memoised result with input names mapped
  positionally (extraction and verification re-run against the actual cone,
  so the replayed ``fA``/``fB`` are exactly what a fresh run would build).
* **Fan-out** — with ``jobs > 1`` the unique cones are dispatched to a
  ``multiprocessing`` pool, heaviest cone first; the single-process path is
  the deterministic fallback (and the two produce identical
  :meth:`repro.core.result.CircuitReport.fingerprint` values, which the
  differential tests assert).
* **Deadlines** — a circuit budget (``circuit_timeout``) is honoured on
  *both* paths: every engine call runs under a sub-deadline capped by the
  circuit's remaining time (the :class:`repro.utils.timer.Deadline` is
  shipped to pool workers, whose monotonic clock is shared with the
  parent), a worker whose job starts after expiry skips it immediately, and
  the report names every budget-skipped output in
  ``schedule["skipped"]``.
* **Persistence** — with ``cache_dir`` set, replayable cache entries are
  snapshotted to ``<cache_dir>/cone_cache.json`` keyed by (canonical
  signature, operator, engine set, options fingerprint); the next run over
  the same configuration warms its cache from the snapshot and reports the
  reuse in ``schedule["persistent_hits"]``.
* **Suite sharding** — :class:`SuiteScheduler` takes the prepared jobs of
  *several* circuits and shards them across **one** shared worker pool
  (heaviest cone anywhere first), streaming each finished
  :class:`repro.core.result.OutputResult` back as it completes.  One suite
  sweep pays pool startup once instead of once per circuit, and a straggler
  circuit's cones load-balance across workers that finished lighter
  circuits' jobs.  This is the execution layer under
  :meth:`repro.api.session.Session.submit`.

The identity guarantee is stated for runs whose engine calls finish within
their wall-clock budgets: a search truncated by ``per_call_timeout`` /
``output_timeout`` / ``circuit_timeout`` reflects machine load, and load
differs between runs regardless of jobs count — timed-out results (and
searches completed near the budget) can therefore differ run to run on the
sequential path too.  Dedup is keyed by the *canonical* (fanin-commutative)
cone signature: for traversal-order-exact duplicates the replay is
bit-for-bit what a fresh search would produce, while for merely
fanin-permuted duplicates it is a valid partition of the same function that
a fresh search over the permuted encoding might not have chosen.

Every job runs under a seed derived from (run seed, circuit, output name) —
never from scheduling order or worker identity — so parallel runs are
bit-for-bit reproducible (:mod:`repro.utils.rng`).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.aig.aig import AIG
from repro.aig.function import BooleanFunction
from repro.aig.signature import (
    ConeCache,
    PersistentConeCache,
    canonical_cone_signature,
)
from repro.core.engine import BiDecomposer, EngineOptions, extract_and_verify
from repro.core.partition import VariablePartition
from repro.core.result import BiDecResult, CircuitReport, OutputResult
from repro.core.spec import check_engine, check_operator
from repro.errors import DecompositionError
from repro.utils.rng import derive_seed, seeded_job
from repro.utils.timer import Deadline, Stopwatch

# File name of the persistent cone cache inside ``cache_dir``.
PERSISTENT_CACHE_FILENAME = "cone_cache.json"

# Fallback reasons recorded in ``CircuitReport.schedule["fallback"]`` when a
# parallel run ends up on the sequential path.
FALLBACK_DEADLINE = "deadline"
FALLBACK_POOL_UNAVAILABLE = "pool-unavailable"
FALLBACK_WARM_CACHE = "warm-cache"
FALLBACK_SINGLE_JOB = "single-job"

# Template stored in the cone cache: the primary job's input names (for the
# positional rename) and its fully computed per-engine record.
_CacheEntry = Tuple[Tuple[str, ...], OutputResult]


def _replayable(record: OutputResult) -> bool:
    """Only complete searches are memoised: replaying a budget-truncated
    result would amplify one transient timeout across every duplicate cone,
    where recomputing gives each duplicate its own fresh budget."""
    return all(not result.timed_out for result in record.results.values())


@dataclass
class OutputJob:
    """One primary output scheduled for decomposition.

    ``function`` carries the cone extracted during planning so the in-process
    execution paths do not traverse the support again; workers rebuild it in
    their own process (only the job identity crosses the pipe).
    """

    index: int
    output_name: str
    num_support: int
    input_names: Tuple[str, ...]
    cost: int
    seed: int
    cache_key: Optional[tuple]
    function: Optional[BooleanFunction] = None


@dataclass
class PreparedRun:
    """One circuit's run state between planning and report assembly.

    Produced by :meth:`BatchScheduler.prepare`, consumed by the execution
    paths and :meth:`BatchScheduler.finalize`.  The split exists so that
    :class:`SuiteScheduler` can prepare *several* circuits, interleave their
    jobs on one pool, and still finalize each circuit's report exactly as a
    standalone run would.
    """

    aig: AIG
    operator: str
    engines: List[str]
    report: CircuitReport
    deadline: Optional[Deadline]
    jobs: List[OutputJob]
    cache: ConeCache
    persistent: Optional[PersistentConeCache]
    context: str
    warmed: int
    max_outputs: Optional[int]
    # Entries the suite's sequential path absorbed (and saved) into the
    # persistent snapshot before finalize ran; counted into
    # ``schedule["persistent_saved"]``.
    saved_early: int = 0


class BatchScheduler:
    """Plan and execute per-output decomposition jobs for one circuit.

    Parameters
    ----------
    decomposer:
        The :class:`BiDecomposer` whose options and per-output pipeline the
        scheduler delegates to; ``scheduler.run(...)`` returns the same
        :class:`CircuitReport` the decomposer's sequential driver would.
    jobs:
        Worker processes; ``1`` keeps everything in-process (deterministic
        fallback).
    dedup:
        Memoise structurally identical cones (see module docstring).
    seed:
        Run seed from which every job's seed is derived.
    cache_dir:
        Directory for the persistent (cross-run) cone cache; ``None`` keeps
        the cache in-memory only.  Only meaningful with ``dedup``.
    """

    def __init__(
        self,
        decomposer: BiDecomposer,
        jobs: int = 1,
        dedup: bool = True,
        seed: int | str | None = 0,
        cache_dir: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise DecompositionError("jobs must be at least 1")
        self._decomposer = decomposer
        self.jobs = jobs
        self.dedup = dedup
        self.seed = seed
        self.cache_dir = cache_dir

    # -- planning -----------------------------------------------------------------

    def plan(
        self,
        aig: AIG,
        max_outputs: Optional[int] = None,
        circuit_name: Optional[str] = None,
        deadline: Optional[Deadline] = None,
    ) -> List[OutputJob]:
        """Build the job list: one entry per primary output, in output order.

        Planning stops at the circuit ``deadline``: outputs past it could
        never be executed, so their cones are not even extracted.  Planning
        itself (one linear cone traversal per output, before any search
        runs) consumes an O(circuit-size) slice of the budget that the old
        interleaved driver spent output by output.
        """
        circuit = circuit_name or aig.name
        options = self._decomposer.options
        jobs: List[OutputJob] = []
        for index, (name, _) in enumerate(aig.outputs):
            if max_outputs is not None and index >= max_outputs:
                break
            if deadline is not None and deadline.expired:
                break
            function = BooleanFunction.from_output(aig, name)
            names = tuple(function.input_names)
            searchable = function.num_inputs >= options.min_support and (
                options.max_support is None
                or function.num_inputs <= options.max_support
            )
            cache_key = None
            cost = 0
            # The signature serves dedup keys and parallel dispatch costs;
            # a plain sequential no-dedup run needs neither.
            if searchable and (self.dedup or self.jobs > 1):
                signature = canonical_cone_signature(
                    function.aig, function.root, function.inputs
                )
                # Cone size (inputs + gates), read off the signature.
                cost = signature[0] + signature[1]
                if self.dedup:
                    # The engines iterate variables in input order but sort
                    # name sets in a few places (QBF blocking clauses, BDD
                    # cofactor order), so memoised results are only replayed
                    # for cones whose input names sort in the same relative
                    # order — then the search is literally the same
                    # computation.
                    sort_perm = tuple(
                        sorted(range(len(names)), key=names.__getitem__)
                    )
                    cache_key = (signature, sort_perm)
            jobs.append(
                OutputJob(
                    index=index,
                    output_name=name,
                    num_support=function.num_inputs,
                    input_names=names,
                    cost=cost,
                    seed=derive_seed(self.seed, circuit, name),
                    cache_key=cache_key,
                    function=function,
                )
            )
        return jobs

    # -- prepare / finalize -------------------------------------------------------

    def prepare(
        self,
        aig: AIG,
        operator: str,
        engines: Sequence[str],
        circuit_timeout: Optional[float] = None,
        max_outputs: Optional[int] = None,
        circuit_name: Optional[str] = None,
    ) -> PreparedRun:
        """Validate, normalise and plan one circuit run (no search yet)."""
        operator = check_operator(operator)
        engines = [check_engine(engine) for engine in engines]
        if aig.latches:
            aig = aig.make_combinational()
        report = CircuitReport(circuit=circuit_name or aig.name, operator=operator)
        deadline = Deadline(circuit_timeout) if circuit_timeout is not None else None
        jobs = self.plan(
            aig,
            max_outputs=max_outputs,
            circuit_name=report.circuit,
            deadline=deadline,
        )
        cache = ConeCache(enabled=self.dedup)
        persistent, context = self._open_persistent_cache(operator, engines)
        warmed = persistent.warm(cache, context) if persistent is not None else 0
        return PreparedRun(
            aig=aig,
            operator=operator,
            engines=engines,
            report=report,
            deadline=deadline,
            jobs=jobs,
            cache=cache,
            persistent=persistent,
            context=context,
            warmed=warmed,
            max_outputs=max_outputs,
        )

    def finalize(
        self,
        prepared: PreparedRun,
        records: Dict[int, OutputResult],
        used_workers: int,
        fallback: Optional[str],
        extra_schedule: Optional[Dict[str, object]] = None,
    ) -> CircuitReport:
        """Assemble the circuit report from executed records."""
        report = prepared.report
        for index in sorted(records):
            records[index].circuit = report.circuit
            report.outputs.append(records[index])
        totals: Dict[str, float] = {engine: 0.0 for engine in prepared.engines}
        for record in report.outputs:
            for engine, result in record.results.items():
                totals[engine] = totals.get(engine, 0.0) + result.cpu_seconds
        report.total_cpu = totals
        executed_names = {record.output_name for record in report.outputs}
        considered = [name for name, _ in prepared.aig.outputs]
        if prepared.max_outputs is not None:
            considered = considered[: prepared.max_outputs]
        cache = prepared.cache
        report.schedule = {
            # "jobs" is the worker count the run actually used: the pool
            # size on the parallel path, 1 whenever the scheduler fell back
            # to (or was forced onto) the sequential path.
            "jobs": used_workers or 1,
            "requested_jobs": self.jobs,
            "planned": len(prepared.jobs),
            "executed": len(records),
            # Outputs the circuit budget cut off (never planned, or planned
            # but not started before expiry), in output order.
            "skipped": [name for name in considered if name not in executed_names],
            # Why a jobs>1 request ran sequentially (None when it did not).
            "fallback": fallback,
            "unique_cones": len(cache),
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
        }
        if extra_schedule:
            report.schedule.update(extra_schedule)
        if prepared.persistent is not None:
            saved = prepared.persistent.absorb(cache, prepared.context)
            if saved:
                prepared.persistent.save()
            report.schedule["persistent_hits"] = cache.warm_hits
            report.schedule["persistent_loaded"] = prepared.warmed
            report.schedule["persistent_saved"] = prepared.saved_early + saved
        return report

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        aig: AIG,
        operator: str,
        engines: Sequence[str],
        circuit_timeout: Optional[float] = None,
        max_outputs: Optional[int] = None,
        circuit_name: Optional[str] = None,
    ) -> CircuitReport:
        """Decompose every primary output and assemble the circuit report."""
        prepared = self.prepare(
            aig,
            operator,
            engines,
            circuit_timeout=circuit_timeout,
            max_outputs=max_outputs,
            circuit_name=circuit_name,
        )
        records: Dict[int, OutputResult] = {}
        used_workers = 0
        fallback: Optional[str] = None
        if self.jobs > 1:
            if prepared.deadline is not None and prepared.deadline.expired:
                # The budget was consumed by planning alone; forking a pool
                # just to have every worker skip its job would be waste.
                fallback = FALLBACK_DEADLINE
            elif len(prepared.jobs) <= 1:
                # Nothing to fan out: the circuit planned at most one job.
                fallback = FALLBACK_SINGLE_JOB
            else:
                used_workers, fallback = self._run_parallel(prepared, records)
        if not used_workers:
            self._run_sequential(prepared, records)
        return self.finalize(prepared, records, used_workers, fallback)

    def _open_persistent_cache(
        self, operator: str, engines: List[str]
    ) -> Tuple[Optional[PersistentConeCache], str]:
        """The cross-run snapshot (if configured) and this run's context key.

        The context key ties entries to everything that determines a
        partition search besides the cone itself: the gate operator, the
        engine *set* (order never changes results — the driver always runs
        STEP-MG first and shares its bootstrap) and the search-relevant
        engine options.  Without dedup there is nothing to warm or absorb,
        so the snapshot is not even opened.
        """
        context = (
            f"op={operator}|engines={','.join(sorted(set(engines)))}"
            f"|{self._decomposer.options.search_fingerprint()}"
        )
        if self.cache_dir is None or not self.dedup:
            return None, context
        path = os.path.join(self.cache_dir, PERSISTENT_CACHE_FILENAME)
        return PersistentConeCache(path), context

    def _run_sequential(
        self, prepared: PreparedRun, records: Dict[int, OutputResult]
    ) -> None:
        """In-process execution in output order (mirrors the legacy driver)."""
        for _record in self.execute_local(prepared, prepared.jobs, records):
            pass

    def _execute_job(
        self,
        aig: AIG,
        job: OutputJob,
        operator: str,
        engines: List[str],
        circuit_name: str,
        cache: ConeCache,
        deadline: Optional[Deadline] = None,
    ) -> OutputResult:
        """Run one job, consulting and feeding the cone memo cache."""
        if job.cache_key is not None:
            entry = cache.lookup(job.cache_key)
            if entry is not None:
                return self._replay(aig, job, operator, entry)
        with seeded_job(job.seed):
            record = self._decomposer.decompose_output(
                aig,
                job.output_name,
                operator,
                engines,
                circuit_name=circuit_name,
                function=job.function,
                deadline=deadline,
            )
        if job.cache_key is not None and _replayable(record):
            cache.store(job.cache_key, (job.input_names, record))
        return record

    # -- pool plumbing shared with SuiteScheduler ---------------------------------

    def split_for_pool(
        self, prepared: PreparedRun
    ) -> Tuple[List[OutputJob], List[OutputJob]]:
        """Partition jobs into pool-dispatched primaries and local followers.

        A follower is an in-run duplicate of an earlier job's cone, or a
        cone the warmed persistent snapshot already answers: it replays
        locally and is never dispatched.
        """
        primaries: List[OutputJob] = []
        followers: List[OutputJob] = []
        seen: set = set()
        for job in prepared.jobs:
            if job.cache_key is not None and (
                job.cache_key in seen or prepared.cache.contains(job.cache_key)
            ):
                followers.append(job)
                continue
            if job.cache_key is not None:
                seen.add(job.cache_key)
            primaries.append(job)
        return primaries, followers

    def worker_options(self) -> EngineOptions:
        """The options a pool worker runs under: search only, no recursion.

        Workers run the partition search but never extract, verify or
        persist — those happen in the parent against its own AIG, so results
        do not ship whole worker-side AIG copies through the pipe.
        """
        return replace(
            self._decomposer.options, jobs=1, extract=False, verify=False,
            cache_dir=None,
        )

    def absorb_worker_record(
        self, prepared: PreparedRun, job: OutputJob, record: OutputResult
    ) -> None:
        """Parent-side completion of a worker-computed record.

        Extracts (and optionally verifies) ``fA``/``fB`` against the
        parent's AIG and mirrors the sequential path's cache accounting
        (one miss, then the store) so hit/miss counters are identical for
        any jobs count.
        """
        if self._decomposer.options.extract:
            self._extract_record(prepared.aig, job, prepared.operator, record)
        if job.cache_key is not None:
            prepared.cache.lookup(job.cache_key)
            if _replayable(record):
                prepared.cache.store(job.cache_key, (job.input_names, record))

    def execute_local(
        self,
        prepared: PreparedRun,
        jobs: Sequence[OutputJob],
        records: Dict[int, OutputResult],
    ) -> Iterator[OutputResult]:
        """Run jobs in-process in the given order, yielding each record.

        Serves both the sequential path (all jobs) and the follower replay
        after a pool run: ``_execute_job`` replays on a cache hit; when a
        follower's primary record was not cached (budget-truncated or
        skipped), it recomputes with a fresh budget — exactly as the
        sequential path would.
        """
        for job in jobs:
            if prepared.deadline is not None and prepared.deadline.expired:
                break
            record = self._execute_job(
                prepared.aig,
                job,
                prepared.operator,
                prepared.engines,
                prepared.report.circuit,
                prepared.cache,
                prepared.deadline,
            )
            records[job.index] = record
            yield record

    def _run_parallel(
        self, prepared: PreparedRun, records: Dict[int, OutputResult]
    ) -> Tuple[int, Optional[str]]:
        """Fan unique cones out to a process pool; replay duplicates locally.

        Returns ``(worker_count, fallback_reason)``: the pool's worker count
        on success, or ``0`` plus the reason when the run belongs on the
        sequential path instead — no pool could be created (restricted
        environments), or every cone replays from the warmed persistent
        cache and forking would be pure overhead.

        Stop-at-expiry semantics under a circuit ``deadline``: the deadline
        object is shipped to every worker (wall-clock deadlines compare the
        shared system monotonic clock, so parent and workers agree on
        expiry), a worker whose job starts after expiry returns a skip
        marker instead of searching, and engine calls inside a job run under
        sub-deadlines capped by the circuit's remaining time.  Which jobs
        get skipped depends on dispatch order and worker load — the
        sequential path skips in output order instead — but on budgets
        generous enough that nothing is truncated both paths skip nothing
        and stay fingerprint-identical.
        """
        primaries, followers = self.split_for_pool(prepared)
        if not primaries:
            # Everything replays from the warmed cache; no pool needed.
            return 0, FALLBACK_WARM_CACHE

        # Heaviest cones first so stragglers start early (cost-ordered
        # scheduling); results are placed back by output index.
        dispatch = sorted(primaries, key=lambda job: (-job.cost, job.index))
        worker_count = min(self.jobs, len(dispatch))
        pool = _create_pool(
            worker_count,
            [
                (
                    prepared.aig,
                    prepared.operator,
                    prepared.engines,
                    self.worker_options(),
                    prepared.report.circuit,
                )
            ],
        )
        if pool is None:
            return 0, FALLBACK_POOL_UNAVAILABLE
        with pool:
            computed = pool.map(
                _worker_run,
                [
                    (0, job.index, job.output_name, job.seed, prepared.deadline)
                    for job in dispatch
                ],
            )

        by_index = {index: record for _slot, index, record in computed}
        for job in dispatch:
            record = by_index[job.index]
            if record is None:
                continue  # budget-skipped in the worker
            self.absorb_worker_record(prepared, job, record)
            records[job.index] = record
        for _record in self.execute_local(prepared, followers, records):
            pass
        return worker_count, None

    def _extract_record(
        self, aig: AIG, job: OutputJob, operator: str, record: OutputResult
    ) -> None:
        """Extract (and optionally verify) fA/fB for a worker-computed record."""
        options = self._decomposer.options
        function = job.function
        for result in record.results.values():
            if not result.decomposed or result.partition is None:
                continue
            if function is None:
                function = BooleanFunction.from_output(aig, job.output_name)
            result.fa, result.fb = extract_and_verify(
                function, operator, result.partition, options
            )

    # -- cache replay -------------------------------------------------------------

    def _replay(
        self, aig: AIG, job: OutputJob, operator: str, entry: _CacheEntry
    ) -> OutputResult:
        """Reconstruct a memoised record for a structurally identical cone.

        Partition names are mapped positionally from the primary cone's
        inputs to this cone's; extraction and verification are re-run against
        the actual cone so the sub-functions are the ones a fresh
        decomposition would have produced.
        """
        template_names, template = entry
        options = self._decomposer.options
        function = job.function  # planned cone; only consumed when extracting
        mapping = dict(zip(template_names, job.input_names))
        record = OutputResult(
            circuit=template.circuit,
            output_name=job.output_name,
            num_support=job.num_support,
        )
        for engine, result in template.results.items():
            stopwatch = Stopwatch().start()
            partition = None
            if result.partition is not None:
                partition = VariablePartition(
                    tuple(mapping[name] for name in result.partition.xa),
                    tuple(mapping[name] for name in result.partition.xb),
                    tuple(mapping[name] for name in result.partition.xc),
                )
            stats = result.stats.copy()
            stats.cache_hits += 1
            replayed = BiDecResult(
                engine=result.engine,
                operator=result.operator,
                decomposed=result.decomposed,
                partition=partition,
                optimum_proven=result.optimum_proven,
                timed_out=result.timed_out,
                stats=stats,
            )
            if replayed.decomposed and partition is not None and options.extract:
                if function is None:
                    function = BooleanFunction.from_output(aig, job.output_name)
                replayed.fa, replayed.fb = extract_and_verify(
                    function, operator, partition, options
                )
            replayed.cpu_seconds = stopwatch.stop()
            record.results[engine] = replayed
        return record


@dataclass
class SuiteUnit:
    """One circuit's slice of a suite run: a scheduler plus run parameters.

    The suite layer deliberately couples each circuit to its *own*
    :class:`BatchScheduler` (options, dedup cache, persistent snapshot,
    seed) so a suite run stays fingerprint-identical to running each
    circuit individually — only the worker pool is shared.
    """

    scheduler: BatchScheduler
    aig: AIG
    operator: str
    engines: Sequence[str]
    circuit_timeout: Optional[float] = None
    max_outputs: Optional[int] = None
    circuit_name: Optional[str] = None


class SuiteScheduler:
    """Shard the outputs of several circuits across ONE shared worker pool.

    Where ``BatchScheduler.run`` forks a pool per circuit, the suite
    scheduler prepares every unit first, then dispatches *all* their unique
    cones — heaviest anywhere first — to a single pool, so a benchmark
    sweep pays pool startup once and cross-circuit load imbalance is
    absorbed by whichever workers free up first.  Followers (in-run
    duplicates and persistent-cache hits) replay locally per unit, exactly
    as in a standalone run, which keeps every unit's report
    fingerprint-identical to its individual ``decompose_circuit`` result.

    :meth:`stream` is a generator yielding ``(unit_index, OutputResult)``
    pairs as jobs complete; with ``jobs > 1`` the order is completion order
    (nondeterministic), with ``jobs = 1`` it is submit × output order.  The
    *content* — each record and each finalized report — is deterministic
    either way.  Reports are assembled once the stream is drained.

    Each report's ``schedule`` gains ``shared_pool`` (whether the unit's
    jobs ran on the suite pool), ``pool_id`` (the same identifier across
    every unit of one suite — the "exactly one pool" witness) and
    ``suite_size``; ``pools_created`` on the scheduler records how many
    pools the whole suite forked (0 on the sequential path, never more
    than 1).
    """

    def __init__(
        self, units: Sequence[SuiteUnit], jobs: int = 1, pool_id: int = 0
    ) -> None:
        if jobs < 1:
            raise DecompositionError("jobs must be at least 1")
        self.units = list(units)
        self.jobs = jobs
        self.pool_id = pool_id
        self.pools_created = 0
        self.worker_count = 0
        self._reports: Optional[List[CircuitReport]] = None

    def reports(self) -> List[CircuitReport]:
        """Per-unit reports, in submit order; requires a drained stream."""
        if self._reports is None:
            raise DecompositionError(
                "suite reports are assembled when the job stream is drained; "
                "iterate stream() (or call run()) first"
            )
        return self._reports

    def run(self) -> List[CircuitReport]:
        """Drain the stream and return the per-unit reports."""
        for _ in self.stream():
            pass
        return self.reports()

    @staticmethod
    def _arm_deadline(ready: PreparedRun, budget_left: Optional[float]) -> None:
        """Restart a unit's circuit budget the moment its jobs can run.

        ``budget_left`` is what the budget had left right after the unit's
        own planning; arming from that snapshot (rather than the live
        deadline) is idempotent, so the sequential fallback after a failed
        pool creation re-arms to the same remaining budget, not less.
        """
        if ready.deadline is not None and budget_left is not None:
            ready.deadline = Deadline(budget_left)

    @staticmethod
    def _share_persistent_caches(prepared: List[PreparedRun]) -> None:
        """Point units with one snapshot path at ONE in-memory instance.

        Suite units prepare (and therefore load the snapshot) before any of
        them runs; with per-unit instances the *last* finalize's save would
        rewrite the file from a copy loaded before the other units absorbed
        their entries, dropping them.  Sharing the instance makes each save
        cumulative — the per-circuit sequential flow built that up by
        construction (load N+1 happened after save N).  Warming already
        happened against identical loaded state, so reports are unaffected.
        """
        shared: Dict[str, PersistentConeCache] = {}
        for ready in prepared:
            if ready.persistent is None:
                continue
            path = os.path.abspath(ready.persistent.path)
            if path in shared:
                ready.persistent = shared[path]
            else:
                shared[path] = ready.persistent

    def stream(self) -> Iterator[Tuple[int, OutputResult]]:
        """Execute the suite, yielding ``(unit_index, record)`` as completed."""
        prepared: List[PreparedRun] = []
        budgets_left: List[Optional[float]] = []
        for unit in self.units:
            ready = unit.scheduler.prepare(
                unit.aig,
                unit.operator,
                unit.engines,
                circuit_timeout=unit.circuit_timeout,
                max_outputs=unit.max_outputs,
                circuit_name=unit.circuit_name,
            )
            prepared.append(ready)
            # A unit's circuit budget must pay for its own planning and
            # execution — never for the time *other* units spend running
            # before it.  Snapshot what is left right after planning and
            # re-arm the deadline when this unit's jobs can actually start
            # (_arm_deadline); otherwise earlier units' execution would
            # drain later units' budgets and suite reports would diverge
            # from solo runs.
            budgets_left.append(
                None if ready.deadline is None else ready.deadline.remaining()
            )
        records: List[Dict[int, OutputResult]] = [{} for _ in self.units]
        self._share_persistent_caches(prepared)
        used_workers = 0
        fallback: Optional[str] = None

        if self.jobs > 1:
            splits = [
                unit.scheduler.split_for_pool(ready)
                for unit, ready in zip(self.units, prepared)
            ]
            dispatch = [
                (slot, job)
                for slot, (primaries, _) in enumerate(splits)
                for job in primaries
            ]
            if sum(len(ready.jobs) for ready in prepared) <= 1:
                fallback = FALLBACK_SINGLE_JOB
            elif not dispatch:
                fallback = FALLBACK_WARM_CACHE
            else:
                # Heaviest cone anywhere in the suite first; ties broken by
                # submit order then output index for a deterministic dispatch
                # sequence (arrival order still varies with worker load).
                dispatch.sort(key=lambda item: (-item[1].cost, item[0], item[1].index))
                worker_count = min(self.jobs, len(dispatch))
                contexts = [
                    (
                        ready.aig,
                        ready.operator,
                        ready.engines,
                        unit.scheduler.worker_options(),
                        ready.report.circuit,
                    )
                    for unit, ready in zip(self.units, prepared)
                ]
                pool = _create_pool(worker_count, contexts)
                if pool is None:
                    fallback = FALLBACK_POOL_UNAVAILABLE
                else:
                    self.pools_created += 1
                    self.worker_count = worker_count
                    used_workers = worker_count
                    # Pool units execute concurrently: every budget starts now.
                    for slot, ready in enumerate(prepared):
                        self._arm_deadline(ready, budgets_left[slot])
                    job_of = {(slot, job.index): job for slot, job in dispatch}
                    followers_of = [followers for _, followers in splits]
                    pending = [len(primaries) for primaries, _ in splits]
                    # Units whose every job replays locally need nothing from
                    # the pool: run them now, before their budgets are spent
                    # waiting on other units' searches.
                    for slot in range(len(self.units)):
                        if pending[slot] == 0:
                            for record in self.units[slot].scheduler.execute_local(
                                prepared[slot], followers_of[slot], records[slot]
                            ):
                                yield slot, record
                    with pool:
                        for slot, index, record in pool.imap_unordered(
                            _worker_run,
                            [
                                (
                                    slot,
                                    job.index,
                                    job.output_name,
                                    job.seed,
                                    prepared[slot].deadline,
                                )
                                for slot, job in dispatch
                            ],
                        ):
                            pending[slot] -= 1
                            if record is not None:
                                job = job_of[(slot, index)]
                                self.units[slot].scheduler.absorb_worker_record(
                                    prepared[slot], job, record
                                )
                                records[slot][index] = record
                                yield slot, record
                            if pending[slot] == 0:
                                # This unit's last primary arrived: replay its
                                # followers immediately rather than after the
                                # whole drain — its circuit budget must not
                                # pay for other units' remaining searches.
                                for follower_record in self.units[
                                    slot
                                ].scheduler.execute_local(
                                    prepared[slot], followers_of[slot], records[slot]
                                ):
                                    yield slot, follower_record

        if not used_workers:
            # Sequential path: submit order, then output order (the exact
            # execution a per-circuit sequential run would perform).
            for slot, ready in enumerate(prepared):
                scheduler = self.units[slot].scheduler
                self._arm_deadline(ready, budgets_left[slot])
                if ready.persistent is not None:
                    # Earlier units may have absorbed entries into the shared
                    # snapshot; re-warm so this unit replays them — exactly
                    # what the legacy run-per-circuit flow got by loading
                    # the snapshot after the previous circuit saved it.
                    ready.warmed = ready.persistent.warm(ready.cache, ready.context)
                for record in scheduler.execute_local(ready, ready.jobs, records[slot]):
                    yield slot, record
                if ready.persistent is not None:
                    # Absorb (and save) now so the next unit's re-warm sees
                    # this unit's entries; finalize counts saved_early into
                    # schedule["persistent_saved"] and only rewrites the
                    # snapshot if anything new appeared since.
                    ready.saved_early = ready.persistent.absorb(
                        ready.cache, ready.context
                    )
                    if ready.saved_early:
                        ready.persistent.save()

        extra: Dict[str, object] = {
            "shared_pool": used_workers > 0,
            "pool_id": self.pool_id if used_workers else None,
            "suite_size": len(self.units),
        }
        self._reports = [
            unit.scheduler.finalize(
                ready, records[slot], used_workers, fallback, extra_schedule=extra
            )
            for slot, (unit, ready) in enumerate(zip(self.units, prepared))
        ]


# -- worker-process plumbing (module level for pickling) ------------------------

_WORKER_STATE: Dict[str, object] = {}

# One worker-side circuit context: its own BiDecomposer plus everything
# `decompose_output` needs.  The suite scheduler installs one per unit;
# single-circuit pools install exactly one (slot 0).
_WorkerContext = Tuple[BiDecomposer, AIG, str, List[str], str]


def _create_pool(worker_count: int, contexts: Sequence[tuple]):
    """Fork a worker pool initialised with the given circuit contexts.

    Returns ``None`` where no pool can exist (restricted sandboxes, or a
    daemonic parent process, which multiprocessing rejects via
    AssertionError) so callers fall back to the sequential path.  Exceptions
    raised *inside* jobs still propagate from the map calls, exactly as they
    would from the sequential driver.
    """
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        context = multiprocessing.get_context()
    try:
        return context.Pool(
            processes=worker_count,
            initializer=_worker_init,
            initargs=(list(contexts),),
        )
    except (OSError, ValueError, ImportError, AssertionError):  # pragma: no cover
        return None


def _worker_init(contexts: List[tuple]) -> None:
    """Install the per-circuit contexts in this worker process.

    Each entry is ``(aig, operator, engines, options, circuit_name)``; the
    worker builds one BiDecomposer per circuit so suite jobs from different
    requests run under their own options.
    """
    _WORKER_STATE["contexts"] = [
        (BiDecomposer(options), aig, operator, engines, circuit_name)
        for aig, operator, engines, options, circuit_name in contexts
    ]


def _worker_run(
    args: Tuple[int, int, str, int, Optional[Deadline]]
) -> Tuple[int, int, Optional[OutputResult]]:
    """Run one job in a pool worker, honouring its circuit's deadline.

    ``args`` is ``(slot, index, output_name, seed, deadline)`` where ``slot``
    selects the circuit context installed by :func:`_worker_init`.  The
    :class:`Deadline` crosses the pipe as plain data; its expiry check
    compares the system-wide monotonic clock, which parent and (forked or
    spawned) workers on one machine share, so "expired" means the same thing
    on both sides.  A job that starts after expiry is skipped (``None``
    marker — the parent reports it in ``schedule["skipped"]``); a job that
    starts before expiry runs its engines under sub-deadlines capped by the
    circuit's remaining budget.
    """
    slot, index, output_name, seed, deadline = args
    if deadline is not None and deadline.expired:
        return slot, index, None
    contexts: List[_WorkerContext] = _WORKER_STATE["contexts"]  # type: ignore[assignment]
    decomposer, aig, operator, engines, circuit_name = contexts[slot]
    with seeded_job(seed):
        record = decomposer.decompose_output(
            aig,
            output_name,
            operator,
            engines,
            circuit_name=circuit_name,
            deadline=deadline,
        )
    return slot, index, record
