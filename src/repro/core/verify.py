"""Independent verification of extracted decompositions.

Every decomposition produced by the library can be re-checked against the
original function: ``f == fA <OP> fB`` with inputs matched by name, and the
sub-functions must respect the partition (``fA`` must not depend on ``XB``
and vice versa).  The engines call this optionally; the test-suite and the
benchmark harnesses call it for every result they report.
"""

from __future__ import annotations

from typing import Optional

from repro.aig.function import BooleanFunction
from repro.core.partition import VariablePartition
from repro.core.spec import check_operator
from repro.errors import VerificationError


def verify_decomposition(
    function: BooleanFunction,
    operator: str,
    fa: BooleanFunction,
    fb: BooleanFunction,
    partition: Optional[VariablePartition] = None,
    raise_on_failure: bool = True,
) -> bool:
    """Check that ``fA <OP> fB`` equals ``function``.

    When ``partition`` is given, additionally check that ``fA`` only depends
    on ``XA ∪ XC`` and ``fB`` only on ``XB ∪ XC``.
    """
    operator = check_operator(operator)
    problems = []
    combined = fa.combine(fb, operator)
    if not combined.semantically_equal(function):
        problems.append("fA <op> fB is not equivalent to the original function")
    if partition is not None:
        allowed_a = set(partition.xa) | set(partition.xc)
        allowed_b = set(partition.xb) | set(partition.xc)
        extra_a = set(fa.support_names()) - allowed_a
        extra_b = set(fb.support_names()) - allowed_b
        if extra_a:
            problems.append(f"fA depends on variables outside XA ∪ XC: {sorted(extra_a)}")
        if extra_b:
            problems.append(f"fB depends on variables outside XB ∪ XC: {sorted(extra_b)}")
    if problems:
        if raise_on_failure:
            raise VerificationError("; ".join(problems))
        return False
    return True
