"""The paper's QBF models: matrix construction and the fN / fT constraints.

Two consumers exist:

* the *specialised* engine (:mod:`repro.core.qbf_bidec`) keeps the
  existential side (the control variables ``alpha_x`` / ``beta_x`` plus the
  ``fN`` / ``fT`` constraints) in a plain SAT solver and uses the
  :class:`repro.core.checks.RelaxationChecker` as the universal-player
  oracle — the counterexample-guided instantiation of formula (9);
* the *generic* path builds the full matrix of formula (4) as an AIG and
  hands it to :class:`repro.qbf.cegar.CegarTwoQbfSolver`; it is slower but
  exercises the general 2QBF machinery and backs the ablation benchmark.

The constraint builders implement:

* ``fN`` — non-trivial partitions: ``AtLeast1(alpha)``, ``AtLeast1(beta)``
  and the exclusion of ``(alpha_x, beta_x) = (1, 1)``;
* ``fT`` for disjointness (formula (5)): ``|XC| <= k``;
* ``fT`` for balancedness (formula (6)): ``0 <= |XA| - |XB| <= k``, which
  also breaks the XA/XB symmetry;
* ``fT`` for the combined cost (formula (8)): ``|XC| + |XA| - |XB| <= k``
  under the same symmetry assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.aig.aig import AIG
from repro.aig.function import BooleanFunction
from repro.core.spec import AND, OR, XOR, check_operator
from repro.errors import DecompositionError
from repro.sat.cardinality import at_least_one, at_most_k, totalizer_outputs
from repro.sat.cnf import CNF


@dataclass
class ControlVariables:
    """CNF variables for the partition controls of each input variable."""

    names: Tuple[str, ...]
    alpha: Dict[str, int]
    beta: Dict[str, int]

    @classmethod
    def allocate(cls, cnf: CNF, names: Sequence[str]) -> "ControlVariables":
        alpha = {name: cnf.new_var() for name in names}
        beta = {name: cnf.new_var() for name in names}
        return cls(tuple(names), alpha, beta)

    def alpha_literals(self) -> List[int]:
        return [self.alpha[name] for name in self.names]

    def beta_literals(self) -> List[int]:
        return [self.beta[name] for name in self.names]


# ---------------------------------------------------------------------------
# fN — non-trivial partitions
# ---------------------------------------------------------------------------


def add_nontrivial_constraint(cnf: CNF, controls: ControlVariables) -> None:
    """Require ``XA`` and ``XB`` to be non-empty and exclude ``(1, 1)`` codes."""
    for name in controls.names:
        cnf.add_clause((-controls.alpha[name], -controls.beta[name]))
    at_least_one(cnf, controls.alpha_literals())
    at_least_one(cnf, controls.beta_literals())


# ---------------------------------------------------------------------------
# fT — quality targets
# ---------------------------------------------------------------------------


def _shared_indicators(cnf: CNF, controls: ControlVariables) -> List[int]:
    """Fresh variables ``c_x`` with ``c_x <-> (NOT alpha_x AND NOT beta_x)``."""
    indicators = []
    for name in controls.names:
        c = cnf.new_var()
        a = controls.alpha[name]
        b = controls.beta[name]
        cnf.add_clause((a, b, c))
        cnf.add_clause((-c, -a))
        cnf.add_clause((-c, -b))
        indicators.append(c)
    return indicators


def add_disjointness_target(cnf: CNF, controls: ControlVariables, bound: int) -> None:
    """Formula (5): at most ``bound`` shared variables (``|XC| <= k``)."""
    if bound < 0:
        raise DecompositionError("the disjointness bound must be non-negative")
    indicators = _shared_indicators(cnf, controls)
    at_most_k(cnf, indicators, bound)


def add_balancedness_target(cnf: CNF, controls: ControlVariables, bound: int) -> None:
    """Formula (6): ``0 <= |XA| - |XB| <= k`` (breaking the XA/XB symmetry)."""
    if bound < 0:
        raise DecompositionError("the balancedness bound must be non-negative")
    out_a = totalizer_outputs(cnf, controls.alpha_literals())
    out_b = totalizer_outputs(cnf, controls.beta_literals())
    _add_unary_geq(cnf, out_a, out_b)
    _add_unary_difference_bound(cnf, out_a, out_b, bound)


def add_combined_target(cnf: CNF, controls: ControlVariables, bound: int) -> None:
    """Formula (8): ``|XC| + |XA| - |XB| <= k`` with ``|XA| >= |XB|``."""
    if bound < 0:
        raise DecompositionError("the combined bound must be non-negative")
    indicators = _shared_indicators(cnf, controls)
    out_a = totalizer_outputs(cnf, controls.alpha_literals())
    out_b = totalizer_outputs(cnf, controls.beta_literals())
    _add_unary_geq(cnf, out_a, out_b)
    out_total = totalizer_outputs(cnf, indicators + controls.alpha_literals())
    _add_unary_difference_bound(cnf, out_total, out_b, bound)


def _add_unary_geq(cnf: CNF, bigger: Sequence[int], smaller: Sequence[int]) -> None:
    """Unary comparison ``count(bigger) >= count(smaller)``."""
    for i, lit in enumerate(smaller):
        if i < len(bigger):
            cnf.add_clause((-lit, bigger[i]))
        else:
            cnf.add_unit(-lit)


def _add_unary_difference_bound(
    cnf: CNF, minuend: Sequence[int], subtrahend: Sequence[int], bound: int
) -> None:
    """Unary constraint ``count(minuend) - count(subtrahend) <= bound``."""
    for i in range(len(minuend)):
        threshold = i + bound
        if threshold >= len(minuend):
            continue
        # If at least threshold+1 of the minuend are true then at least i+1 of
        # the subtrahend must be true as well.
        if i < len(subtrahend):
            cnf.add_clause((-minuend[threshold], subtrahend[i]))
        else:
            cnf.add_unit(-minuend[threshold])


def add_target_constraint(
    cnf: CNF, controls: ControlVariables, target: str, bound: int
) -> None:
    """Dispatch on the target metric name."""
    if target == "disjointness":
        add_disjointness_target(cnf, controls, bound)
    elif target == "balancedness":
        add_balancedness_target(cnf, controls, bound)
    elif target == "combined":
        add_combined_target(cnf, controls, bound)
    else:
        raise DecompositionError(f"unknown target metric {target!r}")


def maximum_bound(target: str, num_variables: int) -> int:
    """The largest meaningful bound for a target metric over ``n`` inputs."""
    if num_variables < 2:
        raise DecompositionError("bi-decomposition needs at least two inputs")
    if target == "disjointness":
        return num_variables - 2
    if target == "balancedness":
        return num_variables - 2
    if target == "combined":
        return 2 * (num_variables - 1) - 2
    raise DecompositionError(f"unknown target metric {target!r}")


# ---------------------------------------------------------------------------
# Full matrix of formula (4) as a circuit (generic CEGAR path)
# ---------------------------------------------------------------------------


def build_matrix_function(
    function: BooleanFunction, operator: str
) -> Tuple[BooleanFunction, List[str], List[str]]:
    """Build the matrix of formula (4) as an AIG-backed function.

    Returns ``(matrix, existential_names, universal_names)`` where the matrix
    inputs are named ``alpha:<x>`` / ``beta:<x>`` (existential) and ``x:<x>``,
    ``xp:<x>``, ``xpp:<x>`` (plus ``xppp:<x>`` for XOR; universal).  The
    matrix evaluates to true iff the check formula — the part inside the
    negation of formula (3) — is *false*, i.e. the candidate partition defeats
    this particular universal assignment.
    """
    operator = check_operator(operator)
    source = function
    names = list(source.input_names)
    aig = AIG(f"qbf_matrix_{operator}")
    alpha = {name: aig.add_input(f"alpha:{name}") for name in names}
    beta = {name: aig.add_input(f"beta:{name}") for name in names}
    x0 = {name: aig.add_input(f"x:{name}") for name in names}
    x1 = {name: aig.add_input(f"xp:{name}") for name in names}
    x2 = {name: aig.add_input(f"xpp:{name}") for name in names}
    x3: Dict[str, int] = {}
    if operator == XOR:
        x3 = {name: aig.add_input(f"xppp:{name}") for name in names}

    def copy_f(assignment: Dict[str, int]) -> int:
        name_to_lit = {name: assignment[name] for name in names}
        return source.copy_into(aig, name_to_lit)

    out0 = copy_f(x0)
    out1 = copy_f(x1)
    out2 = copy_f(x2)

    conjuncts: List[int] = []
    if operator == OR:
        conjuncts.extend([out0, out1 ^ 1, out2 ^ 1])
    elif operator == AND:
        conjuncts.extend([out0 ^ 1, out1, out2])
    else:
        out3 = copy_f(x3)
        parity = aig.lxor(aig.lxor(out0, out1), aig.lxor(out2, out3))
        conjuncts.append(parity)

    for name in names:
        eq01 = aig.lxnor(x0[name], x1[name])
        eq02 = aig.lxnor(x0[name], x2[name])
        conjuncts.append(aig.lor(eq01, alpha[name]))
        conjuncts.append(aig.lor(eq02, beta[name]))
        if operator == XOR:
            eq13 = aig.lxnor(x1[name], x3[name])
            eq23 = aig.lxnor(x2[name], x3[name])
            conjuncts.append(aig.lor(eq13, beta[name]))
            conjuncts.append(aig.lor(eq23, alpha[name]))

    check_formula = aig.land_list(conjuncts)
    matrix_root = check_formula ^ 1  # the negation in formula (3)/(4)
    aig.add_output("matrix", matrix_root)

    existential = [f"alpha:{name}" for name in names] + [f"beta:{name}" for name in names]
    universal = (
        [f"x:{name}" for name in names]
        + [f"xp:{name}" for name in names]
        + [f"xpp:{name}" for name in names]
    )
    if operator == XOR:
        universal += [f"xppp:{name}" for name in names]
    ordered_inputs = [aig.input_by_name(n) for n in existential + universal]
    matrix = BooleanFunction(aig, matrix_root, ordered_inputs)
    return matrix, existential, universal
