"""QBF-based bi-decomposition with optimum variable partitions.

This module implements the paper's contribution: the engines STEP-QD
(optimum disjointness), STEP-QB (optimum balancedness) and STEP-QDB
(optimum combined cost, weights 1/1).  Each engine answers a sequence of
2QBF queries — "does a non-trivial partition with target metric at most
``k`` exist?" — and searches over ``k`` for the optimum with the strategies
discussed in section IV.A.6 (monotonically increasing, monotonically
decreasing, binary search and the hybrid default).

Two QBF back-ends are available:

* ``specialised`` (default): the counterexample-guided loop of formula (9)
  instantiated for this problem.  Candidate partitions come from a SAT
  solver over the control variables constrained by ``fN``, ``fT`` and the
  blocking clauses learned so far; each candidate is verified with the
  incremental :class:`repro.core.checks.RelaxationChecker`; a falsifying
  witness is turned into one blocking clause over the control variables
  (the variables whose copies differ in the witness cannot all stay
  relaxed).  Blocking clauses are sound for every bound ``k`` and are
  therefore shared across the whole optimum search.

* ``generic``: the same formula handed to the general-purpose AReQS-style
  solver in :mod:`repro.qbf.cegar`; used for cross-validation and for the
  ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.checks import RelaxationChecker
from repro.core.partition import VariablePartition
from repro.core.qbf_models import (
    ControlVariables,
    add_nontrivial_constraint,
    add_target_constraint,
    build_matrix_function,
    maximum_bound,
)
from repro.core.result import BiDecResult, SearchStatistics
from repro.core.spec import (
    ENGINE_STEP_QB,
    ENGINE_STEP_QD,
    ENGINE_STEP_QDB,
    check_operator,
)
from repro.errors import DecompositionError
from repro.qbf.cegar import CegarTwoQbfSolver
from repro.sat.cnf import CNF
from repro.sat.solver import Solver
from repro.utils.timer import Deadline, Stopwatch

TARGET_DISJOINTNESS = "disjointness"
TARGET_BALANCEDNESS = "balancedness"
TARGET_COMBINED = "combined"

TARGETS = (TARGET_DISJOINTNESS, TARGET_BALANCEDNESS, TARGET_COMBINED)

ENGINE_BY_TARGET = {
    TARGET_DISJOINTNESS: ENGINE_STEP_QD,
    TARGET_BALANCEDNESS: ENGINE_STEP_QB,
    TARGET_COMBINED: ENGINE_STEP_QDB,
}

STRATEGY_MI = "mi"
STRATEGY_MD = "md"
STRATEGY_BIN = "bin"
STRATEGY_AUTO = "auto"
STRATEGIES = (STRATEGY_MI, STRATEGY_MD, STRATEGY_BIN, STRATEGY_AUTO)


def metric_value(partition: VariablePartition, target: str) -> int:
    """The discrete counter the target metric bounds (|XC|, imbalance, sum)."""
    normalized = partition.normalized()
    if target == TARGET_DISJOINTNESS:
        return normalized.shared_count
    if target == TARGET_BALANCEDNESS:
        return normalized.imbalance
    if target == TARGET_COMBINED:
        return normalized.combined_count
    raise DecompositionError(f"unknown target metric {target!r}")


@dataclass
class BoundQueryResult:
    """Answer to one 2QBF query "is there a partition with metric <= k?"."""

    status: Optional[bool]
    partition: Optional[VariablePartition] = None
    iterations: int = 0


class QbfPartitionSolver:
    """Answers bound queries with the specialised CEGAR loop of formula (9)."""

    def __init__(self, checker: RelaxationChecker, target: str) -> None:
        if target not in TARGETS:
            raise DecompositionError(f"unknown target metric {target!r}")
        self.checker = checker
        self.target = target
        self.variables = list(checker.variables)
        # Blocking clauses over (name, side) pairs; each clause says "at least
        # one of these controls must be turned off".  They are consequences of
        # the matrix alone, hence valid for every bound.
        self._blocking: List[List[Tuple[str, str]]] = []
        self.stats = SearchStatistics()

    # -- one bound query -----------------------------------------------------------

    def query(
        self,
        bound: int,
        deadline: Optional[Deadline] = None,
        max_refinements: Optional[int] = None,
    ) -> BoundQueryResult:
        """Decide whether a non-trivial partition with metric <= bound exists."""
        cnf = CNF()
        controls = ControlVariables.allocate(cnf, self.variables)
        add_nontrivial_constraint(cnf, controls)
        add_target_constraint(cnf, controls, self.target, bound)
        candidate_solver = Solver()
        candidate_solver.add_cnf(cnf)
        for clause in self._blocking:
            candidate_solver.add_clause(self._clause_literals(clause, controls))

        result = BoundQueryResult(status=None)
        self.stats.qbf_calls += 1
        self.stats.bound_sequence.append(bound)
        while True:
            if deadline is not None and deadline.expired:
                return result
            if max_refinements is not None and result.iterations >= max_refinements:
                return result
            result.iterations += 1
            self.stats.qbf_iterations += 1

            candidate_answer = candidate_solver.solve(deadline=deadline)
            if candidate_answer.status is None:
                return result
            if candidate_answer.status is False:
                result.status = False
                return result
            alpha = {
                name: candidate_answer.model.get(controls.alpha[name], False)
                for name in self.variables
            }
            beta = {
                name: candidate_answer.model.get(controls.beta[name], False)
                for name in self.variables
            }
            self.stats.sat_calls += 1
            outcome = self.checker.check_alpha_beta(alpha, beta, deadline=deadline)
            if outcome.decomposable is None:
                return result
            if outcome.decomposable:
                partition = VariablePartition.from_alpha_beta(self.variables, alpha, beta)
                result.status = True
                result.partition = partition.normalized()
                return result
            clause = self._blocking_clause(outcome.witness_diff_a, outcome.witness_diff_b)
            self._blocking.append(clause)
            self.stats.refinements += 1
            candidate_solver.add_clause(self._clause_literals(clause, controls))

    @staticmethod
    def _blocking_clause(diff_a: Set[str], diff_b: Set[str]) -> List[Tuple[str, str]]:
        clause = [(name, "a") for name in sorted(diff_a)]
        clause += [(name, "b") for name in sorted(diff_b)]
        if not clause:
            raise DecompositionError(
                "internal error: a falsifying witness with no differing copies"
            )
        return clause

    @staticmethod
    def _clause_literals(
        clause: Sequence[Tuple[str, str]], controls: ControlVariables
    ) -> List[int]:
        literals = []
        for name, side in clause:
            var = controls.alpha[name] if side == "a" else controls.beta[name]
            literals.append(-var)
        return literals


class GenericQbfPartitionSolver:
    """Bound queries answered through the general AReQS-style 2QBF solver."""

    def __init__(self, checker: RelaxationChecker, target: str) -> None:
        if target not in TARGETS:
            raise DecompositionError(f"unknown target metric {target!r}")
        self.checker = checker
        self.target = target
        self.variables = list(checker.variables)
        self.stats = SearchStatistics()
        self._matrix, self._exist_names, self._universal_names = build_matrix_function(
            checker.function, checker.operator
        )

    def query(
        self,
        bound: int,
        deadline: Optional[Deadline] = None,
        max_refinements: Optional[int] = None,
    ) -> BoundQueryResult:
        solver = CegarTwoQbfSolver(self._matrix, self._exist_names, self._universal_names)
        cnf = CNF()
        controls = ControlVariables.allocate(cnf, self.variables)
        add_nontrivial_constraint(cnf, controls)
        add_target_constraint(cnf, controls, self.target, bound)
        var_map: Dict[str, int] = {}
        for name in self.variables:
            var_map[f"alpha:{name}"] = controls.alpha[name]
            var_map[f"beta:{name}"] = controls.beta[name]
        solver.add_exist_cnf(cnf, var_map)
        self.stats.qbf_calls += 1
        self.stats.bound_sequence.append(bound)
        answer = solver.solve(deadline=deadline, max_iterations=max_refinements)
        self.stats.qbf_iterations += answer.iterations
        self.stats.refinements += len(answer.counterexamples)
        if answer.status is None:
            return BoundQueryResult(status=None, iterations=answer.iterations)
        if answer.status is False:
            return BoundQueryResult(status=False, iterations=answer.iterations)
        alpha = {
            name: answer.model.get(f"alpha:{name}", False) for name in self.variables
        }
        beta = {name: answer.model.get(f"beta:{name}", False) for name in self.variables}
        partition = VariablePartition.from_alpha_beta(self.variables, alpha, beta)
        return BoundQueryResult(
            status=True, partition=partition.normalized(), iterations=answer.iterations
        )


# ---------------------------------------------------------------------------
# optimum search over the bound k
# ---------------------------------------------------------------------------


def qbf_decompose(
    checker: RelaxationChecker,
    target: str,
    bootstrap: Optional[VariablePartition] = None,
    strategy: str = STRATEGY_AUTO,
    per_call_timeout: Optional[float] = 4.0,
    deadline: Optional[Deadline] = None,
    backend: str = "specialised",
) -> BiDecResult:
    """Run one QBF engine (STEP-QD / STEP-QB / STEP-QDB) on one function.

    Parameters
    ----------
    bootstrap:
        A known-valid partition (typically the STEP-MG result) providing the
        initial upper bound on the target metric; without it the upper bound
        defaults to the maximum meaningful value (section IV.A.6).
    strategy:
        ``"mi"``, ``"md"``, ``"bin"`` or ``"auto"`` (binary search between
        the bootstrap bound and zero — the hybrid the paper recommends).
    per_call_timeout:
        Wall-clock budget for each individual 2QBF query (the paper uses 4
        seconds per QBF call).
    """
    if target not in TARGETS:
        raise DecompositionError(f"unknown target metric {target!r}")
    if strategy not in STRATEGIES:
        raise DecompositionError(f"unknown search strategy {strategy!r}")
    operator = check_operator(checker.operator)
    engine_name = ENGINE_BY_TARGET[target]
    stopwatch = Stopwatch().start()

    if backend == "specialised":
        solver: QbfPartitionSolver | GenericQbfPartitionSolver = QbfPartitionSolver(
            checker, target
        )
    elif backend == "generic":
        solver = GenericQbfPartitionSolver(checker, target)
    else:
        raise DecompositionError(f"unknown QBF backend {backend!r}")

    num_vars = len(checker.variables)
    upper = maximum_bound(target, num_vars)
    best_partition: Optional[VariablePartition] = None
    if bootstrap is not None:
        bootstrap.validate_against(checker.variables)
        best_partition = bootstrap.normalized()
        upper = min(upper, metric_value(best_partition, target))

    timed_out = False

    def run_query(bound: int) -> BoundQueryResult:
        nonlocal timed_out
        if deadline is not None and deadline.expired:
            timed_out = True
            return BoundQueryResult(status=None)
        call_deadline = (
            deadline.sub_deadline(per_call_timeout)
            if deadline is not None
            else Deadline(per_call_timeout)
        )
        answer = solver.query(bound, deadline=call_deadline)
        if answer.status is None:
            timed_out = True
        return answer

    lowest_feasible = upper + 1
    optimum_proven = False

    if best_partition is not None:
        lowest_feasible = metric_value(best_partition, target)

    bounds = _bound_schedule(strategy, upper)
    highest_infeasible = -1
    for bound in bounds:
        if bound >= lowest_feasible or bound <= highest_infeasible:
            continue
        if deadline is not None and deadline.expired:
            timed_out = True
            break
        answer = run_query(bound)
        if answer.status is True and answer.partition is not None:
            lowest_feasible = min(lowest_feasible, metric_value(answer.partition, target))
            if best_partition is None or metric_value(answer.partition, target) < metric_value(
                best_partition, target
            ):
                best_partition = answer.partition
        elif answer.status is False:
            highest_infeasible = max(highest_infeasible, bound)
        else:
            break

    if best_partition is not None and (
        highest_infeasible == metric_value(best_partition, target) - 1
        or metric_value(best_partition, target) == 0
    ):
        optimum_proven = True

    elapsed = stopwatch.stop()
    stats = solver.stats
    return BiDecResult(
        engine=engine_name,
        operator=operator,
        decomposed=best_partition is not None,
        partition=best_partition,
        optimum_proven=optimum_proven,
        cpu_seconds=elapsed,
        timed_out=timed_out,
        stats=stats,
    )


def _bound_schedule(strategy: str, upper: int) -> List[int]:
    """The sequence of bounds to query for a given search strategy.

    Feasibility is monotone in the bound, and the caller skips bounds already
    implied by earlier answers, so any enumeration of ``0..upper`` is correct;
    the strategies only differ in the order (and therefore in how quickly the
    interval collapses).
    """
    if upper < 0:
        return []
    ascending = list(range(0, upper + 1))
    if strategy == STRATEGY_MI:
        return ascending
    if strategy == STRATEGY_MD:
        return list(reversed(ascending))
    # Binary search order (also the "auto" hybrid): repeatedly probe the
    # middle of the remaining interval.  Pre-computing the visit order keeps
    # the driver loop simple; skipped bounds cost nothing.
    order: List[int] = []
    intervals = [(0, upper)]
    while intervals:
        low, high = intervals.pop(0)
        if low > high:
            continue
        mid = (low + high) // 2
        order.append(mid)
        intervals.append((low, mid - 1))
        intervals.append((mid + 1, high))
    return order


def qbf_decompose_all_targets(
    checker: RelaxationChecker,
    bootstrap: Optional[VariablePartition] = None,
    per_call_timeout: Optional[float] = 4.0,
    deadline: Optional[Deadline] = None,
) -> Dict[str, BiDecResult]:
    """Convenience helper: run STEP-QD, STEP-QB and STEP-QDB on one function."""
    results = {}
    for target in TARGETS:
        sub_deadline = deadline.sub_deadline(None) if deadline is not None else None
        results[ENGINE_BY_TARGET[target]] = qbf_decompose(
            checker,
            target,
            bootstrap=bootstrap,
            per_call_timeout=per_call_timeout,
            deadline=sub_deadline,
        )
    return results
