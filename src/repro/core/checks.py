"""SAT-based decomposability checks.

The foundation is Proposition 1 of the paper (Lee–Jiang, DAC'08): for a
non-trivial partition ``{XA | XB | XC}``, ``f`` is OR bi-decomposable iff

    f(XA, XB, XC)  AND  NOT f(XA', XB, XC)  AND  NOT f(XA, XB', XC)

is unsatisfiable.  The AND case is the dual (apply the OR check to ``NOT f``)
and the XOR case uses the four-copy "rectangle" condition.

Rather than rebuilding a formula per candidate partition, the
:class:`RelaxationChecker` encodes the paper's formula (2) once — every
input variable gets relaxation controls ``alpha_x`` / ``beta_x`` guarding the
equalities between the original and the instantiated copies — and each
partition check becomes a single incremental SAT call under assumptions.
This is the engine behind all partition-search strategies (LJH, STEP-MG and
the QBF refinement loop) as well as the source of:

* *needed equalities* (from UNSAT cores): variables whose equality was used
  in the refutation, which the heuristic engines use to grow partitions; and
* *counterexample difference sets* (from SAT models): variables whose copies
  differ in a falsifying witness, which become the QBF blocking clauses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.aig.function import BooleanFunction
from repro.core.partition import VariablePartition
from repro.core.spec import AND, OR, XOR, check_operator
from repro.errors import DecompositionError
from repro.sat.cnf import CNF
from repro.sat.solver import Solver
from repro.sat.tseitin import encode_relaxed_equiv, encode_xor
from repro.utils.timer import Deadline


@dataclass
class CheckOutcome:
    """Result of one decomposability check.

    ``decomposable`` is ``True`` (the check formula is UNSAT), ``False``
    (a falsifying witness exists) or ``None`` (budget exhausted).
    """

    decomposable: Optional[bool]
    needed_alpha: Set[str] = field(default_factory=set)
    needed_beta: Set[str] = field(default_factory=set)
    witness_diff_a: Set[str] = field(default_factory=set)
    witness_diff_b: Set[str] = field(default_factory=set)
    witness: Dict[str, bool] = field(default_factory=dict)


class RelaxationChecker:
    """Incremental decomposability checker for one function and operator."""

    def __init__(self, function: BooleanFunction, operator: str) -> None:
        self.function = function
        self.operator = check_operator(operator)
        self.variables: List[str] = list(function.input_names)
        if len(self.variables) < 2:
            raise DecompositionError(
                "bi-decomposition requires a function with at least two inputs"
            )
        self.sat_calls = 0

        cnf = CNF()
        # Shared (original) copy of the inputs plus one instantiated copy per
        # formula instantiation.
        self._x0 = {name: cnf.new_var() for name in self.variables}
        self._x1 = {name: cnf.new_var() for name in self.variables}
        self._x2 = {name: cnf.new_var() for name in self.variables}
        self._alpha = {name: cnf.new_var() for name in self.variables}
        self._beta = {name: cnf.new_var() for name in self.variables}
        self._x3: Dict[str, int] = {}

        out0 = self._encode_copy(cnf, self._x0)
        out1 = self._encode_copy(cnf, self._x1)
        out2 = self._encode_copy(cnf, self._x2)
        for name in self.variables:
            encode_relaxed_equiv(cnf, self._x0[name], self._x1[name], self._alpha[name])
            encode_relaxed_equiv(cnf, self._x0[name], self._x2[name], self._beta[name])

        if self.operator == OR:
            cnf.add_unit(out0)
            cnf.add_unit(-out1)
            cnf.add_unit(-out2)
        elif self.operator == AND:
            # AND decomposability of f == OR decomposability of NOT f.
            cnf.add_unit(-out0)
            cnf.add_unit(out1)
            cnf.add_unit(out2)
        else:  # XOR: the rectangle condition needs the doubly instantiated copy.
            self._x3 = {name: cnf.new_var() for name in self.variables}
            out3 = self._encode_copy(cnf, self._x3)
            for name in self.variables:
                encode_relaxed_equiv(
                    cnf, self._x1[name], self._x3[name], self._beta[name]
                )
                encode_relaxed_equiv(
                    cnf, self._x2[name], self._x3[name], self._alpha[name]
                )
            parity01 = cnf.new_var()
            parity23 = cnf.new_var()
            parity = cnf.new_var()
            encode_xor(cnf, parity01, out0, out1)
            encode_xor(cnf, parity23, out2, out3)
            encode_xor(cnf, parity, parity01, parity23)
            cnf.add_unit(parity)

        self._solver = Solver()
        self._solver.add_cnf(cnf)

    def _encode_copy(self, cnf: CNF, input_vars: Dict[str, int]) -> int:
        mapping = self.function.to_cnf(
            cnf,
            input_vars={
                node: input_vars[self.function.aig.input_name(node)]
                for node in self.function.inputs
            },
        )
        return mapping.output_literal

    # -- checks -------------------------------------------------------------------

    def check_partition(
        self,
        partition: VariablePartition,
        deadline: Optional[Deadline] = None,
        conflict_budget: Optional[int] = None,
    ) -> CheckOutcome:
        """Check decomposability under an explicit partition."""
        partition.validate_against(self.variables)
        alpha = {name: name in set(partition.xa) for name in self.variables}
        beta = {name: name in set(partition.xb) for name in self.variables}
        return self.check_alpha_beta(
            alpha, beta, deadline=deadline, conflict_budget=conflict_budget
        )

    def check_alpha_beta(
        self,
        alpha: Mapping[str, bool],
        beta: Mapping[str, bool],
        deadline: Optional[Deadline] = None,
        conflict_budget: Optional[int] = None,
    ) -> CheckOutcome:
        """Check decomposability under a relaxation assignment.

        ``alpha[name] = True`` relaxes the first instantiated copy for that
        variable (the variable may differ there, i.e. it belongs to ``XA``),
        ``beta[name] = True`` relaxes the second copy (``XB``); both false
        means the variable is shared (``XC``).
        """
        self.sat_calls += 1
        assumptions: List[int] = []
        for name in self.variables:
            a_var = self._alpha[name]
            b_var = self._beta[name]
            assumptions.append(a_var if alpha.get(name, False) else -a_var)
            assumptions.append(b_var if beta.get(name, False) else -b_var)
        result = self._solver.solve(
            assumptions=assumptions,
            deadline=deadline,
            conflict_budget=conflict_budget,
        )
        if result.status is None:
            return CheckOutcome(decomposable=None)
        if result.status is False:
            core = set(result.core)
            needed_alpha = {
                name for name in self.variables if -self._alpha[name] in core
            }
            needed_beta = {
                name for name in self.variables if -self._beta[name] in core
            }
            return CheckOutcome(
                decomposable=True, needed_alpha=needed_alpha, needed_beta=needed_beta
            )
        model = result.model
        diff_a: Set[str] = set()
        diff_b: Set[str] = set()
        for name in self.variables:
            base = model.get(self._x0[name], False)
            if model.get(self._x1[name], False) != base:
                diff_a.add(name)
            if model.get(self._x2[name], False) != base:
                diff_b.add(name)
            if self.operator == XOR and self._x3:
                third = model.get(self._x3[name], False)
                if third != model.get(self._x2[name], False):
                    diff_a.add(name)
                if third != model.get(self._x1[name], False):
                    diff_b.add(name)
        witness = {name: model.get(self._x0[name], False) for name in self.variables}
        return CheckOutcome(
            decomposable=False,
            witness_diff_a=diff_a,
            witness_diff_b=diff_b,
            witness=witness,
        )


def check_decomposable(
    function: BooleanFunction,
    operator: str,
    partition: VariablePartition,
    deadline: Optional[Deadline] = None,
) -> bool:
    """One-shot decomposability check (builds a fresh checker)."""
    if partition.is_trivial:
        raise DecompositionError("the check requires a non-trivial partition")
    checker = RelaxationChecker(function, operator)
    outcome = checker.check_partition(partition, deadline=deadline)
    if outcome.decomposable is None:
        raise DecompositionError("decomposability check exhausted its budget")
    return outcome.decomposable


def check_or_decomposable(
    function: BooleanFunction, partition: VariablePartition
) -> bool:
    """Proposition 1: OR bi-decomposability under a fixed partition."""
    return check_decomposable(function, OR, partition)


def check_and_decomposable(
    function: BooleanFunction, partition: VariablePartition
) -> bool:
    """AND bi-decomposability (dual of the OR check)."""
    return check_decomposable(function, AND, partition)


def check_xor_decomposable(
    function: BooleanFunction, partition: VariablePartition
) -> bool:
    """XOR bi-decomposability (four-copy rectangle condition)."""
    return check_decomposable(function, XOR, partition)
