"""Variable partitions and the paper's quality metrics.

A partition splits the input set ``X`` of the function under decomposition
into ``XA`` (private to ``fA``), ``XB`` (private to ``fB``) and ``XC``
(shared).  The paper measures partitions with two relative metrics:

* disjointness  ``epsilon_D = |XC| / |X|``  (Definition 2), and
* balancedness  ``epsilon_B = | |XA| - |XB| | / |X|``  (Definition 3),

and, for the combined STEP-QDB engine, the weighted cost of Definition 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.errors import DecompositionError


@dataclass(frozen=True)
class VariablePartition:
    """An ordered partition ``{XA | XB | XC}`` of named input variables."""

    xa: Tuple[str, ...]
    xb: Tuple[str, ...]
    xc: Tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "xa", tuple(self.xa))
        object.__setattr__(self, "xb", tuple(self.xb))
        object.__setattr__(self, "xc", tuple(self.xc))
        all_names = list(self.xa) + list(self.xb) + list(self.xc)
        if len(set(all_names)) != len(all_names):
            raise DecompositionError("partition blocks are not disjoint")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_alpha_beta(
        cls,
        variables: Sequence[str],
        alpha: Mapping[str, bool],
        beta: Mapping[str, bool],
    ) -> "VariablePartition":
        """Decode the paper's control-variable encoding.

        ``(alpha, beta) = (1, 0)`` puts the variable in ``XA``, ``(0, 1)`` in
        ``XB`` and ``(0, 0)`` in ``XC``.  The combination ``(1, 1)`` is
        rejected; the QBF models exclude it explicitly (see DESIGN.md).
        """
        xa, xb, xc = [], [], []
        for name in variables:
            a = bool(alpha.get(name, False))
            b = bool(beta.get(name, False))
            if a and b:
                raise DecompositionError(
                    f"variable {name!r} has (alpha, beta) = (1, 1); the models "
                    "exclude this combination"
                )
            if a:
                xa.append(name)
            elif b:
                xb.append(name)
            else:
                xc.append(name)
        return cls(tuple(xa), tuple(xb), tuple(xc))

    # -- structure ---------------------------------------------------------------

    @property
    def variables(self) -> Tuple[str, ...]:
        return self.xa + self.xb + self.xc

    @property
    def num_variables(self) -> int:
        return len(self.xa) + len(self.xb) + len(self.xc)

    @property
    def is_trivial(self) -> bool:
        """True when ``XA`` or ``XB`` is empty (section II.A)."""
        return not self.xa or not self.xb

    @property
    def is_disjoint(self) -> bool:
        return not self.xc

    def validate_against(self, variables: Iterable[str]) -> None:
        """Check the partition covers exactly the given variable set."""
        expected = set(variables)
        actual = set(self.variables)
        if expected != actual:
            missing = sorted(expected - actual)
            extra = sorted(actual - expected)
            raise DecompositionError(
                f"partition does not match the input set "
                f"(missing: {missing}, extra: {extra})"
            )

    def normalized(self) -> "VariablePartition":
        """Swap ``XA``/``XB`` so that ``|XA| >= |XB|`` (symmetry breaking)."""
        if len(self.xa) >= len(self.xb):
            return self
        return VariablePartition(self.xb, self.xa, self.xc)

    def membership(self) -> Dict[str, str]:
        """Map every variable name to ``"A"``, ``"B"`` or ``"C"``."""
        result = {name: "A" for name in self.xa}
        result.update({name: "B" for name in self.xb})
        result.update({name: "C" for name in self.xc})
        return result

    # -- quality metrics ------------------------------------------------------------

    @property
    def disjointness(self) -> Fraction:
        """``|XC| / |X|`` — Definition 2 (0 is best)."""
        if self.num_variables == 0:
            return Fraction(0)
        return Fraction(len(self.xc), self.num_variables)

    @property
    def balancedness(self) -> Fraction:
        """``| |XA| - |XB| | / |X|`` — Definition 3 (0 is best)."""
        if self.num_variables == 0:
            return Fraction(0)
        return Fraction(abs(len(self.xa) - len(self.xb)), self.num_variables)

    def cost(self, weight_disjointness: float = 1.0, weight_balancedness: float = 1.0) -> float:
        """The weighted cost of Definition 4."""
        if not (0.0 <= weight_disjointness <= 1.0 and 0.0 <= weight_balancedness <= 1.0):
            raise DecompositionError("weights must lie in [0, 1]")
        return float(
            weight_disjointness * self.disjointness
            + weight_balancedness * self.balancedness
        )

    # -- discrete counters used by the QBF bounds ------------------------------------

    @property
    def shared_count(self) -> int:
        """``|XC|`` — the quantity bounded by the disjointness target (5)."""
        return len(self.xc)

    @property
    def imbalance(self) -> int:
        """``| |XA| - |XB| |`` — the quantity bounded by the balancedness target (6)."""
        return abs(len(self.xa) - len(self.xb))

    @property
    def combined_count(self) -> int:
        """``|XC| + | |XA| - |XB| |`` — the quantity bounded by the combined target (8)."""
        return self.shared_count + self.imbalance

    def __str__(self) -> str:
        return (
            "{"
            + " ".join(self.xa)
            + " | "
            + " ".join(self.xb)
            + " | "
            + " ".join(self.xc)
            + "}"
        )
