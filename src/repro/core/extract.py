"""Extraction of the decomposition functions ``fA`` and ``fB``.

Once a partition is known (from any of the search engines) the actual
sub-functions still have to be synthesised.  Two back-ends are provided,
mirroring the original tools:

* **quantification** (default): the closed-form solutions

  - OR:  ``fA = forall XB . f``,  ``fB = forall XA . f``;
  - AND: ``fA = exists XB . f``,  ``fB = exists XA . f``;
  - XOR: ``fA = f|XB=0``, ``fB = f|XA=0  XOR  f|XA=0,XB=0``;

  realised by cofactor-based quantification directly on the AIG.  These are
  the maximal (resp. minimal) solutions and are always correct when the
  partition passed the decomposability check.

* **interpolation** (the Lee–Jiang construction the paper builds on): ``fA``
  is a Craig interpolant of the refutation of the OR check formula split so
  that the shared variables are ``XA ∪ XC``; ``fB`` is the interpolant of a
  second refutation whose A-part additionally carries ``NOT fA`` so the pair
  covers all of ``f``.  AND uses the dual construction through ``NOT f``;
  XOR falls back to the cofactor formulas (as does the original tool chain).

* **bdd**: the quantification formulas evaluated on BDDs
  (:mod:`repro.bdd.bidec_bdd`), kept as an independent oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.aig.aig import AIG
from repro.aig.function import BooleanFunction
from repro.bdd.bidec_bdd import bdd_and_decompose, bdd_or_decompose, bdd_xor_decompose
from repro.core.partition import VariablePartition
from repro.core.spec import (
    AND,
    EXTRACT_BDD,
    EXTRACT_INTERPOLATION,
    EXTRACT_QUANTIFICATION,
    OR,
    XOR,
    check_extraction,
    check_operator,
)
from repro.errors import DecompositionError
from repro.sat.cnf import CNF
from repro.sat.interpolate import InterpolantBuilder
from repro.sat.solver import Solver


def extract_functions(
    function: BooleanFunction,
    operator: str,
    partition: VariablePartition,
    method: str = EXTRACT_QUANTIFICATION,
) -> Tuple[BooleanFunction, BooleanFunction]:
    """Compute ``(fA, fB)`` for a partition known to be decomposable."""
    operator = check_operator(operator)
    method = check_extraction(method)
    partition.validate_against(function.input_names)
    if partition.is_trivial:
        raise DecompositionError("extraction requires a non-trivial partition")
    if method == EXTRACT_QUANTIFICATION:
        return _extract_by_quantification(function, operator, partition)
    if method == EXTRACT_BDD:
        return _extract_by_bdd(function, operator, partition)
    return _extract_by_interpolation(function, operator, partition)


# ---------------------------------------------------------------------------
# quantification back-end
# ---------------------------------------------------------------------------


def _extract_by_quantification(
    function: BooleanFunction, operator: str, partition: VariablePartition
) -> Tuple[BooleanFunction, BooleanFunction]:
    xa, xb, xc = list(partition.xa), list(partition.xb), list(partition.xc)
    if operator == OR:
        fa = function.forall(xb).restrict_inputs(xa + xc)
        fb = function.forall(xa).restrict_inputs(xb + xc)
        return fa, fb
    if operator == AND:
        fa = function.exists(xb).restrict_inputs(xa + xc)
        fb = function.exists(xa).restrict_inputs(xb + xc)
        return fa, fb
    # XOR
    fa = function
    for name in xb:
        fa = fa.cofactor(name, False)
    fb = function
    for name in xa:
        fb = fb.cofactor(name, False)
    offset = fb
    for name in xb:
        offset = offset.cofactor(name, False)
    # fb := fb XOR offset, realised inside the same AIG.
    fb_root = function.aig.lxor(fb.root, offset.root)
    fb = BooleanFunction(
        function.aig,
        fb_root,
        [function.aig.input_by_name(name) for name in xb + xc],
    )
    fa = fa.restrict_inputs(xa + xc)
    return fa, fb


# ---------------------------------------------------------------------------
# BDD back-end
# ---------------------------------------------------------------------------


def _extract_by_bdd(
    function: BooleanFunction, operator: str, partition: VariablePartition
) -> Tuple[BooleanFunction, BooleanFunction]:
    xa, xb, xc = list(partition.xa), list(partition.xb), list(partition.xc)
    if operator == OR:
        pair = bdd_or_decompose(function, xa, xb, xc)
    elif operator == AND:
        pair = bdd_and_decompose(function, xa, xb, xc)
    else:
        pair = bdd_xor_decompose(function, xa, xb, xc)
    if pair is None:
        raise DecompositionError(
            "the function is not decomposable under the given partition"
        )
    return pair


# ---------------------------------------------------------------------------
# interpolation back-end
# ---------------------------------------------------------------------------


def _extract_by_interpolation(
    function: BooleanFunction, operator: str, partition: VariablePartition
) -> Tuple[BooleanFunction, BooleanFunction]:
    if operator == XOR:
        # The original tool chain also synthesises the XOR case from
        # cofactors; interpolation is specific to the OR/AND forms.
        return _extract_by_quantification(function, XOR, partition)
    if operator == AND:
        ga, gb = _extract_by_interpolation(function.negate(), OR, partition)
        return ga.negate(), gb.negate()

    xa, xb, xc = list(partition.xa), list(partition.xb), list(partition.xc)
    # First interpolant: fA over XA ∪ XC.
    fa = _or_interpolant(function, shared=xa + xc, partition=partition, side="A", extra_a=None)
    # Second interpolant: fB over XB ∪ XC, with NOT fA added to the A-part so
    # the pair covers every onset minterm fA misses.
    fb = _or_interpolant(function, shared=xb + xc, partition=partition, side="B", extra_a=fa)
    return fa, fb


def _or_interpolant(
    function: BooleanFunction,
    shared: List[str],
    partition: VariablePartition,
    side: str,
    extra_a: Optional[BooleanFunction],
) -> BooleanFunction:
    """Compute one interpolant of the OR-check refutation.

    ``side = "A"`` computes ``fA`` (shared variables ``XA ∪ XC``): the A-part
    is ``f(X) AND NOT f(XA', XB, XC)`` and the B-part is
    ``NOT f(XA, XB', XC)``.  ``side = "B"`` computes ``fB`` (shared
    ``XB ∪ XC``): the A-part is ``f(X) AND NOT fA(XA, XC)`` — every onset
    point ``fA`` fails to cover — and the B-part is ``NOT f(XA', XB, XC)``;
    the pair is unsatisfiable because ``NOT fA(a, c)`` together with
    ``f(a, b, c)`` forces ``f`` to be 1 for every value of ``XA`` (that is
    exactly the first interpolant's defining property), contradicting the
    B-part.
    """
    solver = Solver(proof=True)
    base_vars: Dict[str, int] = {}
    for name in function.input_names:
        base_vars[name] = solver.new_var()

    def encode_copy(renamed: List[str]) -> Tuple[int, List[int]]:
        """Encode one copy of f; variables in ``renamed`` get fresh CNF vars."""
        cnf = CNF(num_vars=solver.num_vars)
        copy_vars = dict(base_vars)
        for name in renamed:
            copy_vars[name] = cnf.new_var()
        mapping = function.to_cnf(
            cnf,
            input_vars={
                node: copy_vars[function.aig.input_name(node)]
                for node in function.inputs
            },
        )
        clause_ids = solver.add_cnf(cnf)
        return mapping.output_literal, [cid for cid in clause_ids if cid is not None]

    a_ids: List[int] = []
    b_ids: List[int] = []

    # Copy 0: f(X) == 1 (always part of A).
    out0, ids0 = encode_copy([])
    a_ids.extend(ids0)
    cid = solver.add_clause((out0,))
    if cid is not None:
        a_ids.append(cid)

    if side == "A":
        out_a, ids_a = encode_copy(list(partition.xa))  # NOT f(XA', XB, XC)
        a_ids.extend(ids_a)
        cid = solver.add_clause((-out_a,))
        if cid is not None:
            a_ids.append(cid)
        out_b, ids_b = encode_copy(list(partition.xb))  # NOT f(XA, XB', XC)
        b_ids.extend(ids_b)
        cid = solver.add_clause((-out_b,))
        if cid is not None:
            b_ids.append(cid)
    else:
        out_b, ids_b = encode_copy(list(partition.xa))  # NOT f(XA', XB, XC)
        b_ids.extend(ids_b)
        cid = solver.add_clause((-out_b,))
        if cid is not None:
            b_ids.append(cid)

    if extra_a is not None:
        # Strengthen the A-part with NOT fA (over shared/base variables).
        cnf = CNF(num_vars=solver.num_vars)
        mapping = extra_a.to_cnf(
            cnf,
            input_vars={
                node: base_vars[extra_a.aig.input_name(node)]
                for node in extra_a.inputs
            },
        )
        cnf.add_unit(-mapping.output_literal)
        for cid in solver.add_cnf(cnf):
            if cid is not None:
                a_ids.append(cid)

    result = solver.solve()
    if result.status is not False:
        raise DecompositionError(
            "interpolation-based extraction requires the OR check to be "
            "unsatisfiable; the partition is not decomposable"
        )

    target = AIG(f"interpolant_{side}")
    shared_lits = {name: target.add_input(name) for name in shared}
    var_to_literal = {base_vars[name]: shared_lits[name] for name in shared}
    builder = InterpolantBuilder(solver.proof(), a_ids, target, var_to_literal)
    root = builder.build()
    target.add_output("f", root)
    return BooleanFunction(target, root, [target.input_by_name(n) for n in shared])
