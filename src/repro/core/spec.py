"""Operator and engine identifiers used across the core package."""

from __future__ import annotations

from repro.errors import DecompositionError

OR = "or"
AND = "and"
XOR = "xor"

OPERATORS = (OR, AND, XOR)

# Engine names follow the paper's tool names.
ENGINE_LJH = "LJH"
ENGINE_STEP_MG = "STEP-MG"
ENGINE_STEP_QD = "STEP-QD"
ENGINE_STEP_QB = "STEP-QB"
ENGINE_STEP_QDB = "STEP-QDB"
ENGINE_BDD = "BDD"

ENGINES = (
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QD,
    ENGINE_STEP_QB,
    ENGINE_STEP_QDB,
    ENGINE_BDD,
)

# Extraction back-ends for computing fA / fB once a partition is known.
EXTRACT_QUANTIFICATION = "quantification"
EXTRACT_INTERPOLATION = "interpolation"
EXTRACT_BDD = "bdd"

EXTRACTION_METHODS = (EXTRACT_QUANTIFICATION, EXTRACT_INTERPOLATION, EXTRACT_BDD)


def check_operator(operator: str) -> str:
    """Validate an operator name and return it lower-cased."""
    lowered = str(operator).lower()
    if lowered not in OPERATORS:
        raise DecompositionError(
            f"unsupported operator {operator!r}; expected one of {OPERATORS}"
        )
    return lowered


def check_engine(engine: str) -> str:
    """Validate an engine name (case-sensitive, as printed in the paper).

    Delegates to the engine registry (:mod:`repro.api.registry`), so names
    of registered third-party engines validate exactly like the built-ins
    and an unknown name fails with one line naming every known engine.  The
    import is deferred: the registry imports this module's constants.
    """
    from repro.api.registry import default_registry

    return default_registry().check(engine)


def check_extraction(method: str) -> str:
    lowered = str(method).lower()
    if lowered not in EXTRACTION_METHODS:
        raise DecompositionError(
            f"unknown extraction method {method!r}; expected one of {EXTRACTION_METHODS}"
        )
    return lowered
