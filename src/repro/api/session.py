"""The session facade: run one request, or stream a whole suite.

:class:`Session` is the canonical entry point of the library (the legacy
``BiDecomposer.decompose_circuit`` surface is a shim over it):

* :meth:`Session.run` executes one
  :class:`repro.api.request.DecompositionRequest` and returns its
  :class:`repro.core.result.CircuitReport` — exactly what the legacy call
  produced, fingerprint-identical.
* :meth:`Session.submit` + :meth:`Session.as_completed` execute a *suite*:
  every submitted circuit's outputs are sharded across **one** shared
  worker pool (see :class:`repro.core.scheduler.SuiteScheduler`), and
  finished :class:`repro.core.result.OutputResult`\\ s stream back as they
  complete — from whichever circuit finished one, so a heavy circuit no
  longer serialises the suite behind it.  Per-circuit reports are assembled
  when the stream is drained (:meth:`Session.reports`).

Requests are validated against the session's
:class:`repro.api.registry.EngineRegistry` at run/submit time, so a
session restricted to a custom registry *rejects* engines the default
registry would accept.  Third-party engines must be registered in the
process-wide :func:`repro.api.registry.default_registry` — requests
validate against it at construction, and the engine driver resolves
plug-in runners through it; a session registry narrows the allowed set,
it does not widen it.

Example::

    from repro.api import DecompositionRequest, Parallelism, Session

    session = Session()
    requests = [
        DecompositionRequest(circuit=aig, operator="or",
                             engines=("STEP-MG", "STEP-QD"),
                             parallelism=Parallelism(jobs=4))
        for aig in suite
    ]
    session.submit(requests)
    for record in session.as_completed():
        print(record.circuit, record.output_name)
    reports = session.reports()
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.api.registry import EngineRegistry, default_registry
from repro.api.request import DecompositionRequest
from repro.core.result import CircuitReport, OutputResult
from repro.errors import DecompositionError


class Session:
    """A decomposition service handle: registry + suite submission queue.

    Parameters
    ----------
    registry:
        Engine registry to validate requests against; defaults to the
        process-wide registry (where third-party engines register).

    Attributes
    ----------
    stats:
        Counters over the session's lifetime: ``runs`` (single-request
        executions), ``suites`` (drained ``submit`` batches) and
        ``pools_created`` (worker pools forked by those suites — exactly
        one per parallel suite, the "one pool for N circuits" guarantee).
    """

    def __init__(self, registry: Optional[EngineRegistry] = None) -> None:
        # Explicit None check: a registry with no engines is falsy (__len__)
        # but still a deliberate choice, not a request for the default.
        self.registry = default_registry() if registry is None else registry
        self._pending: List[DecompositionRequest] = []
        # None while a submitted suite is draining (or was abandoned
        # mid-stream); a list once a drain completed.
        self._reports: Optional[List[CircuitReport]] = []
        self._next_pool_id = 0
        self.stats: Dict[str, int] = {"runs": 0, "suites": 0, "pools_created": 0}

    # -- single request -----------------------------------------------------------

    def run(self, request: DecompositionRequest) -> CircuitReport:
        """Execute one request and return its circuit report."""
        self._check(request)
        scheduler = self._scheduler_for(request)
        self.stats["runs"] += 1
        return scheduler.run(
            request.circuit,
            request.operator,
            list(request.engines),
            circuit_timeout=request.budgets.per_circuit,
            max_outputs=request.max_outputs,
            circuit_name=request.name,
        )

    # -- suites -------------------------------------------------------------------

    def submit(
        self, requests: Iterable[DecompositionRequest] | DecompositionRequest
    ) -> int:
        """Queue requests for the next :meth:`as_completed` drain.

        Accepts one request or an iterable; returns the number of requests
        now pending.  Nothing executes until the stream is consumed.
        """
        if isinstance(requests, DecompositionRequest):
            requests = [requests]
        batch = list(requests)
        for request in batch:
            self._check(request)
        self._pending.extend(batch)
        # The last drained suite no longer answers for the session: reports()
        # must not serve batch N-1's reports while batch N is pending.
        if self._pending:
            self._reports = None
        return len(self._pending)

    def as_completed(self) -> Iterator[OutputResult]:
        """Execute the pending suite, streaming records as they complete.

        All pending requests are sharded over one worker pool sized to the
        largest ``parallelism.jobs`` among them (sequential when that is 1).
        Yield order under a parallel pool is completion order and therefore
        machine-dependent; the *set* of records — and the per-circuit
        reports afterwards — is deterministic and fingerprint-identical to
        running each request individually.  Draining the stream assembles
        the reports (:meth:`reports`) and clears the queue.
        """
        from repro.core.executors import strongest_backend
        from repro.core.scheduler import SuiteScheduler, SuiteUnit

        if not self._pending:
            return
        batch, self._pending = self._pending, []
        # Invalidate until the drain completes: an abandoned stream must not
        # leave reports() silently answering with the previous suite.
        self._reports = None
        units = [
            SuiteUnit(
                scheduler=self._scheduler_for(request),
                aig=request.circuit,
                operator=request.operator,
                engines=list(request.engines),
                circuit_timeout=request.budgets.per_circuit,
                max_outputs=request.max_outputs,
                circuit_name=request.name,
                priority=request.priority,
                cross_dedup=request.cache.cross_circuit_dedup,
            )
            for request in batch
        ]
        jobs = max(request.parallelism.jobs for request in batch)
        # One suite runs on one substrate: the strongest backend any of
        # the batched requests asked for.
        backend = strongest_backend(
            request.parallelism.backend for request in batch
        )
        suite = SuiteScheduler(
            units, jobs=jobs, pool_id=self._next_pool_id, backend=backend
        )
        self._next_pool_id += 1
        for _slot, record in suite.stream():
            yield record
        self._reports = suite.reports()
        self.stats["suites"] += 1
        self.stats["pools_created"] += suite.pools_created

    def run_suite(
        self, requests: Iterable[DecompositionRequest]
    ) -> List[CircuitReport]:
        """Submit, drain and return the per-request reports (submit order)."""
        self.submit(requests)
        for _record in self.as_completed():
            pass
        return self.reports()

    def reports(self) -> List[CircuitReport]:
        """Per-request reports of the last drained suite, in submit order."""
        if self._reports is None:
            raise DecompositionError(
                "a submitted suite has not been drained; exhaust "
                "as_completed() before reading reports"
            )
        return list(self._reports)

    def report(self, circuit_name: str) -> CircuitReport:
        """The last drained suite's report for the named circuit."""
        for report in self.reports():
            if report.circuit == circuit_name:
                return report
        raise DecompositionError(
            f"no report for circuit {circuit_name!r} in the last drained suite"
        )

    # -- internals ----------------------------------------------------------------

    def _check(self, request: DecompositionRequest) -> None:
        if not isinstance(request, DecompositionRequest):
            raise DecompositionError(
                f"expected a DecompositionRequest, got {type(request).__name__}"
            )
        request.validate_against(self.registry)

    def _scheduler_for(self, request: DecompositionRequest):
        from repro.core.engine import BiDecomposer
        from repro.core.scheduler import BatchScheduler

        options = request.to_options()
        return BatchScheduler(
            BiDecomposer(options),
            jobs=options.jobs,
            dedup=options.dedup,
            seed=options.seed,
            cache_dir=options.cache_dir,
            backend=request.parallelism.backend,
        )
