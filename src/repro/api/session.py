"""The session facade: run one request, or stream a whole suite.

:class:`Session` is the canonical entry point of the library (the legacy
``BiDecomposer.decompose_circuit`` surface is a shim over it):

* :meth:`Session.run` executes one
  :class:`repro.api.request.DecompositionRequest` and returns its
  :class:`repro.core.result.CircuitReport` — exactly what the legacy call
  produced, fingerprint-identical.
* :meth:`Session.submit` + :meth:`Session.as_completed` execute a *suite*:
  every submitted circuit's outputs are sharded across **one** shared
  worker pool (see :class:`repro.core.scheduler.SuiteScheduler`), and
  finished :class:`repro.core.result.OutputResult`\\ s stream back as they
  complete — from whichever circuit finished one, so a heavy circuit no
  longer serialises the suite behind it.  Per-circuit reports are assembled
  when the stream is drained (:meth:`Session.reports`).

Requests are validated against the session's
:class:`repro.api.registry.EngineRegistry` at run/submit time, so a
session restricted to a custom registry *rejects* engines the default
registry would accept.  Third-party engines must be registered in the
process-wide :func:`repro.api.registry.default_registry` — requests
validate against it at construction, and the engine driver resolves
plug-in runners through it; a session registry narrows the allowed set,
it does not widen it.

Example::

    from repro.api import DecompositionRequest, Parallelism, Session

    session = Session()
    requests = [
        DecompositionRequest(circuit=aig, operator="or",
                             engines=("STEP-MG", "STEP-QD"),
                             parallelism=Parallelism(jobs=4))
        for aig in suite
    ]
    session.submit(requests)
    for record in session.as_completed():
        print(record.circuit, record.output_name)
    reports = session.reports()
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Iterator, List, Optional

from repro.api.lifecycle import RequestTicket, TicketCounter
from repro.api.registry import EngineRegistry, default_registry
from repro.api.request import DecompositionRequest
from repro.core.result import CircuitReport, OutputResult
from repro.errors import DecompositionError
from repro.obs.registry import default_registry as obs_registry
from repro.utils.timer import monotonic

#: Wall-clock of whole blocking runs, pure observability (never enters
#: report data; ``report.schedule`` stays outside fingerprints anyway).
_RUN_SECONDS = obs_registry().histogram(
    "repro_session_run_seconds", "blocking Session.run wall time"
)


def scheduler_for_request(request: DecompositionRequest, cache_provider=None):
    """The per-request :class:`repro.core.scheduler.BatchScheduler`.

    Shared by the blocking session, the asyncio session and the service
    daemon, so every front door builds identical execution state for a
    given request.
    """
    from repro.core.engine import BiDecomposer
    from repro.core.scheduler import BatchScheduler

    options = request.to_options()
    return BatchScheduler(
        BiDecomposer(options),
        jobs=options.jobs,
        dedup=options.dedup,
        seed=options.seed,
        cache_dir=options.cache_dir,
        backend=request.parallelism.backend,
        cache_max_entries=request.cache.max_entries,
        cache_provider=cache_provider,
    )


def shared_cache_provider(store: Dict[str, object]):
    """A ``(path, max_entries) -> PersistentConeCache`` factory backed by
    ``store``: one shared instance per absolute snapshot path.

    Both session facades use this so every run in a session against the
    same cache dir reuses ONE in-memory cache (one disk read per session,
    cumulative saves, a deterministic flush point at close).  The first
    request against a path fixes the compaction bound for the session (a
    daemon configures one policy anyway).
    """
    from repro.aig.signature import PersistentConeCache

    def provide(path: str, max_entries: Optional[int]):
        key = os.path.abspath(path)
        cache = store.get(key)
        if cache is None:
            cache = PersistentConeCache(path, max_entries=max_entries)
            store[key] = cache
        return cache

    return provide


def unit_for_request(request: DecompositionRequest, cache_provider=None):
    """One request as a :class:`repro.core.scheduler.SuiteUnit`."""
    from repro.core.scheduler import SuiteUnit

    return SuiteUnit(
        scheduler=scheduler_for_request(request, cache_provider=cache_provider),
        aig=request.circuit,
        operator=request.operator,
        engines=list(request.engines),
        circuit_timeout=request.budgets.per_circuit,
        max_outputs=request.max_outputs,
        circuit_name=request.name,
        priority=request.priority,
        cross_dedup=request.cache.cross_circuit_dedup,
    )


class Session:
    """A decomposition service handle: registry + suite submission queue.

    Parameters
    ----------
    registry:
        Engine registry to validate requests against; defaults to the
        process-wide registry (where third-party engines register).

    Attributes
    ----------
    stats:
        Counters over the session's lifetime: ``runs`` (single-request
        executions), ``suites`` (drained ``submit`` batches) and
        ``pools_created`` (worker pools forked by those suites — exactly
        one per parallel suite, the "one pool for N circuits" guarantee).
    """

    def __init__(self, registry: Optional[EngineRegistry] = None) -> None:
        # Explicit None check: a registry with no engines is falsy (__len__)
        # but still a deliberate choice, not a request for the default.
        self.registry = default_registry() if registry is None else registry
        self._pending: List[DecompositionRequest] = []
        # Ticket per pending request, same order as ``_pending``.
        self._pending_tickets: List[RequestTicket] = []
        # None while a submitted suite is draining (or was abandoned
        # mid-stream); a list once a drain completed.
        self._reports: Optional[List[CircuitReport]] = []
        self._next_pool_id = 0
        self._counter = TicketCounter()
        self._tickets: List[RequestTicket] = []
        # Shared persistent-cache instances (see shared_cache_provider).
        self._persistent_caches: Dict[str, object] = {}
        self._provide_cache = shared_cache_provider(self._persistent_caches)
        self._closed = False
        self.stats: Dict[str, int] = {"runs": 0, "suites": 0, "pools_created": 0}

    # -- lifecycle ----------------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Deterministic shutdown: cancel still-queued requests and flush
        shared persistent-cache snapshots.

        Idempotent.  After ``close()`` the session rejects new work; the
        reports of already-drained suites stay readable.
        """
        if self._closed:
            return
        self._closed = True
        for ticket in self._pending_tickets:
            ticket.mark_cancelled()
        self._pending = []
        self._pending_tickets = []
        for cache in self._persistent_caches.values():
            if cache.dirty:
                cache.save()

    def _check_open(self) -> None:
        if self._closed:
            raise DecompositionError("the session is closed; no further requests")

    # -- status -------------------------------------------------------------------

    def tickets(self) -> List[RequestTicket]:
        """Every request ticket this session issued, in submission order."""
        return list(self._tickets)

    def status(self, ticket_id: Optional[int] = None):
        """Per-request lifecycle state.

        With no argument: ``{ticket_id: state}`` over every request the
        session has seen (``queued``/``running``/``done``/``cancelled``/
        ``failed``) — streaming consumers no longer infer completion from
        :meth:`as_completed` exhaustion.  With a ticket id: that request's
        state string.
        """
        if ticket_id is None:
            return {ticket.id: ticket.state for ticket in self._tickets}
        for ticket in self._tickets:
            if ticket.id == ticket_id:
                return ticket.state
        raise DecompositionError(f"unknown request ticket id {ticket_id!r}")

    def cancel(self, ticket_id: int) -> bool:
        """Cancel a still-queued request (submitted, not yet drained).

        Returns ``True`` when the request was removed from the pending
        batch; ``False`` when it is already executing or terminal (the
        blocking session cannot interrupt a drain in progress — the async
        session and the service can).
        """
        for position, ticket in enumerate(self._pending_tickets):
            if ticket.id == ticket_id:
                del self._pending[position]
                del self._pending_tickets[position]
                return ticket.mark_cancelled()
        return False

    def _issue_ticket(self, request: DecompositionRequest) -> RequestTicket:
        ticket = RequestTicket(self._counter.next(), request.circuit_name)
        self._tickets.append(ticket)
        return ticket

    # -- single request -----------------------------------------------------------

    def run(self, request: DecompositionRequest) -> CircuitReport:
        """Execute one request and return its circuit report."""
        self._check_open()
        self._check(request)
        scheduler = self._scheduler_for(request)
        self.stats["runs"] += 1
        ticket = self._issue_ticket(request)
        ticket.mark_running()
        started = monotonic()
        try:
            report = scheduler.run(
                request.circuit,
                request.operator,
                list(request.engines),
                circuit_timeout=request.budgets.per_circuit,
                max_outputs=request.max_outputs,
                circuit_name=request.name,
            )
        except Exception as exc:
            ticket.mark_failed(f"{type(exc).__name__}: {exc}")
            raise
        finally:
            _RUN_SECONDS.observe(monotonic() - started)
        ticket.mark_done(report)
        return report

    # -- suites -------------------------------------------------------------------

    def submit(
        self, requests: Iterable[DecompositionRequest] | DecompositionRequest
    ) -> int:
        """Queue requests for the next :meth:`as_completed` drain.

        Accepts one request or an iterable; returns the number of requests
        now pending.  Nothing executes until the stream is consumed.
        """
        self._check_open()
        if isinstance(requests, DecompositionRequest):
            requests = [requests]
        batch = list(requests)
        for request in batch:
            self._check(request)
        self._pending.extend(batch)
        self._pending_tickets.extend(
            self._issue_ticket(request) for request in batch
        )
        # The last drained suite no longer answers for the session: reports()
        # must not serve batch N-1's reports while batch N is pending.
        if self._pending:
            self._reports = None
        return len(self._pending)

    def as_completed(self) -> Iterator[OutputResult]:
        """Execute the pending suite, streaming records as they complete.

        All pending requests are sharded over one worker pool sized to the
        largest ``parallelism.jobs`` among them (sequential when that is 1).
        Yield order under a parallel pool is completion order and therefore
        machine-dependent; the *set* of records — and the per-circuit
        reports afterwards — is deterministic and fingerprint-identical to
        running each request individually.  Draining the stream assembles
        the reports (:meth:`reports`) and clears the queue.
        """
        from repro.core.executors import strongest_backend
        from repro.core.scheduler import SuiteScheduler

        if not self._pending:
            return
        batch, self._pending = self._pending, []
        tickets, self._pending_tickets = self._pending_tickets, []
        # Invalidate until the drain completes: an abandoned stream must not
        # leave reports() silently answering with the previous suite.
        self._reports = None
        units = [
            unit_for_request(request, cache_provider=self._provide_cache)
            for request in batch
        ]
        jobs = max(request.parallelism.jobs for request in batch)
        # One suite runs on one substrate: the strongest backend any of
        # the batched requests asked for.
        backend = strongest_backend(
            request.parallelism.backend for request in batch
        )
        suite = SuiteScheduler(
            units, jobs=jobs, pool_id=self._next_pool_id, backend=backend
        )
        self._next_pool_id += 1
        try:
            for slot, record in suite.stream():
                tickets[slot].mark_running()
                yield record
        except GeneratorExit:
            # Abandoned mid-drain: the batch never completed — the
            # consumer walked away, which is a cancellation, not failure.
            for ticket in tickets:
                if not ticket.terminal:
                    ticket.mark_cancelled()
            raise
        except Exception as exc:
            for ticket in tickets:
                if not ticket.terminal:
                    ticket.mark_failed(f"{type(exc).__name__}: {exc}")
            raise
        self._reports = suite.reports()
        for ticket, report in zip(tickets, self._reports):
            ticket.mark_running()  # no-op unless the unit streamed nothing
            ticket.mark_done(report)
        self.stats["suites"] += 1
        self.stats["pools_created"] += suite.pools_created

    def run_suite(
        self, requests: Iterable[DecompositionRequest]
    ) -> List[CircuitReport]:
        """Submit, drain and return the per-request reports (submit order)."""
        self.submit(requests)
        for _record in self.as_completed():
            pass
        return self.reports()

    def reports(self) -> List[CircuitReport]:
        """Per-request reports of the last drained suite, in submit order."""
        if self._reports is None:
            raise DecompositionError(
                "a submitted suite has not been drained; exhaust "
                "as_completed() before reading reports"
            )
        return list(self._reports)

    def report(self, circuit_name: str) -> CircuitReport:
        """The last drained suite's report for the named circuit."""
        for report in self.reports():
            if report.circuit == circuit_name:
                return report
        raise DecompositionError(
            f"no report for circuit {circuit_name!r} in the last drained suite"
        )

    # -- internals ----------------------------------------------------------------

    def _check(self, request: DecompositionRequest) -> None:
        if not isinstance(request, DecompositionRequest):
            raise DecompositionError(
                f"expected a DecompositionRequest, got {type(request).__name__}"
            )
        request.validate_against(self.registry)

    def _scheduler_for(self, request: DecompositionRequest):
        return scheduler_for_request(request, cache_provider=self._provide_cache)
