"""The immutable decomposition request: one circuit, fully specified.

A :class:`DecompositionRequest` is the typed replacement for the legacy
``decompose_circuit(aig, operator, engines, circuit_timeout=..., jobs=...,
dedup=..., seed=..., cache_dir=..., ...)`` kwarg sprawl.  Everything is
validated at construction — the operator, every engine name (against the
:mod:`engine registry <repro.api.registry>`), the budgets, the scheduler
knobs — so a malformed request fails with a one-line
:class:`repro.errors.ReproError` before any search starts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.aig.aig import AIG
from repro.api.config import Budgets, CachePolicy, Parallelism
from repro.api.registry import EngineRegistry, default_registry
from repro.core import qbf_bidec
from repro.core.spec import EXTRACT_QUANTIFICATION, check_operator
from repro.errors import DecompositionError


@dataclass(frozen=True)
class DecompositionRequest:
    """Everything needed to decompose one circuit's primary outputs.

    Attributes
    ----------
    circuit:
        The :class:`repro.aig.aig.AIG` to decompose (sequential circuits
        are made combinational by the driver, the ABC ``comb`` step).
    operator:
        Gate operator ``"or"`` / ``"and"`` / ``"xor"`` (normalised to
        lower case).
    engines:
        Engine names, validated against the registry at construction.
    budgets / parallelism / cache:
        The three config objects (see :mod:`repro.api.config`).
    name:
        Report circuit name; defaults to ``circuit.name``.
    priority:
        Weight of this request in a suite's fair scheduling (must be > 0;
        default 1.0).  A request of priority 2 is charged half as much
        virtual time per dispatched cone as a priority-1 request, so its
        jobs reach the shared workers roughly twice as often.  Priorities
        shape *latency* (who gets workers first), never results.
    max_outputs:
        Decompose only the first N primary outputs (must be >= 1).
    extract / verify / extraction:
        Whether (and how) to extract ``fA``/``fB`` for found partitions,
        and whether to independently verify them.
    qbf_strategy / qbf_backend:
        QBF engine search strategy and solver backend.
    min_support / max_support:
        Support-size window outside which outputs are skipped.
    """

    circuit: AIG
    operator: str
    engines: Tuple[str, ...]
    budgets: Budgets = Budgets()
    parallelism: Parallelism = Parallelism()
    cache: CachePolicy = CachePolicy()
    name: Optional[str] = None
    priority: float = 1.0
    max_outputs: Optional[int] = None
    extract: bool = True
    verify: bool = False
    extraction: str = EXTRACT_QUANTIFICATION
    qbf_strategy: str = qbf_bidec.STRATEGY_AUTO
    qbf_backend: str = "specialised"
    min_support: int = 2
    max_support: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.circuit, AIG):
            raise DecompositionError(
                f"circuit must be an AIG (got {type(self.circuit).__name__})"
            )
        object.__setattr__(self, "operator", check_operator(self.operator))
        if isinstance(self.engines, str):
            raise DecompositionError(
                "engines must be a sequence of engine names, not a bare string"
            )
        engines = tuple(self.engines)
        if not engines:
            raise DecompositionError("a request needs at least one engine")
        object.__setattr__(
            self, "engines", default_registry().check_all(engines)
        )
        if self.max_outputs is not None and self.max_outputs < 1:
            raise DecompositionError(
                f"max_outputs must be at least 1 (got {self.max_outputs!r})"
            )
        if not (
            isinstance(self.priority, (int, float))
            and not isinstance(self.priority, bool)
            and math.isfinite(self.priority)
            and self.priority > 0
        ):
            raise DecompositionError(
                f"priority must be a finite number > 0 (got {self.priority!r})"
            )
        if self.cache.directory is not None and not self.parallelism.dedup:
            raise DecompositionError(
                "a cache directory requires cone dedup (the persistent cache "
                "rides on the dedup cache); enable dedup or drop the directory"
            )
        if self.cache.cross_circuit_dedup and not self.parallelism.dedup:
            raise DecompositionError(
                "cross_circuit_dedup requires cone dedup (the suite-wide "
                "store rides on the dedup cache); enable dedup or drop the flag"
            )
        # Fail fast on extraction/strategy typos too: EngineOptions validates
        # them, so a malformed request never survives construction.
        self.to_options()

    @classmethod
    def from_options(
        cls,
        circuit: AIG,
        operator: str,
        engines: Sequence[str],
        options,
        *,
        circuit_timeout: Optional[float] = None,
        max_outputs: Optional[int] = None,
        name: Optional[str] = None,
        jobs: Optional[int] = None,
        dedup: Optional[bool] = None,
        cache_dir: Optional[str] = None,
    ) -> "DecompositionRequest":
        """Build a request from a legacy ``EngineOptions`` (shim support).

        ``jobs`` / ``dedup`` / ``cache_dir`` override the options' values,
        mirroring the overrides ``decompose_circuit`` accepted.  Two legacy
        quirks are preserved rather than rejected — the shim must not start
        raising where the old surface did not: a cache directory combined
        with ``dedup=False`` is dropped (the legacy surface silently
        persisted nothing), and negative timeouts are clamped to ``0``
        (legacy deadlines treated both as "already expired").
        """
        dedup_value = options.dedup if dedup is None else dedup
        directory = options.cache_dir if cache_dir is None else cache_dir
        if not dedup_value:
            directory = None

        def seconds(value: Optional[float]) -> Optional[float]:
            return None if value is None else max(0.0, value)

        return cls(
            circuit=circuit,
            operator=operator,
            engines=tuple(engines),
            budgets=Budgets(
                per_call=seconds(options.per_call_timeout),
                per_output=seconds(options.output_timeout),
                per_circuit=seconds(circuit_timeout),
            ),
            parallelism=Parallelism(
                jobs=options.jobs if jobs is None else jobs,
                dedup=dedup_value,
                seed=options.seed,
            ),
            cache=CachePolicy(directory=directory),
            name=name,
            max_outputs=max_outputs,
            extract=options.extract,
            verify=options.verify,
            extraction=options.extraction,
            qbf_strategy=options.qbf_strategy,
            qbf_backend=options.qbf_backend,
            min_support=options.min_support,
            max_support=options.max_support,
        )

    def validate_against(self, registry: EngineRegistry) -> None:
        """Re-check the engine set against a session-specific registry."""
        registry.check_all(self.engines)

    @property
    def circuit_name(self) -> str:
        return self.name or self.circuit.name

    def to_options(self):
        """The equivalent legacy :class:`repro.core.engine.EngineOptions`."""
        from repro.core.engine import EngineOptions

        return EngineOptions(
            per_call_timeout=self.budgets.per_call,
            output_timeout=self.budgets.per_output,
            extraction=self.extraction,
            extract=self.extract,
            verify=self.verify,
            qbf_strategy=self.qbf_strategy,
            qbf_backend=self.qbf_backend,
            min_support=self.min_support,
            max_support=self.max_support,
            jobs=self.parallelism.jobs,
            dedup=self.parallelism.dedup,
            seed=self.parallelism.seed,
            cache_dir=self.cache.directory,
        )

    def with_(self, **changes) -> "DecompositionRequest":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)
