"""``asyncio``-native sessions: ``await`` a decomposition, stream a suite.

:class:`AsyncSession` is the event-loop front door over the same execution
substrate the blocking :class:`repro.api.session.Session` uses — one
long-lived :class:`repro.core.scheduler.LiveSuiteScheduler` on one
executor backend — with the connection-oriented shape a server wants:

* requests **join a live stream** (:meth:`AsyncSession.submit` returns an
  :class:`AsyncRequestHandle` immediately; jobs start competing for the
  shared workers at once, fairly interleaved with every other in-flight
  request);
* completions are **awaited, not polled** — ``await handle.report()``,
  ``async for record in session.as_completed()``, ``async for event in
  handle.events()``;
* requests **cancel cooperatively** (:meth:`AsyncRequestHandle.cancel`)
  without perturbing anything else on the pool.

The request lifecycle is the explicit state machine of
:mod:`repro.api.lifecycle` (``queued → running → done/cancelled/failed``),
and reports are fingerprint-identical to the same request run through a
blocking session with the same backend, seed and cache settings.

Example::

    from repro.api import DecompositionRequest
    from repro.api.aio import AsyncSession

    async def main(suite):
        async with AsyncSession(jobs=4, backend="process") as session:
            handles = [session.submit(request) for request in suite]
            async for record in session.as_completed():
                print(record.circuit, record.output_name)
            reports = [await handle.report() for handle in handles]

The engines themselves stay synchronous — the event loop never blocks on
a partition search because every search runs on the executor backend
(threads or worker processes), and completions re-enter the loop through
``call_soon_threadsafe``.  This module is also exactly what
:mod:`repro.service` serves over a Unix socket.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Dict, List, Optional

from repro.api.lifecycle import (
    RequestTicket,
    TERMINAL_STATES,
    TicketCounter,
)
from repro.api.registry import EngineRegistry, default_registry
from repro.api.request import DecompositionRequest
from repro.api.session import shared_cache_provider, unit_for_request
from repro.core.result import CircuitReport, OutputResult
from repro.errors import DecompositionError


class AsyncRequestHandle:
    """One submitted request: state, events, cancellation, awaited report."""

    def __init__(self, session: "AsyncSession", ticket: RequestTicket, slot: int) -> None:
        self._session = session
        self.ticket = ticket
        self._slot = slot
        self._records: List[OutputResult] = []
        self._subscribers: List[asyncio.Queue] = []
        # Chronological log of everything published: late subscribers
        # replay it, so no event outruns an events() iterator that was
        # created after submission (jobs can finish fast).
        self._event_log: List[Dict[str, object]] = []
        self._report_future: asyncio.Future = session._loop.create_future()

    @property
    def id(self) -> int:
        return self.ticket.id

    @property
    def name(self) -> str:
        return self.ticket.name

    @property
    def state(self) -> str:
        return self.ticket.state

    @property
    def error(self) -> Optional[str]:
        return self.ticket.error

    @property
    def records(self) -> List[OutputResult]:
        """Per-output results delivered so far (completion order)."""
        return list(self._records)

    async def report(self) -> CircuitReport:
        """Await the request's :class:`CircuitReport`.

        Raises :class:`repro.errors.DecompositionError` when the request
        was cancelled or failed (the failure message is preserved).
        """
        return await asyncio.shield(self._report_future)

    def cancel(self) -> bool:
        """Cooperatively cancel; ``True`` if the request was cancellable."""
        return self._session._cancel_slot(self._slot)

    async def events(self) -> AsyncIterator[Dict[str, object]]:
        """Stream lifecycle events until the request is terminal.

        Yields ``{"type": "state", "id", "state"}`` on transitions and
        ``{"type": "record", "id", "output", "record"}`` per finished
        output.  Subscribing to an already-terminal request yields its
        terminal state once and stops.
        """
        # Let dispatch callbacks already scheduled on the loop land first:
        # a synchronously-completed request (serial backend) queues its
        # whole history via call_soon_threadsafe before anyone can await.
        await asyncio.sleep(0)
        queue: asyncio.Queue = asyncio.Queue()
        # Snapshot + register with no await in between (single loop
        # thread): backlog and queue partition the stream exactly.
        backlog = list(self._event_log)
        self._subscribers.append(queue)

        def _terminal(event: Dict[str, object]) -> bool:
            return (
                event.get("type") == "state"
                and event.get("state") in TERMINAL_STATES
            )

        try:
            for event in backlog:
                yield event
                if _terminal(event):
                    return
            if self.ticket.terminal and not any(map(_terminal, backlog)):
                # Terminal before any listener could log it (e.g. the
                # session closed): synthesise the final transition.
                yield {"type": "state", "id": self.id, "state": self.ticket.state}
                return
            while True:
                event = await queue.get()
                yield event
                if _terminal(event):
                    return
        finally:
            if queue in self._subscribers:
                self._subscribers.remove(queue)

    # -- loop-thread dispatch (called by AsyncSession only) ---------------------

    def _publish(self, event: Dict[str, object]) -> None:
        self._event_log.append(event)
        for queue in self._subscribers:
            queue.put_nowait(event)

    def _resolve(self) -> None:
        """Settle the report future from the ticket's terminal state."""
        if self._report_future.done():
            return
        if self.ticket.report is not None:
            self._report_future.set_result(self.ticket.report)
        else:
            detail = f": {self.ticket.error}" if self.ticket.error else ""
            self._report_future.set_exception(
                DecompositionError(
                    f"request {self.id} ({self.name}) {self.ticket.state}{detail}"
                )
            )
        # A handle whose report nobody awaits must not dump a traceback at
        # GC time; the state machine already records the failure.
        self._report_future.exception()


class AsyncSession:
    """An asyncio session: N concurrent requests, one warm executor.

    Parameters
    ----------
    registry:
        Engine registry requests validate against (default: process-wide).
    jobs:
        Worker count of the session's one executor backend.  Unlike the
        blocking session — which sizes a fresh pool per drained batch —
        an async session owns its substrate for its whole life, so the
        per-request ``Parallelism.jobs``/``backend`` fields are ignored
        here.
    backend:
        ``"serial"``, ``"thread"`` or ``"process"``
        (:mod:`repro.core.executors`).  ``thread`` is the default: it
        needs no pickling, accepts plug-in engines and is legal in every
        environment; pick ``process`` for CPU scaling.

    Must be used from a running event loop.  ``async with`` closes it
    deterministically (cancels pending work, shuts the executor down,
    flushes shared persistent-cache snapshots).
    """

    def __init__(
        self,
        registry: Optional[EngineRegistry] = None,
        jobs: int = 1,
        backend: str = "thread",
        metrics=None,
    ) -> None:
        from repro.core.scheduler import LiveSuiteScheduler

        self.registry = default_registry() if registry is None else registry
        try:
            self._loop = asyncio.get_running_loop()
        except RuntimeError:
            raise DecompositionError(
                "AsyncSession must be created inside a running event loop "
                "(e.g. within the coroutine asyncio.run() executes); for "
                "blocking code use repro.api.Session instead"
            ) from None
        self._counter = TicketCounter()
        self._handles: Dict[int, AsyncRequestHandle] = {}
        self._slot_of: Dict[int, int] = {}
        self._wakeups: List[asyncio.Event] = []
        # Shared persistent-cache instances (see shared_cache_provider).
        self._persistent_caches: Dict[str, object] = {}
        self._provide_cache = shared_cache_provider(self._persistent_caches)
        self._closed = False
        # ``metrics`` is a repro.obs MetricsRegistry (or None for the
        # process-wide one); the daemon passes its own so per-service
        # series stay isolated.
        self._live = LiveSuiteScheduler(
            jobs=jobs,
            backend=backend,
            on_record=self._on_record_threadsafe,
            cache_provider=self._provide_cache,
            metrics=metrics,
        )

    # -- lifecycle ----------------------------------------------------------------

    async def __aenter__(self) -> "AsyncSession":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def metrics(self):
        """The obs :class:`MetricsRegistry` the live scheduler reports to."""
        return self._live.metrics

    async def aclose(self) -> None:
        """Deterministic shutdown: cancel outstanding requests, shut the
        executor down (off-loop — it may wait on in-flight jobs), flush
        persistent-cache snapshots."""
        if self._closed:
            return
        self._closed = True
        await asyncio.get_running_loop().run_in_executor(None, self._live.close)
        for handle in self._handles.values():
            handle._resolve()
            handle._publish(
                {"type": "state", "id": handle.id, "state": handle.ticket.state}
            )
        for cache in self._persistent_caches.values():
            if cache.dirty:
                cache.save()
        self._wake_all()

    # -- submission ---------------------------------------------------------------

    def submit(self, request: DecompositionRequest) -> AsyncRequestHandle:
        """Enter one request into the live stream; returns its handle.

        Synchronous (no await): planning happens inline, then the
        request's jobs start competing for the shared workers.
        """
        if self._closed:
            raise DecompositionError("the async session is closed")
        if not isinstance(request, DecompositionRequest):
            raise DecompositionError(
                f"expected a DecompositionRequest, got {type(request).__name__}"
            )
        request.validate_against(self.registry)
        ticket = RequestTicket(self._counter.next(), request.circuit_name)
        ticket.add_listener(self._on_transition_threadsafe)
        unit = unit_for_request(request, cache_provider=self._provide_cache)
        # Register the handle BEFORE execution can start: submit may run
        # off-loop (the daemon offloads it), so dispatch callbacks can
        # land on the loop while add_request is still executing — they
        # must find the handle or records would be dropped.
        handle = AsyncRequestHandle(self, ticket, slot=-1)
        self._handles[ticket.id] = handle
        try:
            slot = self._live.add_request(unit, ticket)
        except Exception as exc:
            del self._handles[ticket.id]
            ticket.mark_failed(f"{type(exc).__name__}: {exc}")
            raise
        handle._slot = slot
        self._slot_of[ticket.id] = slot
        # The ticket may already be terminal (an all-followers request
        # completes inside add_request); settle the future now in case
        # the listener fired before the handle was registered.  Off-loop
        # callers must not touch the future directly.
        if ticket.terminal:
            self._loop.call_soon_threadsafe(handle._resolve)
        return handle

    async def run(self, request: DecompositionRequest) -> CircuitReport:
        """Submit one request and await its report."""
        return await self.submit(request).report()

    def cancel(self, ticket_id: int) -> bool:
        """Cancel by ticket id (see :meth:`AsyncRequestHandle.cancel`)."""
        slot = self._slot_of.get(ticket_id)
        return self._cancel_slot(slot) if slot is not None else False

    def _cancel_slot(self, slot: int) -> bool:
        return self._live.cancel(slot)

    def forget(self, ticket_id: int) -> None:
        """Drop a terminal request's handle and scheduler entry (a daemon
        serving an unbounded request stream must not grow per-request
        state forever)."""
        handle = self._handles.get(ticket_id)
        if handle is not None and handle.ticket.terminal:
            del self._handles[ticket_id]
            slot = self._slot_of.pop(ticket_id, None)
            if slot is not None:
                self._live.forget(slot)

    # -- observation --------------------------------------------------------------

    def handle(self, ticket_id: int) -> Optional[AsyncRequestHandle]:
        return self._handles.get(ticket_id)

    def status(self, ticket_id: Optional[int] = None):
        """Mirror of :meth:`repro.api.session.Session.status`."""
        if ticket_id is None:
            return {
                handle.id: handle.state for handle in self._handles.values()
            }
        handle = self._handles.get(ticket_id)
        if handle is None:
            raise DecompositionError(f"unknown request ticket id {ticket_id!r}")
        return handle.state

    def stats(self) -> Dict[str, int]:
        """Live counters: submitted/completed/cancelled/failed/records,
        plus ``pools_created`` (1 for the session's whole life — the
        many-clients-one-pool witness) and the substrate shape."""
        counters = dict(self._live.stats)
        counters["pools_created"] = self._live.pools_created
        counters["backend"] = self._live.backend
        counters["jobs"] = self._live.jobs
        return counters

    async def as_completed(self) -> AsyncIterator[OutputResult]:
        """Stream per-output results of every request submitted so far.

        Completes when those requests are all terminal and their records
        delivered.  Requests submitted *while* streaming are not joined —
        call again for them (their records are buffered per handle, so
        nothing is lost).  Single consumer at a time per handle set.
        """
        # Land dispatch callbacks already queued on the loop (synchronous
        # completions) before judging "everything delivered".
        await asyncio.sleep(0)
        handles = list(self._handles.values())
        delivered = {handle.id: 0 for handle in handles}
        wakeup = asyncio.Event()
        self._wakeups.append(wakeup)
        try:
            while True:
                for handle in handles:
                    records = handle._records
                    while delivered[handle.id] < len(records):
                        yield records[delivered[handle.id]]
                        delivered[handle.id] += 1
                if all(
                    handle.ticket.terminal
                    and delivered[handle.id] >= len(handle._records)
                    for handle in handles
                ):
                    return
                if self._closed:
                    return
                await wakeup.wait()
                wakeup.clear()
        finally:
            self._wakeups.remove(wakeup)

    # -- scheduler plumbing (executor threads -> event loop) ----------------------

    def _on_record_threadsafe(self, ticket: RequestTicket, record: OutputResult) -> None:
        self._loop.call_soon_threadsafe(self._dispatch_record, ticket, record)

    def _on_transition_threadsafe(
        self, ticket: RequestTicket, old_state: str, new_state: str
    ) -> None:
        self._loop.call_soon_threadsafe(self._dispatch_state, ticket, new_state)

    def _dispatch_record(self, ticket: RequestTicket, record: OutputResult) -> None:
        handle = self._handles.get(ticket.id)
        if handle is None:
            return
        handle._records.append(record)
        handle._publish(
            {
                "type": "record",
                "id": handle.id,
                "output": record.output_name,
                "record": record,
            }
        )
        self._wake_all()

    def _dispatch_state(self, ticket: RequestTicket, state: str) -> None:
        handle = self._handles.get(ticket.id)
        if handle is None:
            return
        if state in TERMINAL_STATES:
            handle._resolve()
        handle._publish({"type": "state", "id": handle.id, "state": state})
        self._wake_all()

    def _wake_all(self) -> None:
        for wakeup in self._wakeups:
            wakeup.set()
