"""repro.api — the canonical service-layer entry point.

The session API replaces the kwarg-accumulating ``BiDecomposer`` surface
with three layers:

* **typed requests** — :class:`DecompositionRequest` with
  :class:`Budgets` / :class:`Parallelism` / :class:`CachePolicy` config
  objects, fully validated at construction;
* **an engine registry** — :class:`EngineRegistry` /
  :func:`default_registry`, where the six built-in engines are registered
  by name and third-party engines plug in via :class:`EngineSpec`;
* **a session facade** — :class:`Session` with ``run(request)`` for one
  circuit and ``submit(requests)`` / ``as_completed()`` for whole suites
  sharded across one shared worker pool;
* **an async facade** — :class:`AsyncSession`
  (:mod:`repro.api.aio`): ``await session.run(request)``, live fair
  scheduling across concurrent requests, per-request cancellation and
  progress events — the layer :mod:`repro.service` puts on a socket;
* **an explicit request lifecycle** — every submitted request moves
  through the :mod:`repro.api.lifecycle` state machine (``queued →
  running → done/cancelled/failed``), surfaced by ``Session.status()``,
  async handles and the wire protocol alike.

See ``docs/api.md`` for the model and the old-kwarg → new-field migration
table, and ``docs/service.md`` for the daemon.
"""

from repro.api.aio import AsyncRequestHandle, AsyncSession
from repro.api.config import Budgets, CachePolicy, Parallelism
from repro.api.lifecycle import (
    REQUEST_STATES,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    TERMINAL_STATES,
    RequestTicket,
)
from repro.api.registry import (
    EngineRegistry,
    EngineSpec,
    default_registry,
)
from repro.api.request import DecompositionRequest
from repro.api.session import Session

__all__ = [
    "Budgets",
    "CachePolicy",
    "Parallelism",
    "EngineRegistry",
    "EngineSpec",
    "default_registry",
    "DecompositionRequest",
    "Session",
    "AsyncSession",
    "AsyncRequestHandle",
    "RequestTicket",
    "REQUEST_STATES",
    "TERMINAL_STATES",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "STATE_DONE",
    "STATE_CANCELLED",
    "STATE_FAILED",
]
