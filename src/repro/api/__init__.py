"""repro.api — the canonical service-layer entry point.

The session API replaces the kwarg-accumulating ``BiDecomposer`` surface
with three layers:

* **typed requests** — :class:`DecompositionRequest` with
  :class:`Budgets` / :class:`Parallelism` / :class:`CachePolicy` config
  objects, fully validated at construction;
* **an engine registry** — :class:`EngineRegistry` /
  :func:`default_registry`, where the six built-in engines are registered
  by name and third-party engines plug in via :class:`EngineSpec`;
* **a session facade** — :class:`Session` with ``run(request)`` for one
  circuit and ``submit(requests)`` / ``as_completed()`` for whole suites
  sharded across one shared worker pool.

See ``docs/api.md`` for the model and the old-kwarg → new-field migration
table.
"""

from repro.api.config import Budgets, CachePolicy, Parallelism
from repro.api.registry import (
    EngineRegistry,
    EngineSpec,
    default_registry,
)
from repro.api.request import DecompositionRequest
from repro.api.session import Session

__all__ = [
    "Budgets",
    "CachePolicy",
    "Parallelism",
    "EngineRegistry",
    "EngineSpec",
    "default_registry",
    "DecompositionRequest",
    "Session",
]
