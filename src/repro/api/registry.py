"""The engine registry: built-in engines by name, third-party engines by plug-in.

The six engines the paper compares used to live as a hardcoded constant
table in :mod:`repro.core.engine`; the registry makes the engine set an
extensible namespace instead.  Engine names are validated against it at
*request construction* (:class:`repro.api.request.DecompositionRequest`) and
at every legacy entry point (:func:`repro.core.spec.check_engine` delegates
here), so an unknown name fails with one line naming the known engines
instead of surfacing mid-decomposition.

Third-party engines register a :class:`EngineSpec` carrying a ``runner``
callable::

    def my_engine(function, operator, *, options, deadline):
        ...  # return a repro.core.result.BiDecResult

    default_registry().register(EngineSpec("MY-ENGINE", runner=my_engine,
                                           description="..."))

The runner receives the output cone as a
:class:`repro.aig.function.BooleanFunction`, the validated gate operator,
the active :class:`repro.core.engine.EngineOptions` and the per-output
:class:`repro.utils.timer.Deadline`, and returns a
:class:`repro.core.result.BiDecResult`; sub-function extraction and
verification are applied by the driver afterwards, exactly as for the
built-ins.  Plug-in runners reach pool workers by ``fork`` inheritance —
on spawn-only platforms run plug-in engines with ``jobs=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.spec import (
    ENGINE_BDD,
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QB,
    ENGINE_STEP_QD,
    ENGINE_STEP_QDB,
)
from repro.errors import DecompositionError

# runner(function, operator, *, options, deadline) -> BiDecResult
EngineRunner = Callable[..., object]


@dataclass(frozen=True)
class EngineSpec:
    """One named engine: a built-in (``runner is None``) or a plug-in."""

    name: str
    runner: Optional[EngineRunner] = field(default=None, compare=False)
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise DecompositionError(f"engine name must be a non-empty string (got {self.name!r})")

    @property
    def builtin(self) -> bool:
        return self.runner is None


class EngineRegistry:
    """Mutable name → :class:`EngineSpec` mapping with one-line validation."""

    def __init__(self, specs: Iterable[EngineSpec] = ()) -> None:
        self._specs: Dict[str, EngineSpec] = {}
        for spec in specs:
            self.register(spec)

    # -- registration -------------------------------------------------------------

    def register(self, spec: EngineSpec) -> EngineSpec:
        """Add an engine; rejects duplicates (built-ins can never be shadowed)."""
        if not isinstance(spec, EngineSpec):
            raise DecompositionError(
                f"expected an EngineSpec, got {type(spec).__name__}"
            )
        existing = self._specs.get(spec.name)
        if existing is not None:
            if existing.builtin:
                raise DecompositionError(
                    f"engine {spec.name!r} is a built-in and cannot be replaced"
                )
            raise DecompositionError(
                f"engine {spec.name!r} is already registered; unregister it first"
            )
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> None:
        """Remove a plug-in engine; built-ins cannot be removed."""
        spec = self._specs.get(name)
        if spec is None:
            raise DecompositionError(f"engine {name!r} is not registered")
        if spec.builtin:
            raise DecompositionError(f"built-in engine {name!r} cannot be unregistered")
        del self._specs[name]

    # -- lookup -------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> Tuple[str, ...]:
        """All known engine names, sorted."""
        return tuple(sorted(self._specs))

    def get(self, name: str) -> EngineSpec:
        return self._specs[self.check(name)]

    def check(self, name: str) -> str:
        """Validate an engine name; one-line error naming the known engines."""
        if name not in self._specs:
            raise DecompositionError(
                f"unknown engine {name!r}; known engines: {', '.join(self.names())}"
            )
        return name

    def check_all(self, names: Iterable[str]) -> Tuple[str, ...]:
        return tuple(self.check(name) for name in names)


def _builtin_specs() -> List[EngineSpec]:
    return [
        EngineSpec(ENGINE_LJH, description="seed pair + greedy growth (Lee-Jiang DAC'08)"),
        EngineSpec(ENGINE_STEP_MG, description="group-MUS over equality constraints (VLSI-SoC'11)"),
        EngineSpec(ENGINE_STEP_QD, description="QBF, optimum disjointness (this paper)"),
        EngineSpec(ENGINE_STEP_QB, description="QBF, optimum balancedness (this paper)"),
        EngineSpec(ENGINE_STEP_QDB, description="QBF, optimum disjointness + balancedness (this paper)"),
        EngineSpec(ENGINE_BDD, description="quantification-based greedy growth (related work)"),
    ]


_DEFAULT_REGISTRY = EngineRegistry(_builtin_specs())


def default_registry() -> EngineRegistry:
    """The process-wide registry every validation path consults by default."""
    return _DEFAULT_REGISTRY
