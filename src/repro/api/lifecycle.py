"""The request lifecycle state machine.

Every submitted :class:`repro.api.request.DecompositionRequest` moves
through one explicit state machine, surfaced uniformly by the blocking
:class:`repro.api.session.Session`, the asyncio
:class:`repro.api.aio.AsyncSession` and the service wire protocol
(:mod:`repro.service.protocol`)::

    queued ──> running ──> done
       │          ├─────> failed
       └──────────┴─────> cancelled

``done``, ``cancelled`` and ``failed`` are terminal.  A request is
``queued`` from submission until its first job starts, ``running`` while
any of its jobs execute, ``done`` once its :class:`CircuitReport` is
assembled, ``cancelled`` after a cooperative cancel (queued jobs are
dropped; in-flight jobs finish but their results are discarded) and
``failed`` when a job raised — the error is preserved on the ticket, and
one request's failure never takes down the session or the daemon.

:class:`RequestTicket` is the shared, thread-safe carrier of that state:
the schedulers advance it, listeners (the async session's event queues,
the daemon's per-connection pumps) observe every transition.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, List, Optional, Tuple

from repro.errors import DecompositionError
from repro.obs.registry import default_registry
from repro.obs.spans import PHASE_DISPATCHED, PHASE_SOLVED, RequestSpan

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_CANCELLED = "cancelled"
STATE_FAILED = "failed"

#: Every request state, in lifecycle order.
REQUEST_STATES = (
    STATE_QUEUED,
    STATE_RUNNING,
    STATE_DONE,
    STATE_CANCELLED,
    STATE_FAILED,
)

#: States a request can never leave.
TERMINAL_STATES = frozenset({STATE_DONE, STATE_CANCELLED, STATE_FAILED})

_TRANSITIONS = {
    STATE_QUEUED: frozenset({STATE_RUNNING, STATE_CANCELLED, STATE_FAILED}),
    STATE_RUNNING: frozenset({STATE_DONE, STATE_CANCELLED, STATE_FAILED}),
    STATE_DONE: frozenset(),
    STATE_CANCELLED: frozenset(),
    STATE_FAILED: frozenset(),
}

# Listener signature: (ticket, old_state, new_state).  Fired synchronously
# inside advance(), possibly from an executor's completion thread — keep
# listeners non-blocking (the async session only posts to an event loop).
TicketListener = Callable[["RequestTicket", str, str], None]

#: Lifecycle transition counter, by the state being entered.  Pure
#: observability: lives in the process-wide obs registry, never in
#: report data.
_REQUESTS_TOTAL = default_registry().counter(
    "repro_requests_total", "request lifecycle transitions, by entered state"
)


class RequestTicket:
    """One request's identity and live state, shared across threads.

    Attributes
    ----------
    id:
        Session-unique integer, assigned at submission; the wire
        protocol's request id.
    name:
        The request's circuit name (for humans; ids are the handle).
    state:
        Current lifecycle state (one of :data:`REQUEST_STATES`).
    report:
        The :class:`repro.core.result.CircuitReport`, set just before the
        ticket advances to ``done``.
    error:
        One-line failure description, set just before ``failed``.
    """

    def __init__(self, ticket_id: int, name: str) -> None:
        self.id = ticket_id
        self.name = name
        self.report = None
        self.error: Optional[str] = None
        self._state = STATE_QUEUED
        self._lock = threading.Lock()
        self._listeners: List[TicketListener] = []
        # The request's lifecycle span: "queued" is marked here;
        # "dispatched"/"solved" are marked by advance(); the serving
        # surface (the daemon) marks "replied" and folds the span into
        # its metrics registry.  Timing never enters report data.
        self.span = RequestSpan()

    @property
    def state(self) -> str:
        return self._state

    @property
    def terminal(self) -> bool:
        return self._state in TERMINAL_STATES

    def add_listener(self, listener: TicketListener) -> None:
        """Observe every subsequent transition (called under the ticket
        lock; must not block)."""
        with self._lock:
            self._listeners.append(listener)

    def advance(
        self,
        new_state: str,
        report=None,
        error: Optional[str] = None,
    ) -> bool:
        """Move to ``new_state``, returning whether a transition happened.

        Illegal transitions out of a terminal state return ``False``
        instead of raising — the schedulers race completions against
        cancellations, and "already terminal, drop the late event" is the
        correct resolution of every such race.  A transition that is
        neither legal nor a late-event no-op (e.g. ``done`` straight from
        ``queued``) raises: that is a scheduler bug, not a race.
        """
        with self._lock:
            old_state = self._state
            if new_state == old_state:
                return False
            if new_state not in _TRANSITIONS[old_state]:
                if old_state in TERMINAL_STATES:
                    return False
                raise DecompositionError(
                    f"illegal request-state transition {old_state!r} -> "
                    f"{new_state!r} (request {self.id})"
                )
            if report is not None:
                self.report = report
            if error is not None:
                self.error = error
            self._state = new_state
            listeners = list(self._listeners)
        # Span marks and counters BEFORE listeners: a listener may flush
        # the result to a client, which marks the later "replied" phase.
        if new_state == STATE_RUNNING:
            self.span.mark(PHASE_DISPATCHED)
        elif new_state in TERMINAL_STATES:
            self.span.mark(PHASE_SOLVED)
        _REQUESTS_TOTAL.inc(state=new_state)
        for listener in listeners:
            listener(self, old_state, new_state)
        return True

    # Intent helpers: the core schedulers drive tickets through these, so
    # they never need to import this module's state names (core stays free
    # of api imports; the ticket object is passed in, duck-typed).

    def mark_running(self) -> bool:
        return self.advance(STATE_RUNNING)

    def mark_done(self, report) -> bool:
        return self.advance(STATE_DONE, report=report)

    def mark_cancelled(self) -> bool:
        return self.advance(STATE_CANCELLED)

    def mark_failed(self, error: str) -> bool:
        return self.advance(STATE_FAILED, error=error)

    def snapshot(self) -> Tuple[int, str, str]:
        """``(id, name, state)`` — the status triple every surface reports."""
        return (self.id, self.name, self._state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RequestTicket(id={self.id}, name={self.name!r}, state={self._state!r})"


class TicketCounter:
    """Thread-safe monotonic ticket-id source (one per session/service)."""

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            return next(self._counter)
