"""Typed configuration objects for the session API.

:class:`repro.api.request.DecompositionRequest` replaces the kwarg sprawl of
the legacy ``BiDecomposer``/``EngineOptions`` surface (``jobs``, ``dedup``,
``seed``, ``cache_dir``, three separately named timeouts, ...) with three
small immutable config objects, each validated at construction:

* :class:`Budgets` — the paper's three nested wall-clock budgets (per QBF
  call, per primary output, per circuit);
* :class:`Parallelism` — scheduler knobs (worker processes, structural cone
  dedup, the run seed job seeds derive from);
* :class:`CachePolicy` — the persistent (cross-run) cone cache.

Validation errors are one-line :class:`repro.errors.ReproError`\\ s raised at
construction, never mid-decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import DecompositionError


def _check_non_negative(value: Optional[float], name: str) -> None:
    if value is not None and value < 0:
        raise DecompositionError(f"{name} must be >= 0 (got {value!r})")


@dataclass(frozen=True)
class Budgets:
    """Nested wall-clock budgets, mirroring the paper's experimental setup.

    Attributes
    ----------
    per_call:
        Seconds per QBF solver call (the paper's 4 s knob); ``None`` for no
        limit.
    per_output:
        Seconds per primary output; every engine run on the output shares
        it.  ``None`` for no limit.
    per_circuit:
        Seconds for the whole circuit (the paper's 6000 s knob).  Outputs
        past the deadline are skipped and named in
        ``CircuitReport.schedule["skipped"]``.

    ``0`` is legal for all three — it budgets nothing, so the guarded work
    times out immediately — because the deadline machinery treats "already
    expired" as a first-class state (and the legacy surface always accepted
    it); negative values are rejected.  The CLI is stricter and refuses
    ``--qbf-timeout 0`` / ``--output-timeout 0`` outright.
    """

    per_call: Optional[float] = 4.0
    per_output: Optional[float] = 60.0
    per_circuit: Optional[float] = None

    def __post_init__(self) -> None:
        _check_non_negative(self.per_call, "per_call budget")
        _check_non_negative(self.per_output, "per_output budget")
        _check_non_negative(self.per_circuit, "per_circuit budget")


@dataclass(frozen=True)
class Parallelism:
    """Batch-scheduler knobs (see :mod:`repro.core.scheduler`).

    Attributes
    ----------
    jobs:
        Workers per run; ``1`` keeps everything in-process.  For a suite
        submitted through :meth:`repro.api.session.Session.submit` the
        shared executor is sized to the largest ``jobs`` value among the
        requests.
    dedup:
        Memoise structurally identical output cones (one partition search,
        replayed for the duplicates).
    seed:
        Run seed from which each job's deterministic seed is derived; the
        current engines are deterministic, so results do not depend on it.
    backend:
        Execution substrate for ``jobs > 1`` — ``"serial"`` (inline,
        deterministic reference), ``"thread"``
        (:class:`~concurrent.futures.ThreadPoolExecutor`: no pickling,
        legal under daemonic parents) or ``"process"`` (the
        ``multiprocessing`` pool; true CPU parallelism).  See
        :mod:`repro.core.executors`.  All three produce
        fingerprint-identical reports.  A suite runs on the strongest
        backend any of its requests asked for.
    """

    jobs: int = 1
    dedup: bool = True
    seed: int = 0
    backend: str = "process"

    def __post_init__(self) -> None:
        if not isinstance(self.jobs, int) or self.jobs < 1:
            raise DecompositionError(f"jobs must be at least 1 (got {self.jobs!r})")
        # Imported at call time to keep this module free of module-level
        # api -> core imports (import-order hygiene, not a cost saving: by
        # the time a Parallelism is constructed the core stack is loaded
        # anyway — repro.api.request pulls it in at import).
        from repro.core.executors import check_backend

        check_backend(self.backend)


@dataclass(frozen=True)
class CachePolicy:
    """Cone cache configuration beyond the in-run dedup default.

    Attributes
    ----------
    directory:
        Directory for the ``cone_cache.json`` snapshot; ``None`` keeps the
        cone cache in-memory only.  The snapshot rides on the dedup cache,
        so a request combining a cache directory with ``dedup=False`` is
        rejected at construction.
    cross_circuit_dedup:
        Opt this request into the **suite-wide** cone store when it runs
        inside a :meth:`repro.api.session.Session.submit` batch: a cone
        solved in another opted-in request with the same search context
        (operator, engine set, search options) replays for this request's
        structural twins, reported in ``schedule["cross_circuit_hits"]``.
        Off by default because a cross-circuit replay of a fanin-permuted
        twin can pick a different (equally valid) partition than a solo
        search would, so only opted-in suite reports may diverge from solo
        fingerprints.  Requires ``dedup``; a no-op outside suites.
    max_entries:
        Compaction bound for the persistent snapshot: at save time the
        ``cone_cache.json`` is evicted down to this many entries,
        least-recently-hit first, so a long-lived daemon's cache stops
        growing without bound.  Requires ``directory``; ``None`` (the
        default) keeps the snapshot unbounded.
    """

    directory: Optional[str] = None
    cross_circuit_dedup: bool = False
    max_entries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_entries is not None:
            if not isinstance(self.max_entries, int) or self.max_entries < 1:
                raise DecompositionError(
                    f"max_entries must be a positive integer (got {self.max_entries!r})"
                )
            if self.directory is None:
                raise DecompositionError(
                    "max_entries bounds the persistent snapshot; it needs a "
                    "cache directory to bound"
                )
