"""repro — QBF-based Boolean function bi-decomposition (DATE 2012).

A from-scratch Python reproduction of *QBF-Based Boolean Function
Bi-Decomposition* (Chen, Janota, Marques-Silva), including the STEP tool
(QBF engines STEP-QD / STEP-QB / STEP-QDB), the baselines it is compared
against (LJH / Bi-dec, STEP-MG) and every substrate the original tool takes
from ABC, MiniSAT, MUSer and AReQS: an AIG circuit package with BLIF/BENCH
I/O, a CDCL SAT solver with proof logging and interpolation, MUS extraction,
cardinality encodings, a 2QBF CEGAR solver and a small BDD package.

Quick start (the session API — see ``docs/api.md``)::

    from repro import DecompositionRequest, ENGINE_STEP_QD, Session
    from repro.circuits import ripple_carry_adder

    request = DecompositionRequest(
        circuit=ripple_carry_adder(4), operator="or",
        engines=(ENGINE_STEP_QD,),
    )
    report = Session().run(request)
    for output in report.outputs:
        print(output.results[ENGINE_STEP_QD].summary())
"""

from repro.aig import AIG, BooleanFunction
from repro.api import (
    AsyncSession,
    Budgets,
    CachePolicy,
    DecompositionRequest,
    EngineRegistry,
    EngineSpec,
    Parallelism,
    REQUEST_STATES,
    RequestTicket,
    Session,
    default_registry,
)
from repro.service import ServiceClient
from repro.core import (
    BiDecomposer,
    BiDecResult,
    CircuitReport,
    EngineOptions,
    OutputResult,
    VariablePartition,
    verify_decomposition,
)
from repro.core.engine import QBF_ENGINES
from repro.core.spec import (
    ENGINE_BDD,
    ENGINE_LJH,
    ENGINE_STEP_MG,
    ENGINE_STEP_QB,
    ENGINE_STEP_QD,
    ENGINE_STEP_QDB,
    ENGINES,
    OPERATORS,
)
from repro.errors import ReproError

__version__ = "1.1.0"

__all__ = [
    "AIG",
    "BooleanFunction",
    # session API (canonical entry point)
    "Session",
    "AsyncSession",
    "ServiceClient",
    "RequestTicket",
    "REQUEST_STATES",
    "DecompositionRequest",
    "Budgets",
    "Parallelism",
    "CachePolicy",
    "EngineRegistry",
    "EngineSpec",
    "default_registry",
    # engine-name constants (import these, not repro.core.engine/spec)
    "ENGINE_LJH",
    "ENGINE_STEP_MG",
    "ENGINE_STEP_QD",
    "ENGINE_STEP_QB",
    "ENGINE_STEP_QDB",
    "ENGINE_BDD",
    "ENGINES",
    "QBF_ENGINES",
    "OPERATORS",
    # legacy surface (shims over the session API)
    "BiDecomposer",
    "BiDecResult",
    "CircuitReport",
    "EngineOptions",
    "OutputResult",
    "VariablePartition",
    "verify_decomposition",
    "ReproError",
    "__version__",
]
