"""repro — QBF-based Boolean function bi-decomposition (DATE 2012).

A from-scratch Python reproduction of *QBF-Based Boolean Function
Bi-Decomposition* (Chen, Janota, Marques-Silva), including the STEP tool
(QBF engines STEP-QD / STEP-QB / STEP-QDB), the baselines it is compared
against (LJH / Bi-dec, STEP-MG) and every substrate the original tool takes
from ABC, MiniSAT, MUSer and AReQS: an AIG circuit package with BLIF/BENCH
I/O, a CDCL SAT solver with proof logging and interpolation, MUS extraction,
cardinality encodings, a 2QBF CEGAR solver and a small BDD package.

Quick start::

    from repro import BiDecomposer, BooleanFunction
    from repro.circuits import ripple_carry_adder

    circuit = ripple_carry_adder(4)
    step = BiDecomposer()
    result = step.decompose_function(
        BooleanFunction.from_output(circuit, "cout"), "or", engine="STEP-QD"
    )
    print(result.summary())
"""

from repro.aig import AIG, BooleanFunction
from repro.core import (
    BiDecomposer,
    BiDecResult,
    CircuitReport,
    EngineOptions,
    OutputResult,
    VariablePartition,
    verify_decomposition,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "AIG",
    "BooleanFunction",
    "BiDecomposer",
    "BiDecResult",
    "CircuitReport",
    "EngineOptions",
    "OutputResult",
    "VariablePartition",
    "verify_decomposition",
    "ReproError",
    "__version__",
]
