"""Request-lifecycle spans: queued → dispatched → solved → replied.

A :class:`RequestSpan` is a tiny bag of monotonic phase marks attached to
every :class:`repro.api.lifecycle.RequestTicket` at creation:

* ``queued`` — the ticket exists (submission);
* ``dispatched`` — the first job reached the executor (the ticket's
  ``queued → running`` transition);
* ``solved`` — the ticket went terminal (``done``/``cancelled``/
  ``failed``);
* ``replied`` — the serving surface flushed the result to the client
  (marked by the daemon after the ``result`` frame drains; local
  sessions stop at ``solved``).

Phase marks are first-write-wins and every read routes through
:func:`repro.utils.timer.monotonic` — span timestamps are pure
observability and never reach fingerprinted report data.

:meth:`RequestSpan.finish` folds the phase durations into a registry's
histograms (:data:`SPAN_HISTOGRAMS`), labelled by client so the daemon's
stats frame can report per-client *and* aggregate latency percentiles.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.obs.registry import MetricsRegistry
from repro.utils.timer import monotonic

PHASE_QUEUED = "queued"
PHASE_DISPATCHED = "dispatched"
PHASE_SOLVED = "solved"
PHASE_REPLIED = "replied"

#: Lifecycle phases in order.
PHASES = (PHASE_QUEUED, PHASE_DISPATCHED, PHASE_SOLVED, PHASE_REPLIED)

#: histogram name -> (phase interval start, phase interval end).
SPAN_HISTOGRAMS = {
    "repro_request_queue_wait_seconds": (PHASE_QUEUED, PHASE_DISPATCHED),
    "repro_request_run_seconds": (PHASE_DISPATCHED, PHASE_SOLVED),
    "repro_request_reply_seconds": (PHASE_SOLVED, PHASE_REPLIED),
    "repro_request_latency_seconds": (PHASE_QUEUED, PHASE_REPLIED),
}

_HELP = {
    "repro_request_queue_wait_seconds": "submission to first job dispatch",
    "repro_request_run_seconds": "first dispatch to terminal state",
    "repro_request_reply_seconds": "terminal state to result frame flushed",
    "repro_request_latency_seconds": "submission to result frame flushed",
}


class RequestSpan:
    """Phase marks for one request; thread-safe, first-write-wins."""

    __slots__ = ("_marks", "_lock", "_finished")

    def __init__(self) -> None:
        self._marks: Dict[str, float] = {PHASE_QUEUED: monotonic()}
        self._lock = threading.Lock()
        self._finished = False

    def mark(self, phase: str) -> None:
        """Record ``phase`` at now, unless it was already marked."""
        if phase not in PHASES:
            return
        with self._lock:
            self._marks.setdefault(phase, monotonic())

    def marked(self, phase: str) -> bool:
        with self._lock:
            return phase in self._marks

    def duration(self, start: str, end: str) -> Optional[float]:
        """Seconds between two marked phases (``None`` if either is unset
        or the interval is inverted by a racing late mark)."""
        with self._lock:
            begin = self._marks.get(start)
            finish = self._marks.get(end)
        if begin is None or finish is None or finish < begin:
            return None
        return finish - begin

    def finish(self, registry: MetricsRegistry, client: str = "") -> bool:
        """Observe every complete phase interval into ``registry``, once.

        A missing ``replied`` mark is filled in at now (covering surfaces
        that never flush a frame); repeated calls are no-ops so a span
        can be finished defensively from racing paths.  Each histogram
        gains two observations: the aggregate (unlabelled) series and the
        per-client one when ``client`` is non-empty.
        """
        with self._lock:
            if self._finished:
                return False
            self._finished = True
            self._marks.setdefault(PHASE_REPLIED, monotonic())
        for name in sorted(SPAN_HISTOGRAMS):
            start, end = SPAN_HISTOGRAMS[name]
            elapsed = self.duration(start, end)
            if elapsed is None:
                continue
            histogram = registry.histogram(name, _HELP[name])
            histogram.observe(elapsed)
            if client:
                histogram.observe(elapsed, client=client)
        return True
