"""The process-wide metrics registry: counters, gauges, histograms.

Three metric kinds, all thread-safe and all with optional labels:

* **counters** — monotonic totals (``repro_requests_total``);
* **gauges** — set/add instantaneous values (``repro_connections_open``);
* **histograms** — fixed-bucket latency distributions with
  **deterministic bucket bounds** (:data:`LATENCY_BUCKETS`), so two
  processes — or two shards behind one router — always bucket the same
  observation identically and their snapshots merge bucket-for-bucket
  (:func:`merge_snapshots`).

Everything here is *observability only*: nothing in a snapshot ever flows
into a :class:`repro.core.result.CircuitReport` or its fingerprint, and
every clock read feeding an observation routes through
:func:`repro.utils.timer.monotonic` (the ``DET-WALLCLOCK`` lint rule
holds for ``obs/`` like everywhere else).

:func:`default_registry` is the process-wide instance the substrate
layers (solver, scheduler, lifecycle) instrument unconditionally; a
:class:`repro.service.daemon.ReproService` additionally keeps a private
registry for per-daemon series (request spans, per-client gauges) so two
embedded daemons in one process never mix client series.

Snapshots are plain JSON-safe dicts with **sorted keys at every level**
— they travel inside the versioned ``stats`` wire frame, and a stats
frame must be byte-stable for a given counter state.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Stats-frame schema version of a snapshot (the ``"version"`` key).
SNAPSHOT_VERSION = 1

#: Deterministic default bucket bounds (seconds) for latency histograms.
#: Chosen once, shared by every process: merging snapshots across shards
#: requires bucket-for-bucket identity, so these are part of the schema.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: The quantiles every histogram series reports in snapshots.
QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
)


def _label_key(labels: Mapping[str, object]) -> str:
    """Canonical series key: ``k=v`` pairs sorted by label name."""
    if not labels:
        return ""
    return ",".join(f"{key}={labels[key]}" for key in sorted(labels))


def _check_name(name: str) -> str:
    if not name or not all(ch.isalnum() or ch == "_" for ch in name):
        raise ReproError(
            f"invalid metric name {name!r}: use [a-zA-Z0-9_] only"
        )
    return name


class Counter:
    """A monotonic counter family; label combinations are its series."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help_text
        self._lock = lock
        self._values: Dict[str, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ReproError(
                f"counter {self.name} is monotonic; cannot add {amount!r}"
            )
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0)

    def _snapshot(self) -> Dict[str, object]:
        return {
            "help": self.help,
            "values": {key: self._values[key] for key in sorted(self._values)},
        }


class Gauge:
    """An instantaneous value family (``set``/``add``)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help_text
        self._lock = lock
        self._values: Dict[str, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[_label_key(labels)] = value

    def add(self, delta: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + delta

    def remove(self, **labels: object) -> None:
        """Drop a series (e.g. a disconnected client's in-flight gauge)."""
        with self._lock:
            self._values.pop(_label_key(labels), None)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0)

    def _snapshot(self) -> Dict[str, object]:
        return {
            "help": self.help,
            "values": {key: self._values[key] for key in sorted(self._values)},
        }


class _HistogramSeries:
    __slots__ = ("counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        # counts[i] = observations <= bounds[i]; counts[-1] = overflow.
        self.counts = [0] * (n_buckets + 1)
        self.total = 0.0
        self.count = 0


def quantile_from_counts(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> Optional[float]:
    """Estimate the ``q``-quantile from per-bucket counts.

    Linear interpolation inside the winning bucket (the classic
    Prometheus ``histogram_quantile`` estimate); observations past the
    last bound clamp to it.  ``None`` when the series is empty.
    """
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    seen = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if seen + bucket_count >= rank:
            if index >= len(bounds):
                return bounds[-1] if bounds else None
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (rank - seen) / bucket_count
            return lower + (upper - lower) * fraction
        seen += bucket_count
    return bounds[-1] if bounds else None  # pragma: no cover - safety net


class Histogram:
    """A fixed-bucket histogram family with deterministic bounds."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(
            later <= earlier for earlier, later in zip(bounds, bounds[1:])
        ):
            raise ReproError(
                f"histogram {name} bucket bounds must be strictly "
                f"increasing and non-empty (got {list(buckets)!r})"
            )
        self.name = name
        self.help = help_text
        self.buckets = bounds
        self._lock = lock
        self._series: Dict[str, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            index = len(self.buckets)
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    index = position
                    break
            series.counts[index] += 1
            series.total += value
            series.count += 1

    def quantile(self, q: float, **labels: object) -> Optional[float]:
        with self._lock:
            series = self._series.get(_label_key(labels))
            if series is None:
                return None
            counts = list(series.counts)
        return quantile_from_counts(self.buckets, counts, q)

    def _snapshot(self) -> Dict[str, object]:
        series_out: Dict[str, object] = {}
        for key in sorted(self._series):
            series = self._series[key]
            entry: Dict[str, object] = {
                "count": series.count,
                "sum": series.total,
                "counts": list(series.counts),
            }
            for label, q in QUANTILES:
                entry[label] = quantile_from_counts(
                    self.buckets, series.counts, q
                )
            series_out[key] = entry
        return {
            "help": self.help,
            "buckets": list(self.buckets),
            "series": series_out,
        }


class MetricsRegistry:
    """A named collection of metric families, snapshot-able as one dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name, kind, factory):
        _check_name(name)
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif metric.kind != kind:
                raise ReproError(
                    f"metric {name!r} already registered as a {metric.kind}, "
                    f"not a {kind}"
                )
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(
            name, "counter", lambda: Counter(name, help_text, self._lock)
        )

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(
            name, "gauge", lambda: Gauge(name, help_text, self._lock)
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(
            name,
            "histogram",
            lambda: Histogram(name, help_text, self._lock, buckets=buckets),
        )
        if metric.buckets != tuple(float(bound) for bound in buckets):
            raise ReproError(
                f"histogram {name!r} already registered with buckets "
                f"{list(metric.buckets)!r}"
            )
        return metric

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe, deterministically ordered dump of every series."""
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        with self._lock:
            metrics = dict(self._metrics)
        for name in sorted(metrics):
            metric = metrics[name]
            with self._lock:
                entry = metric._snapshot()
            if metric.kind == "counter":
                counters[name] = entry
            elif metric.kind == "gauge":
                gauges[name] = entry
            else:
                histograms[name] = entry
        return {
            "version": SNAPSHOT_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def merge_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Roll snapshots from several registries (or shards) into one.

    Counters and gauges sum series-wise; histogram series with identical
    bucket bounds sum bucket-for-bucket (then re-derive their quantiles).
    A histogram whose bounds disagree with the first-seen ones is skipped
    rather than corrupted — bounds are deterministic and shared
    (:data:`LATENCY_BUCKETS`), so this only happens across incompatible
    code versions, and the merged snapshot records it under
    ``"merge_skipped"``.
    """
    merged: Dict[str, object] = {
        "version": SNAPSHOT_VERSION,
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    skipped: List[str] = []
    for snapshot in snapshots:
        if not isinstance(snapshot, dict):
            continue
        for section in ("counters", "gauges"):
            target: Dict[str, Dict] = merged[section]  # type: ignore[assignment]
            for name in sorted(snapshot.get(section, ())):
                entry = snapshot[section][name]
                out = target.setdefault(
                    name, {"help": entry.get("help", ""), "values": {}}
                )
                for key in sorted(entry.get("values", ())):
                    out["values"][key] = (
                        out["values"].get(key, 0) + entry["values"][key]
                    )
        target = merged["histograms"]  # type: ignore[assignment]
        for name in sorted(snapshot.get("histograms", ())):
            entry = snapshot["histograms"][name]
            bounds = list(entry.get("buckets", ()))
            out = target.setdefault(
                name,
                {"help": entry.get("help", ""), "buckets": bounds, "series": {}},
            )
            if out["buckets"] != bounds:
                skipped.append(name)
                continue
            for key in sorted(entry.get("series", ())):
                series = entry["series"][key]
                slot = out["series"].setdefault(
                    key,
                    {"count": 0, "sum": 0.0, "counts": [0] * len(series["counts"])},
                )
                if len(slot["counts"]) != len(series["counts"]):
                    skipped.append(name)
                    continue
                slot["count"] += series["count"]
                slot["sum"] += series["sum"]
                slot["counts"] = [
                    have + more
                    for have, more in zip(slot["counts"], series["counts"])
                ]
    for name in sorted(merged["histograms"]):  # type: ignore[arg-type]
        entry = merged["histograms"][name]  # type: ignore[index]
        for series in entry["series"].values():
            for label, q in QUANTILES:
                series[label] = quantile_from_counts(
                    entry["buckets"], series["counts"], q
                )
    if skipped:
        merged["merge_skipped"] = sorted(set(skipped))
    return merged


# -- the process-wide default registry ------------------------------------------

_DEFAULT_LOCK = threading.Lock()
_DEFAULT: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """The process-wide registry the substrate layers instrument into."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = MetricsRegistry()
        return _DEFAULT
