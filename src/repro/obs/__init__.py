"""``repro.obs`` — the metrics/tracing subsystem.

One process-wide :class:`MetricsRegistry` (monotonic counters, gauges,
fixed-bucket histograms with deterministic bounds), request-lifecycle
:class:`RequestSpan` timing, Prometheus text exposition, and the
per-client :class:`QuotaPolicy` the service daemon enforces with
recoverable backpressure.  See docs/observability.md for the metric
catalog and the hard rule: nothing observed here may flow into
fingerprinted report data.
"""

from repro.obs.exposition import MetricsEndpoint, render_prometheus
from repro.obs.quota import ClientAccount, QuotaPolicy
from repro.obs.registry import (
    LATENCY_BUCKETS,
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    merge_snapshots,
    quantile_from_counts,
)
from repro.obs.spans import PHASES, SPAN_HISTOGRAMS, RequestSpan

__all__ = [
    "LATENCY_BUCKETS",
    "SNAPSHOT_VERSION",
    "PHASES",
    "SPAN_HISTOGRAMS",
    "ClientAccount",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsEndpoint",
    "MetricsRegistry",
    "QuotaPolicy",
    "RequestSpan",
    "default_registry",
    "merge_snapshots",
    "quantile_from_counts",
    "render_prometheus",
]
