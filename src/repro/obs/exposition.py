"""Prometheus text exposition of a metrics snapshot, plus the endpoint.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.snapshot` dict
into the Prometheus text format (version 0.0.4): ``# HELP``/``# TYPE``
headers, one sample per series, histograms as cumulative ``_bucket``
series with ``le`` labels plus ``_sum``/``_count``.  Rendering works on
*snapshots*, not registries, so the daemon can render merged
(process-wide + per-daemon) state and the router could render a whole
fleet's roll-up.

:class:`MetricsEndpoint` is the optional ``step serve --metrics
host:port`` listener: a deliberately tiny HTTP/1.0 responder (no routes,
no keep-alive — every scrape gets the full exposition and a close).  The
snapshot+render runs **off-loop** in the default executor so a scrape
of a large registry never stalls protocol frames sharing the loop.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Optional

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_pairs(series_key: str) -> Dict[str, str]:
    """Invert :func:`repro.obs.registry._label_key` (``k=v,k2=v2``)."""
    labels: Dict[str, str] = {}
    if series_key:
        for part in series_key.split(","):
            key, _, value = part.partition("=")
            labels[key] = value
    return labels


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return "{" + body + "}"


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """The Prometheus text-format exposition of one snapshot."""
    lines = []
    for section, prom_type in (("counters", "counter"), ("gauges", "gauge")):
        entries = snapshot.get(section, {})
        for name in sorted(entries):
            entry = entries[name]
            if entry.get("help"):
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {prom_type}")
            values = entry.get("values", {})
            for key in sorted(values):
                labels = _render_labels(_label_pairs(key))
                lines.append(f"{name}{labels} {_format_value(values[key])}")
    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        entry = histograms[name]
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} histogram")
        bounds = entry.get("buckets", [])
        for key in sorted(entry.get("series", {})):
            series = entry["series"][key]
            base_labels = _label_pairs(key)
            cumulative = 0
            for bound, count in zip(bounds, series["counts"]):
                cumulative += count
                labels = dict(base_labels)
                labels["le"] = _format_value(float(bound))
                lines.append(
                    f"{name}_bucket{_render_labels(labels)} {cumulative}"
                )
            labels = dict(base_labels)
            labels["le"] = "+Inf"
            lines.append(
                f"{name}_bucket{_render_labels(labels)} {series['count']}"
            )
            plain = _render_labels(base_labels)
            lines.append(f"{name}_sum{plain} {_format_value(series['sum'])}")
            lines.append(f"{name}_count{plain} {series['count']}")
    return "\n".join(lines) + "\n"


class MetricsEndpoint:
    """The plaintext scrape listener behind ``step serve --metrics``."""

    def __init__(self, render: Callable[[], str]) -> None:
        # ``render`` produces the full exposition body; it runs off-loop.
        self._render = render
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[str] = None
        self._socket_path: Optional[str] = None

    @property
    def address(self) -> Optional[str]:
        """The bound scrape address (resolved for TCP port 0)."""
        return self._address

    async def start(self, address: str) -> None:
        # Imported here, not at module top: service -> obs is the load-
        # bearing direction; this one helper reuses the daemon's listener
        # plumbing without making obs depend on the service layer at
        # import time.
        from repro.service.daemon import open_listener

        if self._server is not None:  # pragma: no cover - defensive
            return
        self._server, self._address, self._socket_path = await open_listener(
            self._handle, address
        )

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._socket_path is not None:
            try:
                import os

                os.unlink(self._socket_path)
            except OSError:
                pass
            self._socket_path = None
        self._address = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            # Consume the request head (request line + headers); the verb
            # and path are irrelevant — every request gets the exposition.
            try:
                while True:
                    line = await asyncio.wait_for(reader.readline(), timeout=5)
                    if not line or line in (b"\r\n", b"\n"):
                        break
            except asyncio.TimeoutError:
                return
            body = await asyncio.get_running_loop().run_in_executor(
                None, self._render
            )
            payload = body.encode("utf-8")
            head = (
                "HTTP/1.0 200 OK\r\n"
                f"Content-Type: {CONTENT_TYPE}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
