"""Per-client quota policy and accounting for the service daemon.

The hardening half of the observability layer: the same numbers the
metrics registry reports (per-client in-flight counts, cache writes) are
the admission signal.  :class:`QuotaPolicy` is the validated bundle of
bounds a :class:`repro.service.daemon.ReproService` enforces;
:class:`ClientAccount` is one connection's running tally.

Quota semantics (documented in docs/observability.md):

* ``max_inflight_per_client`` — a connection may hold at most this many
  non-terminal requests; an over-limit ``submit`` is rejected with a
  tagged, recoverable :class:`repro.errors.Backpressure` error frame
  (the connection and its in-flight work are untouched).
* ``max_pending`` — the bounded accept queue: at most this many
  non-terminal requests across *all* connections; excess submits get the
  same backpressure reply instead of queueing unboundedly.
* ``cache_write_budget`` — once a connection's completed requests have
  caused this many persistent cone-cache *writes*, its later requests
  run without the persistent cache (in-memory dedup still applies).
  Reports are fingerprint-identical either way — cache state never
  changes results, only how they are reached — so throttling is
  invisible in report data and visible in ``schedule["persistent_*"]``
  and the stats frame.

Rejections never perturb surviving requests: admission is decided before
the request is decoded or planned, so a rejected submit leaves no trace
in the scheduler (proven by the fingerprint-isolation tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import Backpressure, ReproError


def _check_bound(value: Optional[int], name: str) -> None:
    if value is not None and (not isinstance(value, int) or value < 1):
        raise ReproError(
            f"{name} must be a positive integer or None (got {value!r})"
        )


@dataclass(frozen=True)
class QuotaPolicy:
    """The daemon's per-client/service admission bounds (None = no bound)."""

    max_inflight_per_client: Optional[int] = None
    max_pending: Optional[int] = None
    cache_write_budget: Optional[int] = None

    def __post_init__(self) -> None:
        _check_bound(self.max_inflight_per_client, "max_inflight_per_client")
        _check_bound(self.max_pending, "max_pending")
        _check_bound(self.cache_write_budget, "cache_write_budget")

    @property
    def enforced(self) -> bool:
        return (
            self.max_inflight_per_client is not None
            or self.max_pending is not None
            or self.cache_write_budget is not None
        )

    def admit(
        self, client: str, inflight: int, pending_total: int
    ) -> None:
        """Raise :class:`Backpressure` when a submit must be rejected."""
        limit = self.max_inflight_per_client
        if limit is not None and inflight >= limit:
            raise Backpressure(
                f"client {client} has {inflight} requests in flight "
                f"(limit {limit}); retry after one completes",
                quota="max_inflight_per_client",
                limit=limit,
            )
        limit = self.max_pending
        if limit is not None and pending_total >= limit:
            raise Backpressure(
                f"the service accept queue is full ({pending_total} requests "
                f"pending, limit {limit}); retry shortly",
                quota="max_pending",
                limit=limit,
            )

    def cache_writes_exhausted(self, persistent_saved: int) -> bool:
        """Whether a client's accumulated cache writes used up its budget."""
        budget = self.cache_write_budget
        return budget is not None and persistent_saved >= budget


class ClientAccount:
    """One connection's running quota/metrics tally (loop-confined)."""

    __slots__ = (
        "client",
        "submitted",
        "rejected",
        "persistent_saved",
        "cache_throttled",
    )

    def __init__(self, client: str) -> None:
        self.client = client
        self.submitted = 0
        self.rejected = 0
        # Persistent cone-cache entries this connection's completed
        # requests wrote (from schedule["persistent_saved"]).
        self.persistent_saved = 0
        # Requests that ran with the persistent cache withheld because
        # the write budget was exhausted.
        self.cache_throttled = 0

    def stats(self, inflight: int) -> Dict[str, int]:
        return {
            "inflight": inflight,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "persistent_saved": self.persistent_saved,
            "cache_throttled": self.cache_throttled,
        }
