"""Circuit file formats.

The benchmark families the paper evaluates on (ISCAS'85, ISCAS'89, ITC'99,
LGSYNTH) are distributed as BLIF or BENCH files; this subpackage reads and
writes both formats, producing/consuming :class:`repro.aig.aig.AIG` objects.
"""

from repro.io.blif import parse_blif, read_blif, write_blif, aig_to_blif
from repro.io.bench import parse_bench, read_bench, write_bench, aig_to_bench

__all__ = [
    "parse_blif",
    "read_blif",
    "write_blif",
    "aig_to_blif",
    "parse_bench",
    "read_bench",
    "write_bench",
    "aig_to_bench",
]
