"""Reading and writing ISCAS BENCH netlists.

The BENCH format is the native distribution format of the ISCAS'85/'89
benchmark suites: ``INPUT(x)`` / ``OUTPUT(y)`` declarations followed by gate
assignments such as ``y = NAND(a, b, c)``.  Supported gate types: AND, NAND,
OR, NOR, XOR, XNOR, NOT, BUFF/BUF, DFF (treated as a latch) and constants
``vdd``/``gnd``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.aig import AIG, AigLiteral, FALSE_LIT, TRUE_LIT, lit_is_complemented, lit_var
from repro.errors import ParseError

_ASSIGNMENT = re.compile(r"^(?P<out>[^=\s]+)\s*=\s*(?P<gate>[A-Za-z]+)\s*\((?P<args>.*)\)$")


def read_bench(path: str) -> AIG:
    """Parse a BENCH file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_bench(handle.read(), filename=path)


def parse_bench(text: str, filename: str = "<string>", name: str = "bench") -> AIG:
    """Parse BENCH text into an AIG."""
    inputs: List[str] = []
    outputs: List[str] = []
    gates: Dict[str, Tuple[str, List[str], int]] = {}
    dffs: List[Tuple[str, str]] = []  # (output signal, input signal)

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        upper = line.upper()
        if upper.startswith("INPUT(") and line.endswith(")"):
            inputs.append(line[line.index("(") + 1 : -1].strip())
            continue
        if upper.startswith("OUTPUT(") and line.endswith(")"):
            outputs.append(line[line.index("(") + 1 : -1].strip())
            continue
        match = _ASSIGNMENT.match(line)
        if not match:
            raise ParseError(f"unrecognised BENCH line: {line!r}", filename, lineno)
        out = match.group("out")
        gate = match.group("gate").upper()
        args = [a.strip() for a in match.group("args").split(",") if a.strip()]
        if out in gates:
            raise ParseError(f"signal {out!r} defined twice", filename, lineno)
        if gate == "DFF":
            if len(args) != 1:
                raise ParseError("DFF takes exactly one argument", filename, lineno)
            dffs.append((out, args[0]))
        else:
            gates[out] = (gate, args, lineno)

    aig = AIG(name)
    signals: Dict[str, AigLiteral] = {}
    for signal in inputs:
        signals[signal] = aig.add_input(signal)
    latch_lits: Dict[str, AigLiteral] = {}
    for out, _ in dffs:
        latch_lits[out] = aig.add_latch(out)
        signals[out] = latch_lits[out]

    resolving: set[str] = set()

    def resolve(signal: str) -> AigLiteral:
        if signal in signals:
            return signals[signal]
        lowered = signal.lower()
        if lowered in ("vdd", "true", "1"):
            return TRUE_LIT
        if lowered in ("gnd", "false", "0"):
            return FALSE_LIT
        if signal not in gates:
            raise ParseError(f"undriven signal {signal!r}", filename)
        if signal in resolving:
            raise ParseError(f"combinational cycle through {signal!r}", filename)
        resolving.add(signal)
        gate, args, lineno = gates[signal]
        literals = [resolve(a) for a in args]
        signals[signal] = _gate_to_aig(aig, gate, literals, filename, lineno)
        resolving.discard(signal)
        return signals[signal]

    for signal in outputs:
        aig.add_output(signal, resolve(signal))
    for out, data_in in dffs:
        aig.set_latch_next(latch_lits[out], resolve(data_in))
    return aig


def _gate_to_aig(
    aig: AIG, gate: str, literals: Sequence[AigLiteral], filename: str, lineno: int
) -> AigLiteral:
    if gate in ("BUFF", "BUF"):
        if len(literals) != 1:
            raise ParseError("BUFF takes exactly one argument", filename, lineno)
        return literals[0]
    if gate == "NOT":
        if len(literals) != 1:
            raise ParseError("NOT takes exactly one argument", filename, lineno)
        return literals[0] ^ 1
    if not literals:
        raise ParseError(f"{gate} gate with no inputs", filename, lineno)
    if gate == "AND":
        return aig.land_list(literals)
    if gate == "NAND":
        return aig.land_list(literals) ^ 1
    if gate == "OR":
        return aig.lor_list(literals)
    if gate == "NOR":
        return aig.lor_list(literals) ^ 1
    if gate == "XOR":
        return aig.lxor_list(literals)
    if gate == "XNOR":
        return aig.lxor_list(literals) ^ 1
    raise ParseError(f"unsupported gate type {gate}", filename, lineno)


def aig_to_bench(aig: AIG) -> str:
    """Serialise an AIG to BENCH text (AND gates plus NOT gates)."""
    lines: List[str] = [f"# {aig.name}"]
    names: Dict[int, str] = {}
    for index in aig.inputs:
        names[index] = aig.input_name(index)
        lines.append(f"INPUT({names[index]})")
    for index in aig.latches:
        names[index] = aig.input_name(index)
    for name, _ in aig.outputs:
        lines.append(f"OUTPUT({name})")

    body: List[str] = []
    aux_counter = [0]

    def node_name(index: int) -> str:
        if index not in names:
            names[index] = f"g{index}"
        return names[index]

    def edge_name(lit: AigLiteral) -> str:
        if lit_var(lit) == 0:
            return "vdd" if lit == TRUE_LIT else "gnd"
        base = node_name(lit_var(lit))
        if not lit_is_complemented(lit):
            return base
        aux_counter[0] += 1
        inverted = f"{base}_not{aux_counter[0]}"
        body.append(f"{inverted} = NOT({base})")
        return inverted

    roots = [lit for _, lit in aig.outputs]
    for index in aig.latches:
        node = aig.node(index)
        if node.next_state is not None:
            roots.append(node.next_state)
    for index in aig.cone_nodes(roots):
        if not aig.is_and(index):
            continue
        f0, f1 = aig.fanins(index)
        body.append(f"{node_name(index)} = AND({edge_name(f0)}, {edge_name(f1)})")

    for name, lit in aig.outputs:
        body.append(f"{name} = BUFF({edge_name(lit)})")
    for index in aig.latches:
        node = aig.node(index)
        if node.next_state is not None:
            body.append(f"{aig.input_name(index)} = DFF({edge_name(node.next_state)})")

    lines.extend(body)
    return "\n".join(lines) + "\n"


def write_bench(aig: AIG, path: str) -> None:
    """Write an AIG to a BENCH file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(aig_to_bench(aig))
