"""Reading and writing Berkeley Logic Interchange Format (BLIF) circuits.

Supported constructs: ``.model``, ``.inputs``, ``.outputs``, ``.names``
(single-output covers), ``.latch`` and ``.end``; extended constructs such as
``.subckt`` or don't-care covers are rejected with a :class:`ParseError`
because the paper's flow only requires flat, completely specified circuits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.aig import AIG, AigLiteral, FALSE_LIT, TRUE_LIT, lit_is_complemented, lit_var
from repro.errors import ParseError


def read_blif(path: str) -> AIG:
    """Parse a BLIF file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_blif(handle.read(), filename=path)


def parse_blif(text: str, filename: str = "<string>") -> AIG:
    """Parse BLIF text into an AIG."""
    lines = _logical_lines(text)
    model_name = "blif"
    inputs: List[str] = []
    outputs: List[str] = []
    latches: List[Tuple[str, str, int]] = []  # (input signal, output signal, init)
    covers: Dict[str, Tuple[List[str], List[Tuple[str, str]]]] = {}

    index = 0
    while index < len(lines):
        lineno, line = lines[index]
        tokens = line.split()
        keyword = tokens[0]
        if keyword == ".model":
            model_name = tokens[1] if len(tokens) > 1 else "blif"
            index += 1
        elif keyword == ".inputs":
            inputs.extend(tokens[1:])
            index += 1
        elif keyword == ".outputs":
            outputs.extend(tokens[1:])
            index += 1
        elif keyword == ".latch":
            if len(tokens) < 3:
                raise ParseError("malformed .latch line", filename, lineno)
            init = 0
            if len(tokens) in (4, 6):
                try:
                    init = int(tokens[-1])
                except ValueError:
                    init = 0
            latches.append((tokens[1], tokens[2], init if init in (0, 1) else 0))
            index += 1
        elif keyword == ".names":
            signals = tokens[1:]
            if not signals:
                raise ParseError(".names with no signals", filename, lineno)
            output = signals[-1]
            cover_inputs = signals[:-1]
            rows: List[Tuple[str, str]] = []
            index += 1
            while index < len(lines) and not lines[index][1].startswith("."):
                row_lineno, row = lines[index]
                parts = row.split()
                if len(cover_inputs) == 0:
                    if len(parts) != 1 or parts[0] not in ("0", "1"):
                        raise ParseError("malformed constant cover row", filename, row_lineno)
                    rows.append(("", parts[0]))
                else:
                    if len(parts) != 2:
                        raise ParseError("malformed cover row", filename, row_lineno)
                    pattern, value = parts
                    if len(pattern) != len(cover_inputs) or any(
                        ch not in "01-" for ch in pattern
                    ):
                        raise ParseError("malformed cover pattern", filename, row_lineno)
                    if value not in ("0", "1"):
                        raise ParseError("cover output must be 0 or 1", filename, row_lineno)
                    rows.append((pattern, value))
                index += 1
            if output in covers:
                raise ParseError(f"signal {output!r} defined twice", filename, lineno)
            covers[output] = (cover_inputs, rows)
        elif keyword == ".end":
            index += 1
        elif keyword in (".exdc", ".subckt", ".gate", ".mlatch", ".clock"):
            raise ParseError(f"unsupported BLIF construct {keyword}", filename, lineno)
        else:
            raise ParseError(f"unknown BLIF keyword {keyword}", filename, lineno)

    return _build_aig(model_name, inputs, outputs, latches, covers, filename)


def _logical_lines(text: str) -> List[Tuple[int, str]]:
    """Strip comments, join continuation lines, drop blanks."""
    result: List[Tuple[int, str]] = []
    pending = ""
    pending_lineno = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip() and not pending:
            continue
        if not pending:
            pending_lineno = lineno
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        pending += line
        if pending.strip():
            result.append((pending_lineno, pending.strip()))
        pending = ""
    if pending.strip():
        result.append((pending_lineno, pending.strip()))
    return result


def _build_aig(
    model_name: str,
    inputs: Sequence[str],
    outputs: Sequence[str],
    latches: Sequence[Tuple[str, str, int]],
    covers: Dict[str, Tuple[List[str], List[Tuple[str, str]]]],
    filename: str,
) -> AIG:
    aig = AIG(model_name)
    signals: Dict[str, AigLiteral] = {}
    for name in inputs:
        signals[name] = aig.add_input(name)
    latch_literals: Dict[str, AigLiteral] = {}
    for data_in, data_out, init in latches:
        latch_literals[data_out] = aig.add_latch(data_out, init_value=init)
        signals[data_out] = latch_literals[data_out]

    resolving: set[str] = set()

    def resolve(name: str) -> AigLiteral:
        if name in signals:
            return signals[name]
        if name not in covers:
            raise ParseError(f"undriven signal {name!r}", filename)
        if name in resolving:
            raise ParseError(f"combinational cycle through {name!r}", filename)
        resolving.add(name)
        cover_inputs, rows = covers[name]
        input_lits = [resolve(s) for s in cover_inputs]
        signals[name] = _cover_to_aig(aig, input_lits, rows)
        resolving.discard(name)
        return signals[name]

    for name in outputs:
        aig.add_output(name, resolve(name))
    for data_in, data_out, _ in latches:
        aig.set_latch_next(latch_literals[data_out], resolve(data_in))
    return aig


def _cover_to_aig(
    aig: AIG, input_lits: Sequence[AigLiteral], rows: Sequence[Tuple[str, str]]
) -> AigLiteral:
    """Convert a single-output PLA cover to an AIG literal."""
    if not rows:
        return FALSE_LIT
    onset_rows = [r for r in rows if r[1] == "1"]
    offset_rows = [r for r in rows if r[1] == "0"]
    if onset_rows and offset_rows:
        # BLIF requires a cover to list either the onset or the offset.
        raise ParseError("cover mixes onset and offset rows")
    target_rows = onset_rows if onset_rows else offset_rows
    terms = []
    for pattern, _ in target_rows:
        if pattern == "":
            terms.append(TRUE_LIT)
            continue
        factors = []
        for ch, lit in zip(pattern, input_lits):
            if ch == "1":
                factors.append(lit)
            elif ch == "0":
                factors.append(lit ^ 1)
        terms.append(aig.land_list(factors))
    result = aig.lor_list(terms)
    return result if onset_rows else result ^ 1


def aig_to_blif(aig: AIG, model_name: Optional[str] = None) -> str:
    """Serialise an AIG to BLIF text (AND nodes become two-input covers)."""
    names: Dict[int, str] = {}
    for index in aig.inputs + aig.latches:
        names[index] = aig.input_name(index)

    def node_name(index: int) -> str:
        if index not in names:
            names[index] = f"n{index}"
        return names[index]

    def edge_expr(lit: AigLiteral) -> Tuple[str, bool]:
        return node_name(lit_var(lit)), lit_is_complemented(lit)

    lines = [f".model {model_name or aig.name}"]
    input_names = [aig.input_name(i) for i in aig.inputs]
    lines.append(".inputs " + " ".join(input_names) if input_names else ".inputs")
    lines.append(".outputs " + " ".join(name for name, _ in aig.outputs))
    for index in aig.latches:
        node = aig.node(index)
        next_lit = node.next_state if node.next_state is not None else FALSE_LIT
        next_name = f"{aig.input_name(index)}__next"
        lines.append(f".latch {next_name} {aig.input_name(index)} {node.init_value}")

    body: List[str] = []
    emitted_ands: set[int] = set()
    roots = [lit for _, lit in aig.outputs]
    for index in aig.latches:
        node = aig.node(index)
        if node.next_state is not None:
            roots.append(node.next_state)
    for index in aig.cone_nodes(roots):
        if not aig.is_and(index) or index in emitted_ands:
            continue
        emitted_ands.add(index)
        f0, f1 = aig.fanins(index)
        (name0, inv0), (name1, inv1) = edge_expr(f0), edge_expr(f1)
        body.append(f".names {name0} {name1} {node_name(index)}")
        body.append(f"{'0' if inv0 else '1'}{'0' if inv1 else '1'} 1")

    def emit_alias(target: str, lit: AigLiteral) -> None:
        if lit == FALSE_LIT:
            body.append(f".names {target}")
            return
        if lit == TRUE_LIT:
            body.append(f".names {target}")
            body.append("1")
            return
        source, inverted = edge_expr(lit)
        body.append(f".names {source} {target}")
        body.append("0 1" if inverted else "1 1")

    for name, lit in aig.outputs:
        emit_alias(name, lit)
    for index in aig.latches:
        node = aig.node(index)
        if node.next_state is not None:
            emit_alias(f"{aig.input_name(index)}__next", node.next_state)

    lines.extend(body)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_blif(aig: AIG, path: str, model_name: Optional[str] = None) -> None:
    """Write an AIG to a BLIF file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(aig_to_blif(aig, model_name=model_name))
