"""BDD-based bi-decomposition (the classic, pre-SAT baseline).

For a fixed variable partition ``X = {XA | XB | XC}`` the decomposability
conditions have a clean quantified characterisation (Mishchenko, Steinbach &
Perkowski, DAC'01), which BDD quantification evaluates directly:

* **OR**:  ``f <= (forall XB. f) OR (forall XA. f)``; when decomposable,
  ``fA = forall XB. f`` and ``fB = forall XA. f`` is a valid decomposition.
* **AND**: the dual — ``(exists XB. f) AND (exists XA. f) <= f`` with
  ``fA = exists XB. f``, ``fB = exists XA. f``.
* **XOR**: the rectangle condition — for every ``xC`` the two-dimensional
  table of ``f`` over ``(XA, XB)`` has rank one over GF(2); equivalently
  ``f(xA, xB) XOR f(xA', xB) XOR f(xA, xB') XOR f(xA', xB')`` is identically
  false.  When decomposable, ``fA = f`` with ``XB`` fixed to any constant
  and ``fB = f`` with ``XA`` fixed to any constant, XOR-corrected by the
  doubly-fixed cofactor.

This module also serves as an independent oracle in the test-suite: the
SAT-based checks of :mod:`repro.core.checks` must agree with it on every
randomly generated function.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.aig.function import BooleanFunction
from repro.bdd.bdd import BDD, FALSE_NODE
from repro.errors import DecompositionError


def _split(bdd: BDD, function: BooleanFunction, xa, xb, xc):
    names = set(function.input_names)
    xa, xb, xc = list(xa), list(xb), list(xc)
    for name in xa + xb + xc:
        if name not in names:
            raise DecompositionError(f"partition mentions unknown input {name!r}")
    covered = set(xa) | set(xb) | set(xc)
    if covered != names or len(xa) + len(xb) + len(xc) != len(covered):
        raise DecompositionError("partition must split the inputs into disjoint sets")
    return xa, xb, xc


def bdd_check_decomposable(
    function: BooleanFunction,
    operator: str,
    xa: Sequence[str],
    xb: Sequence[str],
    xc: Sequence[str],
    bdd: Optional[BDD] = None,
) -> bool:
    """Decide decomposability of ``function`` under a fixed partition."""
    bdd = bdd or BDD()
    xa, xb, xc = _split(bdd, function, xa, xb, xc)
    f = bdd.from_function(function)
    if operator == "or":
        fa_max = bdd.forall(f, xb)
        fb_max = bdd.forall(f, xa)
        return bdd.implies(f, bdd.apply_or(fa_max, fb_max))
    if operator == "and":
        fa_min = bdd.exists(f, xb)
        fb_min = bdd.exists(f, xa)
        return bdd.implies(bdd.apply_and(fa_min, fb_min), f)
    if operator == "xor":
        return _xor_rectangle_condition(bdd, f, xa, xb)
    raise DecompositionError(f"unsupported operator {operator!r}")


def _xor_rectangle_condition(bdd: BDD, f, xa: Sequence[str], xb: Sequence[str]) -> bool:
    """Check the XOR decomposability (rank-one rectangle) condition.

    The condition quantifies over a second copy of XA and XB; on BDDs we
    realise the copies by checking that
    ``g(XA, XB) = f XOR f|XB<-b0`` does not depend on XA once XORed with its
    own XB-independent part — concretely, decomposability holds iff
    ``f XOR f_{B0} XOR f_{A0} XOR f_{A0,B0}`` is the constant zero, where the
    subscripts denote fixing the corresponding block to the all-zero vector.
    This is equivalent to the pairwise rectangle condition for completely
    specified functions.
    """
    f_b0 = f
    for name in xb:
        f_b0 = bdd.restrict(f_b0, name, False)
    f_a0 = f
    for name in xa:
        f_a0 = bdd.restrict(f_a0, name, False)
    f_a0b0 = f_a0
    for name in xb:
        f_a0b0 = bdd.restrict(f_a0b0, name, False)
    residue = bdd.apply_xor(bdd.apply_xor(f, f_b0), bdd.apply_xor(f_a0, f_a0b0))
    return residue == FALSE_NODE


def bdd_or_decompose(
    function: BooleanFunction,
    xa: Sequence[str],
    xb: Sequence[str],
    xc: Sequence[str],
) -> Optional[Tuple[BooleanFunction, BooleanFunction]]:
    """OR bi-decompose under a fixed partition; ``None`` if not decomposable."""
    bdd = BDD()
    xa, xb, xc = _split(bdd, function, xa, xb, xc)
    f = bdd.from_function(function)
    fa_max = bdd.forall(f, xb)
    fb_max = bdd.forall(f, xa)
    if not bdd.implies(f, bdd.apply_or(fa_max, fb_max)):
        return None
    fa = bdd.to_function(fa_max, list(xa) + list(xc))
    fb = bdd.to_function(fb_max, list(xb) + list(xc))
    return fa, fb


def bdd_and_decompose(
    function: BooleanFunction,
    xa: Sequence[str],
    xb: Sequence[str],
    xc: Sequence[str],
) -> Optional[Tuple[BooleanFunction, BooleanFunction]]:
    """AND bi-decompose under a fixed partition; ``None`` if not decomposable."""
    bdd = BDD()
    xa, xb, xc = _split(bdd, function, xa, xb, xc)
    f = bdd.from_function(function)
    fa_min = bdd.exists(f, xb)
    fb_min = bdd.exists(f, xa)
    if not bdd.implies(bdd.apply_and(fa_min, fb_min), f):
        return None
    fa = bdd.to_function(fa_min, list(xa) + list(xc))
    fb = bdd.to_function(fb_min, list(xb) + list(xc))
    return fa, fb


def bdd_xor_decompose(
    function: BooleanFunction,
    xa: Sequence[str],
    xb: Sequence[str],
    xc: Sequence[str],
) -> Optional[Tuple[BooleanFunction, BooleanFunction]]:
    """XOR bi-decompose under a fixed partition; ``None`` if not decomposable."""
    bdd = BDD()
    xa, xb, xc = _split(bdd, function, xa, xb, xc)
    f = bdd.from_function(function)
    if not _xor_rectangle_condition(bdd, f, xa, xb):
        return None
    # fA(XA, XC) = f with XB fixed to zero;
    # fB(XB, XC) = f with XA fixed to zero, XORed with the doubly fixed part
    # so the constant offset is not counted twice.
    fa_bdd = f
    for name in xb:
        fa_bdd = bdd.restrict(fa_bdd, name, False)
    fb_bdd = f
    for name in xa:
        fb_bdd = bdd.restrict(fb_bdd, name, False)
    offset = fa_bdd
    for name in xa:
        offset = bdd.restrict(offset, name, False)
    fb_bdd = bdd.apply_xor(fb_bdd, offset)
    fa = bdd.to_function(fa_bdd, list(xa) + list(xc))
    fb = bdd.to_function(fb_bdd, list(xb) + list(xc))
    return fa, fb
