"""A small Reduced Ordered BDD manager.

Nodes are integers: ``0`` and ``1`` are the terminals and every other node
has a variable level, a low child (variable = 0) and a high child
(variable = 1).  Reduction (no redundant tests, shared subgraphs) is enforced
by the unique table.  The manager supports the operations the bi-
decomposition baseline needs: conjunction, disjunction, negation, XOR,
cofactors, existential and universal quantification, satisfying-assignment
counting and conversion from/to :class:`repro.aig.function.BooleanFunction`.

The variable order is the creation order of the named variables; dynamic
reordering is out of scope (and is one of the BDD weaknesses the paper
motivates moving away from).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.aig.aig import AIG, NODE_AND
from repro.aig.function import BooleanFunction
from repro.errors import BddError

BddNode = int

FALSE_NODE: BddNode = 0
TRUE_NODE: BddNode = 1


class BDD:
    """A shared, reduced, ordered BDD manager."""

    def __init__(self, var_names: Optional[Sequence[str]] = None) -> None:
        # node id -> (level, low, high); terminals use level = +infinity marker
        self._level: List[int] = [2**31, 2**31]
        self._low: List[BddNode] = [0, 1]
        self._high: List[BddNode] = [0, 1]
        self._unique: Dict[Tuple[int, BddNode, BddNode], BddNode] = {}
        self._ite_cache: Dict[Tuple[BddNode, BddNode, BddNode], BddNode] = {}
        self._var_names: List[str] = []
        self._name_to_level: Dict[str, int] = {}
        if var_names:
            for name in var_names:
                self.add_var(name)

    # -- variables -----------------------------------------------------------

    def add_var(self, name: str) -> BddNode:
        """Declare a variable (appended to the order) and return its node."""
        if name in self._name_to_level:
            raise BddError(f"variable {name!r} already declared")
        level = len(self._var_names)
        self._var_names.append(name)
        self._name_to_level[name] = level
        return self._mk(level, FALSE_NODE, TRUE_NODE)

    def var(self, name: str) -> BddNode:
        """The BDD of an already declared variable."""
        if name not in self._name_to_level:
            raise BddError(f"unknown variable {name!r}")
        return self._mk(self._name_to_level[name], FALSE_NODE, TRUE_NODE)

    @property
    def var_names(self) -> List[str]:
        return list(self._var_names)

    def level_of(self, name: str) -> int:
        return self._name_to_level[name]

    @property
    def num_nodes(self) -> int:
        return len(self._level)

    # -- core construction -----------------------------------------------------

    def _mk(self, level: int, low: BddNode, high: BddNode) -> BddNode:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        node = len(self._level)
        self._level.append(level)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    def ite(self, f: BddNode, g: BddNode, h: BddNode) -> BddNode:
        """If-then-else: ``f ? g : h`` — the universal BDD operation."""
        if f == TRUE_NODE:
            return g
        if f == FALSE_NODE:
            return h
        if g == h:
            return g
        if g == TRUE_NODE and h == FALSE_NODE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level[f], self._level[g], self._level[h])
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(level, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: BddNode, level: int) -> Tuple[BddNode, BddNode]:
        if self._level[node] != level:
            return node, node
        return self._low[node], self._high[node]

    # -- Boolean operations --------------------------------------------------------

    def apply_not(self, f: BddNode) -> BddNode:
        return self.ite(f, FALSE_NODE, TRUE_NODE)

    def apply_and(self, f: BddNode, g: BddNode) -> BddNode:
        return self.ite(f, g, FALSE_NODE)

    def apply_or(self, f: BddNode, g: BddNode) -> BddNode:
        return self.ite(f, TRUE_NODE, g)

    def apply_xor(self, f: BddNode, g: BddNode) -> BddNode:
        return self.ite(f, self.apply_not(g), g)

    def implies(self, f: BddNode, g: BddNode) -> bool:
        """Semantic implication check ``f -> g``."""
        return self.apply_and(f, self.apply_not(g)) == FALSE_NODE

    def equal(self, f: BddNode, g: BddNode) -> bool:
        return f == g

    # -- cofactors and quantification -------------------------------------------------

    def restrict(self, f: BddNode, name: str, value: bool) -> BddNode:
        level = self._name_to_level[name]
        return self._restrict(f, level, value, {})

    def _restrict(
        self, f: BddNode, level: int, value: bool, cache: Dict[BddNode, BddNode]
    ) -> BddNode:
        if f in (FALSE_NODE, TRUE_NODE) or self._level[f] > level:
            return f
        if f in cache:
            return cache[f]
        if self._level[f] == level:
            result = self._high[f] if value else self._low[f]
        else:
            low = self._restrict(self._low[f], level, value, cache)
            high = self._restrict(self._high[f], level, value, cache)
            result = self._mk(self._level[f], low, high)
        cache[f] = result
        return result

    def exists(self, f: BddNode, names: Iterable[str]) -> BddNode:
        result = f
        for name in names:
            result = self.apply_or(
                self.restrict(result, name, False), self.restrict(result, name, True)
            )
        return result

    def forall(self, f: BddNode, names: Iterable[str]) -> BddNode:
        result = f
        for name in names:
            result = self.apply_and(
                self.restrict(result, name, False), self.restrict(result, name, True)
            )
        return result

    # -- analysis -------------------------------------------------------------------------

    def support(self, f: BddNode) -> List[str]:
        """Names of the variables appearing in the BDD of ``f``."""
        seen_levels = set()
        stack = [f]
        visited = set()
        while stack:
            node = stack.pop()
            if node in visited or node in (FALSE_NODE, TRUE_NODE):
                continue
            visited.add(node)
            seen_levels.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return [self._var_names[level] for level in sorted(seen_levels)]

    def count_sat(self, f: BddNode, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables."""
        if num_vars is None:
            num_vars = len(self._var_names)
        cache: Dict[BddNode, int] = {}

        def effective_level(node: BddNode) -> int:
            if node in (FALSE_NODE, TRUE_NODE):
                return num_vars
            return self._level[node]

        def count(node: BddNode) -> int:
            # Number of satisfying assignments over the variables at levels
            # strictly below (i.e. numerically >=) the node's own level.
            if node == FALSE_NODE:
                return 0
            if node == TRUE_NODE:
                return 1
            if node in cache:
                return cache[node]
            level = self._level[node]
            low, high = self._low[node], self._high[node]
            low_count = count(low) << (effective_level(low) - level - 1)
            high_count = count(high) << (effective_level(high) - level - 1)
            result = low_count + high_count
            cache[node] = result
            return result

        return count(f) << effective_level(f)

    def evaluate(self, f: BddNode, assignment: Mapping[str, bool]) -> bool:
        node = f
        while node not in (FALSE_NODE, TRUE_NODE):
            name = self._var_names[self._level[node]]
            node = self._high[node] if assignment[name] else self._low[node]
        return node == TRUE_NODE

    # -- conversions -------------------------------------------------------------------------

    def from_function(self, function: BooleanFunction) -> BddNode:
        """Build the BDD of an AIG-backed function (declaring missing vars)."""
        for name in function.input_names:
            if name not in self._name_to_level:
                self.add_var(name)
        aig = function.aig
        cache: Dict[int, BddNode] = {}
        for index in aig.cone_nodes([function.root]):
            node = aig.node(index)
            if node.kind == NODE_AND:
                f0 = self._edge_bdd(cache, node.fanin0)
                f1 = self._edge_bdd(cache, node.fanin1)
                cache[index] = self.apply_and(f0, f1)
            else:
                cache[index] = self.var(aig.input_name(index))
        return self._edge_bdd(cache, function.root)

    def _edge_bdd(self, cache: Dict[int, BddNode], lit: int) -> BddNode:
        if lit >> 1 == 0:
            return TRUE_NODE if lit & 1 else FALSE_NODE
        value = cache[lit >> 1]
        return self.apply_not(value) if lit & 1 else value

    def to_function(self, f: BddNode, input_names: Optional[Sequence[str]] = None) -> BooleanFunction:
        """Convert a BDD back to an AIG-backed :class:`BooleanFunction`."""
        names = list(input_names) if input_names is not None else self.support(f)
        aig = AIG("from_bdd")
        lits = {name: aig.add_input(name) for name in names}
        cache: Dict[BddNode, int] = {}

        def build(node: BddNode) -> int:
            if node == FALSE_NODE:
                return 0
            if node == TRUE_NODE:
                return 1
            if node in cache:
                return cache[node]
            name = self._var_names[self._level[node]]
            if name not in lits:
                raise BddError(
                    f"BDD depends on {name!r} which is not among the requested inputs"
                )
            result = aig.mux(lits[name], build(self._high[node]), build(self._low[node]))
            cache[node] = result
            return result

        root = build(f)
        aig.add_output("f", root)
        return BooleanFunction(aig, root, [aig.input_by_name(n) for n in names])
