"""Reduced Ordered Binary Decision Diagrams.

The paper's related-work section contrasts SAT/QBF-based bi-decomposition
with the classic BDD-based algorithms.  This subpackage provides a compact
BDD manager (:class:`repro.bdd.bdd.BDD`) and a BDD-based bi-decomposition
baseline (:mod:`repro.bdd.bidec_bdd`) used both as an optional comparison
point and as an independent oracle in the test suite (quantification-based
decomposability checks cross-validate the SAT/QBF answers).
"""

from repro.bdd.bdd import BDD, BddNode
from repro.bdd.bidec_bdd import (
    bdd_check_decomposable,
    bdd_or_decompose,
    bdd_and_decompose,
    bdd_xor_decompose,
)

__all__ = [
    "BDD",
    "BddNode",
    "bdd_check_decomposable",
    "bdd_or_decompose",
    "bdd_and_decompose",
    "bdd_xor_decompose",
]
