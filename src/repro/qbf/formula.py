"""Prenex-CNF quantified Boolean formulas and QDIMACS I/O."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.errors import ParseError, SolverError
from repro.sat.cnf import CNF

EXISTS = "e"
FORALL = "a"


@dataclass
class QuantifierBlock:
    """A maximal block of identically quantified variables."""

    quantifier: str
    variables: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.quantifier not in (EXISTS, FORALL):
            raise SolverError(f"invalid quantifier {self.quantifier!r}")
        if any(v <= 0 for v in self.variables):
            raise SolverError("quantified variables must be positive integers")
        self.variables = tuple(self.variables)


@dataclass
class QbfFormula:
    """A prenex-CNF QBF: a quantifier prefix plus a CNF matrix.

    Variables not mentioned in the prefix are *free*; following the paper's
    convention the library treats formulas as closed, so helper constructors
    existentially quantify free variables in the innermost block.
    """

    prefix: List[QuantifierBlock] = field(default_factory=list)
    matrix: CNF = field(default_factory=CNF)

    # -- construction ----------------------------------------------------------

    @classmethod
    def exists_forall(
        cls, exist_vars: Sequence[int], forall_vars: Sequence[int], matrix: CNF
    ) -> "QbfFormula":
        """Build a 2QBF ``exists E forall U . matrix`` (closing free vars)."""
        formula = cls(
            prefix=[
                QuantifierBlock(EXISTS, tuple(exist_vars)),
                QuantifierBlock(FORALL, tuple(forall_vars)),
            ],
            matrix=matrix,
        )
        formula.close()
        return formula

    def close(self) -> None:
        """Existentially quantify free matrix variables in the innermost block."""
        bound = {v for block in self.prefix for v in block.variables}
        free = sorted(v for v in self.matrix.variables() if v not in bound)
        if not free:
            return
        if self.prefix and self.prefix[-1].quantifier == EXISTS:
            last = self.prefix[-1]
            self.prefix[-1] = QuantifierBlock(EXISTS, last.variables + tuple(free))
        else:
            self.prefix.append(QuantifierBlock(EXISTS, tuple(free)))

    # -- queries ---------------------------------------------------------------

    @property
    def num_alternations(self) -> int:
        return max(0, len(self.prefix) - 1)

    def bound_variables(self) -> set[int]:
        return {v for block in self.prefix for v in block.variables}

    def validate(self) -> None:
        """Check that no variable is quantified twice."""
        seen: set[int] = set()
        for block in self.prefix:
            for var in block.variables:
                if var in seen:
                    raise SolverError(f"variable {var} is quantified twice")
                seen.add(var)

    # -- QDIMACS ------------------------------------------------------------------

    def to_qdimacs(self) -> str:
        lines = [f"p cnf {self.matrix.num_vars} {len(self.matrix.clauses)}"]
        for block in self.prefix:
            lines.append(
                f"{block.quantifier} " + " ".join(str(v) for v in block.variables) + " 0"
            )
        for clause in self.matrix.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_qdimacs(cls, text: str, filename: str = "<string>") -> "QbfFormula":
        prefix: List[QuantifierBlock] = []
        matrix = CNF()
        declared_vars = 0
        pending: List[int] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ParseError("malformed problem line", filename, lineno)
                declared_vars = int(parts[2])
                continue
            if line[0] in (EXISTS, FORALL):
                parts = line.split()
                try:
                    variables = [int(tok) for tok in parts[1:]]
                except ValueError as exc:
                    raise ParseError(f"bad quantifier line: {exc}", filename, lineno)
                if not variables or variables[-1] != 0:
                    raise ParseError("quantifier line must end with 0", filename, lineno)
                prefix.append(QuantifierBlock(parts[0], tuple(variables[:-1])))
                continue
            for token in line.split():
                try:
                    lit = int(token)
                except ValueError as exc:
                    raise ParseError(f"invalid literal {token!r}: {exc}", filename, lineno)
                if lit == 0:
                    matrix.add_clause(pending)
                    pending = []
                else:
                    pending.append(lit)
        if pending:
            matrix.add_clause(pending)
        matrix.num_vars = max(matrix.num_vars, declared_vars)
        formula = cls(prefix=prefix, matrix=matrix)
        formula.validate()
        return formula
