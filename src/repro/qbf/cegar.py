"""Abstraction-refinement (AReQS-style) solver for 2QBF with a circuit matrix.

The paper's QBF models have the shape ``exists alpha,beta forall X,X',X'' .
phi`` where ``phi`` is a propositional formula (not CNF).  Encoding ``phi``
to CNF would add an innermost existential block (a 3QCNF formula); the paper
instead follows Janota & Marques-Silva's AReQS and works with the matrix as a
circuit so that both the matrix and its negation stay cheap to encode.  This
module reimplements that counterexample-guided loop:

1. *Candidate*: a SAT solver over the existential variables — constrained by
   one instantiated copy of the matrix per counterexample seen so far —
   proposes an assignment ``e``.
2. *Verification*: a second SAT solver checks ``exists U . NOT phi(e, U)``.
   If unsatisfiable, ``e`` is a winning move and the formula is true.
3. *Refinement*: otherwise the universal counterexample ``u`` is used to add
   the copy ``phi(E, u)`` to the candidate solver, and the loop repeats.

If the candidate solver becomes unsatisfiable the formula is false.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.function import BooleanFunction
from repro.errors import SolverError
from repro.sat.cnf import CNF
from repro.sat.solver import Solver
from repro.utils.timer import Deadline


@dataclass
class CegarResult:
    """Outcome of a CEGAR 2QBF solve.

    ``status`` is ``True`` (formula valid, ``model`` holds the existential
    witness), ``False`` (invalid) or ``None`` (budget exhausted).
    """

    status: Optional[bool]
    model: Dict[str, bool] = field(default_factory=dict)
    iterations: int = 0
    counterexamples: List[Dict[str, bool]] = field(default_factory=list)


class CegarTwoQbfSolver:
    """CEGAR solver for ``exists E forall U . matrix(E, U)``.

    Parameters
    ----------
    matrix:
        The matrix as an AIG-backed function; its inputs must be exactly the
        union of ``exist_inputs`` and ``universal_inputs`` (by name).
    exist_inputs / universal_inputs:
        Names of the existential and universal variables.
    """

    def __init__(
        self,
        matrix: BooleanFunction,
        exist_inputs: Sequence[str],
        universal_inputs: Sequence[str],
    ) -> None:
        self.matrix = matrix
        self.exist_inputs = list(exist_inputs)
        self.universal_inputs = list(universal_inputs)
        declared = set(self.exist_inputs) | set(self.universal_inputs)
        if set(matrix.input_names) - declared:
            missing = sorted(set(matrix.input_names) - declared)
            raise SolverError(f"matrix inputs not quantified: {missing}")
        if set(self.exist_inputs) & set(self.universal_inputs):
            raise SolverError("a variable cannot be both existential and universal")

        # Candidate (abstraction) solver: one persistent variable per
        # existential input; refinement adds instantiated matrix copies.
        self._candidate_solver = Solver()
        self._exist_vars: Dict[str, int] = {
            name: self._candidate_solver.new_var() for name in self.exist_inputs
        }

        # Verification solver: one persistent encoding of NOT matrix with both
        # E and U free; E is fixed through assumptions on each call.
        self._verify_solver = Solver()
        verify_cnf = CNF()
        self._verify_exist_vars = {name: verify_cnf.new_var() for name in self.exist_inputs}
        self._verify_universal_vars = {
            name: verify_cnf.new_var() for name in self.universal_inputs
        }
        input_vars = {}
        for node in matrix.inputs:
            name = matrix.aig.input_name(node)
            if name in self._verify_exist_vars:
                input_vars[node] = self._verify_exist_vars[name]
            else:
                input_vars[node] = self._verify_universal_vars[name]
        mapping = matrix.to_cnf(verify_cnf, input_vars=input_vars)
        verify_cnf.add_unit(-mapping.output_literal)
        self._verify_solver.add_cnf(verify_cnf)

    # -- candidate constraints --------------------------------------------------

    def add_exist_clause(self, clause: Sequence[Tuple[str, bool]]) -> None:
        """Add a clause over existential inputs to the candidate solver.

        Each item is ``(name, polarity)``; ``(x, True)`` is the positive
        literal of ``x``.  This is how callers express side constraints such
        as the paper's ``fN`` / ``fT`` requirements when they are already in
        clausal form.
        """
        lits = []
        for name, polarity in clause:
            var = self._exist_vars[name]
            lits.append(var if polarity else -var)
        self._candidate_solver.add_clause(lits)

    def add_exist_cnf(self, cnf: CNF, var_map: Dict[str, int]) -> None:
        """Add a CNF over existential inputs (plus fresh auxiliaries).

        ``var_map`` maps existential input names to the CNF's variables; all
        other CNF variables are treated as auxiliary and renamed into the
        candidate solver.
        """
        rename: Dict[int, int] = {}
        for name, var in var_map.items():
            rename[var] = self._exist_vars[name]
        for clause in cnf.clauses:
            lits = []
            for lit in clause:
                var = abs(lit)
                if var not in rename:
                    rename[var] = self._candidate_solver.new_var()
                mapped = rename[var]
                lits.append(mapped if lit > 0 else -mapped)
            self._candidate_solver.add_clause(lits)

    # -- main loop -----------------------------------------------------------------

    def solve(
        self,
        deadline: Optional[Deadline] = None,
        max_iterations: Optional[int] = None,
        conflict_budget: Optional[int] = None,
    ) -> CegarResult:
        """Run the CEGAR loop until a verdict or until the budget expires."""
        result = CegarResult(status=None)
        while True:
            if max_iterations is not None and result.iterations >= max_iterations:
                return result
            if deadline is not None and deadline.expired:
                return result
            result.iterations += 1

            candidate_answer = self._candidate_solver.solve(
                conflict_budget=conflict_budget, deadline=deadline
            )
            if candidate_answer.status is None:
                return result
            if candidate_answer.status is False:
                result.status = False
                return result
            candidate = {
                name: candidate_answer.model.get(var, False)
                for name, var in self._exist_vars.items()
            }

            assumptions = [
                var if candidate[name] else -var
                for name, var in self._verify_exist_vars.items()
            ]
            verify_answer = self._verify_solver.solve(
                assumptions=assumptions,
                conflict_budget=conflict_budget,
                deadline=deadline,
            )
            if verify_answer.status is None:
                return result
            if verify_answer.status is False:
                result.status = True
                result.model = candidate
                return result

            counterexample = {
                name: verify_answer.model.get(var, False)
                for name, var in self._verify_universal_vars.items()
            }
            result.counterexamples.append(counterexample)
            self._refine(counterexample)

    # -- refinement --------------------------------------------------------------------

    def _refine(self, counterexample: Dict[str, bool]) -> None:
        """Add the matrix instantiated at the counterexample to the candidates."""
        cnf = CNF(num_vars=self._candidate_solver.num_vars)
        input_vars: Dict[int, int] = {}
        fixed_units: List[int] = []
        for node in self.matrix.inputs:
            name = self.matrix.aig.input_name(node)
            if name in self._exist_vars:
                input_vars[node] = self._exist_vars[name]
            else:
                fresh = cnf.new_var()
                input_vars[node] = fresh
                fixed_units.append(fresh if counterexample[name] else -fresh)
        mapping = self.matrix.to_cnf(cnf, input_vars=input_vars)
        cnf.add_unit(mapping.output_literal)
        for unit in fixed_units:
            cnf.add_unit(unit)
        self._candidate_solver.add_cnf(cnf)
