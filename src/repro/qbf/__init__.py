"""Quantified Boolean formula substrate.

The paper solves its bi-decomposition models with the 2QBF abstraction-
refinement algorithm AReQS (Janota & Marques-Silva, SAT'11).  This subpackage
reimplements that machinery:

* :class:`repro.qbf.formula.QbfFormula` — prenex-CNF QBF container with
  QDIMACS reading and writing.
* :func:`repro.qbf.expansion.solve_by_expansion` — an exact
  universal-expansion solver for small prenex formulas, used for testing and
  cross-validation.
* :class:`repro.qbf.cegar.CegarTwoQbfSolver` — the AReQS-style CEGAR solver
  for 2QBF formulas ``exists E forall U . phi`` whose matrix ``phi`` is given
  as an AIG cone (so both the matrix and its negation have compact CNF
  encodings, exactly the trick the paper describes in section IV.A.5).
"""

from repro.qbf.formula import QbfFormula, QuantifierBlock
from repro.qbf.expansion import solve_by_expansion
from repro.qbf.cegar import CegarTwoQbfSolver, CegarResult

__all__ = [
    "QbfFormula",
    "QuantifierBlock",
    "solve_by_expansion",
    "CegarTwoQbfSolver",
    "CegarResult",
]
