"""Exact QBF solving by universal expansion.

This is the textbook semantics-level algorithm: peel quantifier blocks from
the *inside* out, replacing ``forall x . phi`` by ``phi[x=0] AND phi[x=1]``
and ``exists x . phi`` (in the innermost position) by a plain SAT call once
no universal variable remains underneath.  The cost is exponential in the
number of universal variables, so the function is intended for small
formulas: unit tests, cross-validation of the CEGAR solver and didactic
examples.  The CEGAR solver in :mod:`repro.qbf.cegar` is the engine the
bi-decomposition models actually use.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ResourceLimitReached, SolverError
from repro.qbf.formula import EXISTS, FORALL, QbfFormula
from repro.sat.cnf import CNF
from repro.sat.solver import Solver


def solve_by_expansion(
    formula: QbfFormula, max_universal_vars: int = 16
) -> Tuple[bool, Optional[Dict[int, bool]]]:
    """Decide a prenex-CNF QBF by explicit expansion of universal blocks.

    Returns ``(truth_value, model)`` where ``model`` assigns the outermost
    existential block when the formula is true and that block exists
    (otherwise ``None``).
    """
    formula.validate()
    universal_count = sum(
        len(block.variables) for block in formula.prefix if block.quantifier == FORALL
    )
    if universal_count > max_universal_vars:
        raise ResourceLimitReached(
            f"expansion solver limited to {max_universal_vars} universal variables "
            f"({universal_count} present)"
        )

    if not formula.prefix:
        result = _solve_cnf(formula.matrix)
        return result is not None, result or None

    outer = formula.prefix[0]
    if outer.quantifier == EXISTS:
        truth, assignment = _solve_exists_prefix(formula)
        return truth, assignment
    # Outermost universal block: the formula is true iff it is true under
    # every assignment to that block.
    for values in product((False, True), repeat=len(outer.variables)):
        restricted = _restrict(formula, dict(zip(outer.variables, values)))
        truth, _ = solve_by_expansion(restricted, max_universal_vars)
        if not truth:
            return False, None
    return True, None


def _solve_exists_prefix(formula: QbfFormula) -> Tuple[bool, Optional[Dict[int, bool]]]:
    """Handle a formula whose outermost block is existential."""
    outer = formula.prefix[0]
    rest = QbfFormula(prefix=formula.prefix[1:], matrix=formula.matrix)
    if not rest.prefix or all(b.quantifier == EXISTS for b in rest.prefix):
        # Purely existential: one SAT call decides it.
        model = _solve_cnf(formula.matrix)
        if model is None:
            return False, None
        return True, {v: model.get(v, False) for v in outer.variables}
    # Enumerate assignments to the outer existential block (small by
    # construction in tests) and recurse.
    for values in product((False, True), repeat=len(outer.variables)):
        assignment = dict(zip(outer.variables, values))
        restricted = _restrict(rest, assignment)
        truth, _ = solve_by_expansion(restricted)
        if truth:
            return True, assignment
    return False, None


def _restrict(formula: QbfFormula, assignment: Dict[int, bool]) -> QbfFormula:
    """Substitute constants for variables, simplifying the matrix."""
    matrix = CNF(num_vars=formula.matrix.num_vars)
    for clause in formula.matrix.clauses:
        satisfied = False
        kept: List[int] = []
        for lit in clause:
            var = abs(lit)
            if var in assignment:
                value = assignment[var] if lit > 0 else not assignment[var]
                if value:
                    satisfied = True
                    break
            else:
                kept.append(lit)
        if satisfied:
            continue
        if not kept:
            # Empty clause: the matrix is falsified outright; represent it by
            # a fresh contradictory pair so downstream SAT calls report UNSAT.
            fresh = matrix.new_var()
            matrix.add_unit(fresh)
            matrix.add_unit(-fresh)
            continue
        matrix.add_clause(kept)
    prefix = []
    for block in formula.prefix:
        remaining = tuple(v for v in block.variables if v not in assignment)
        if remaining:
            prefix.append(type(block)(block.quantifier, remaining))
    return QbfFormula(prefix=prefix, matrix=matrix)


def _solve_cnf(cnf: CNF) -> Optional[Dict[int, bool]]:
    solver = Solver()
    solver.add_cnf(cnf)
    result = solver.solve()
    if result.status is None:
        raise SolverError("unexpected unknown result from the SAT solver")
    return result.model if result.status else None
