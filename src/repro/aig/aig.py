"""Structurally hashed And-Inverter Graphs.

The representation follows the AIGER convention:

* every node has an index ``i``; the *literal* ``2 * i`` denotes the node and
  ``2 * i + 1`` its complement;
* node 0 is the constant false, so literal ``0`` is FALSE and ``1`` is TRUE;
* a node is either a primary input, a latch output (treated as a free input
  until the circuit is made combinational) or a two-input AND node.

Structural hashing (one AND node per unordered fanin pair) and the usual
constant/complement simplifications are applied on construction, which keeps
the three instantiated circuit copies required by the paper's formula (2)
compact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AigError

AigLiteral = int

FALSE_LIT: AigLiteral = 0
TRUE_LIT: AigLiteral = 1

NODE_CONST = "const"
NODE_INPUT = "input"
NODE_LATCH = "latch"
NODE_AND = "and"


@dataclass
class _Node:
    """Internal node record."""

    kind: str
    name: Optional[str] = None
    fanin0: AigLiteral = 0
    fanin1: AigLiteral = 0
    next_state: Optional[AigLiteral] = None  # latches only
    init_value: int = 0  # latches only


def lit_neg(lit: AigLiteral) -> AigLiteral:
    """Complement an AIG literal."""
    return lit ^ 1


def lit_var(lit: AigLiteral) -> int:
    """Node index of a literal."""
    return lit >> 1

def lit_is_complemented(lit: AigLiteral) -> bool:
    return bool(lit & 1)


def lit_make(node: int, complemented: bool = False) -> AigLiteral:
    return 2 * node + (1 if complemented else 0)


class AIG:
    """A mutable, structurally hashed And-Inverter Graph.

    The class exposes both the raw node-level interface (``add_input``,
    ``add_and``) and convenience operators (``lor``, ``lxor``, ``mux``, ...)
    that build balanced sub-graphs out of AND nodes and complemented edges.
    """

    def __init__(self, name: str = "aig") -> None:
        self.name = name
        self._nodes: List[_Node] = [_Node(NODE_CONST)]
        self._strash: Dict[Tuple[AigLiteral, AigLiteral], int] = {}
        self._inputs: List[int] = []
        self._latches: List[int] = []
        self._outputs: List[Tuple[str, AigLiteral]] = []
        self._input_names: Dict[str, int] = {}

    # -- structure queries -----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_ands(self) -> int:
        return sum(1 for node in self._nodes if node.kind == NODE_AND)

    @property
    def inputs(self) -> List[int]:
        """Primary input node indices, in creation order."""
        return list(self._inputs)

    @property
    def latches(self) -> List[int]:
        """Latch output node indices, in creation order."""
        return list(self._latches)

    @property
    def outputs(self) -> List[Tuple[str, AigLiteral]]:
        """(name, literal) pairs for the primary outputs."""
        return list(self._outputs)

    def node(self, index: int) -> _Node:
        return self._nodes[index]

    def node_kind(self, index: int) -> str:
        return self._nodes[index].kind

    def input_name(self, index: int) -> str:
        node = self._nodes[index]
        if node.kind not in (NODE_INPUT, NODE_LATCH):
            raise AigError(f"node {index} is not an input or latch")
        return node.name or f"n{index}"

    def input_by_name(self, name: str) -> int:
        if name not in self._input_names:
            raise AigError(f"unknown input name: {name!r}")
        return self._input_names[name]

    def fanins(self, index: int) -> Tuple[AigLiteral, AigLiteral]:
        node = self._nodes[index]
        if node.kind != NODE_AND:
            raise AigError(f"node {index} is not an AND node")
        return node.fanin0, node.fanin1

    def is_input(self, index: int) -> bool:
        return self._nodes[index].kind in (NODE_INPUT, NODE_LATCH)

    def is_and(self, index: int) -> bool:
        return self._nodes[index].kind == NODE_AND

    # -- construction -----------------------------------------------------------

    def add_input(self, name: Optional[str] = None) -> AigLiteral:
        """Create a primary input and return its (positive) literal."""
        index = len(self._nodes)
        if name is None:
            name = f"i{len(self._inputs)}"
        if name in self._input_names:
            raise AigError(f"duplicate input name: {name!r}")
        self._nodes.append(_Node(NODE_INPUT, name=name))
        self._inputs.append(index)
        self._input_names[name] = index
        return lit_make(index)

    def add_latch(self, name: Optional[str] = None, init_value: int = 0) -> AigLiteral:
        """Create a latch output node (driven later via :meth:`set_latch_next`)."""
        index = len(self._nodes)
        if name is None:
            name = f"l{len(self._latches)}"
        if name in self._input_names:
            raise AigError(f"duplicate latch name: {name!r}")
        self._nodes.append(_Node(NODE_LATCH, name=name, init_value=init_value))
        self._latches.append(index)
        self._input_names[name] = index
        return lit_make(index)

    def set_latch_next(self, latch_lit: AigLiteral, next_state: AigLiteral) -> None:
        index = lit_var(latch_lit)
        node = self._nodes[index]
        if node.kind != NODE_LATCH:
            raise AigError(f"node {index} is not a latch")
        node.next_state = next_state

    def add_output(self, name: str, lit: AigLiteral) -> None:
        self._check_literal(lit)
        self._outputs.append((name, lit))

    def add_and(self, a: AigLiteral, b: AigLiteral) -> AigLiteral:
        """Create (or reuse) an AND node computing ``a AND b``."""
        self._check_literal(a)
        self._check_literal(b)
        # Constant and trivial simplifications.
        if a == FALSE_LIT or b == FALSE_LIT:
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if b == TRUE_LIT:
            return a
        if a == b:
            return a
        if a == lit_neg(b):
            return FALSE_LIT
        key = (a, b) if a <= b else (b, a)
        existing = self._strash.get(key)
        if existing is not None:
            return lit_make(existing)
        index = len(self._nodes)
        self._nodes.append(_Node(NODE_AND, fanin0=key[0], fanin1=key[1]))
        self._strash[key] = index
        return lit_make(index)

    # -- derived operators ------------------------------------------------------

    def lnot(self, a: AigLiteral) -> AigLiteral:
        self._check_literal(a)
        return lit_neg(a)

    def land(self, *lits: AigLiteral) -> AigLiteral:
        """AND of any number of literals (TRUE for the empty conjunction)."""
        result = TRUE_LIT
        for lit in lits:
            result = self.add_and(result, lit)
        return result

    def lor(self, *lits: AigLiteral) -> AigLiteral:
        """OR of any number of literals (FALSE for the empty disjunction)."""
        result = FALSE_LIT
        for lit in lits:
            result = lit_neg(self.add_and(lit_neg(result), lit_neg(lit)))
        return result

    def lxor(self, a: AigLiteral, b: AigLiteral) -> AigLiteral:
        return self.lor(self.add_and(a, lit_neg(b)), self.add_and(lit_neg(a), b))

    def lxnor(self, a: AigLiteral, b: AigLiteral) -> AigLiteral:
        return lit_neg(self.lxor(a, b))

    def implies(self, a: AigLiteral, b: AigLiteral) -> AigLiteral:
        return self.lor(lit_neg(a), b)

    def mux(self, sel: AigLiteral, then_lit: AigLiteral, else_lit: AigLiteral) -> AigLiteral:
        """``sel ? then_lit : else_lit``."""
        return self.lor(self.add_and(sel, then_lit), self.add_and(lit_neg(sel), else_lit))

    def land_list(self, lits: Sequence[AigLiteral]) -> AigLiteral:
        """Balanced AND tree over a literal list."""
        lits = list(lits)
        if not lits:
            return TRUE_LIT
        while len(lits) > 1:
            nxt = []
            for i in range(0, len(lits) - 1, 2):
                nxt.append(self.add_and(lits[i], lits[i + 1]))
            if len(lits) % 2:
                nxt.append(lits[-1])
            lits = nxt
        return lits[0]

    def lor_list(self, lits: Sequence[AigLiteral]) -> AigLiteral:
        """Balanced OR tree over a literal list."""
        return lit_neg(self.land_list([lit_neg(l) for l in lits]))

    def lxor_list(self, lits: Sequence[AigLiteral]) -> AigLiteral:
        """XOR of a literal list (FALSE for the empty list)."""
        result = FALSE_LIT
        for lit in lits:
            result = self.lxor(result, lit)
        return result

    # -- traversal ---------------------------------------------------------------

    def cone_nodes(self, roots: Iterable[AigLiteral]) -> List[int]:
        """Node indices in the transitive fanin of ``roots``, topologically ordered.

        Inputs and latch outputs are included; the constant node is not.
        """
        visited: Dict[int, bool] = {}
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(lit_var(r), False) for r in roots]
        while stack:
            index, processed = stack.pop()
            if index == 0:
                continue
            if processed:
                order.append(index)
                continue
            if index in visited:
                continue
            visited[index] = True
            node = self._nodes[index]
            if node.kind == NODE_AND:
                stack.append((index, True))
                stack.append((lit_var(node.fanin0), False))
                stack.append((lit_var(node.fanin1), False))
            else:
                order.append(index)
        return order

    def copy_cone(
        self,
        root: AigLiteral,
        target: "AIG",
        input_map: Dict[int, AigLiteral],
    ) -> AigLiteral:
        """Copy the cone of ``root`` into ``target``.

        ``input_map`` maps this AIG's input/latch node indices to literals of
        ``target``; every input in the cone must be mapped.  Returns the
        literal of the copied root in ``target``.
        """
        cache: Dict[int, AigLiteral] = {}
        for index in self.cone_nodes([root]):
            node = self._nodes[index]
            if node.kind in (NODE_INPUT, NODE_LATCH):
                if index not in input_map:
                    raise AigError(
                        f"input {self.input_name(index)} of the cone is not mapped"
                    )
                cache[index] = input_map[index]
            else:
                f0 = self._map_literal(node.fanin0, cache)
                f1 = self._map_literal(node.fanin1, cache)
                cache[index] = target.add_and(f0, f1)
        return self._map_literal(root, cache)

    @staticmethod
    def _map_literal(lit: AigLiteral, cache: Dict[int, AigLiteral]) -> AigLiteral:
        if lit_var(lit) == 0:
            return lit
        mapped = cache[lit_var(lit)]
        return lit_neg(mapped) if lit_is_complemented(lit) else mapped

    # -- sequential handling -------------------------------------------------------

    def make_combinational(self) -> "AIG":
        """Return a combinational copy (the ABC ``comb`` command).

        Every latch output becomes a fresh primary input and every latch's
        next-state function becomes a fresh primary output.  Combinational
        circuits are returned unchanged (as a copy).
        """
        result = AIG(self.name)
        mapping: Dict[int, AigLiteral] = {}
        for index in self._inputs:
            mapping[index] = result.add_input(self.input_name(index))
        for index in self._latches:
            mapping[index] = result.add_input(self.input_name(index))
        roots = [lit for _, lit in self._outputs]
        for index in self._latches:
            next_state = self._nodes[index].next_state
            if next_state is not None:
                roots.append(next_state)
        for index in self.cone_nodes(roots):
            node = self._nodes[index]
            if node.kind == NODE_AND:
                f0 = self._map_literal(node.fanin0, mapping)
                f1 = self._map_literal(node.fanin1, mapping)
                mapping[index] = result.add_and(f0, f1)
            elif index not in mapping:
                mapping[index] = result.add_input(self.input_name(index))
        for name, lit in self._outputs:
            result.add_output(name, self._map_literal(lit, mapping))
        for index in self._latches:
            next_state = self._nodes[index].next_state
            if next_state is not None:
                result.add_output(
                    f"{self.input_name(index)}__next",
                    self._map_literal(next_state, mapping),
                )
        return result

    # -- misc -----------------------------------------------------------------------

    def _check_literal(self, lit: AigLiteral) -> None:
        if not isinstance(lit, int) or lit < 0 or lit_var(lit) >= len(self._nodes):
            raise AigError(f"invalid AIG literal: {lit!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AIG(name={self.name!r}, inputs={len(self._inputs)}, "
            f"latches={len(self._latches)}, ands={self.num_ands}, "
            f"outputs={len(self._outputs)})"
        )
