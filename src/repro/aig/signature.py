"""Structural cone signatures and the decomposition memo cache.

Multi-output circuits routinely drive several primary outputs with the same
cone (buffered outputs, replicated slices, generator-produced circuits).
Decomposing each such output from scratch repeats the exact same partition
search, so the batch scheduler (:mod:`repro.core.scheduler`) memoises
per-cone work keyed by a *structural signature*.

The signature serialises the cone in its DFS (``AIG.cone_nodes``) order with
every input replaced by its position in the function's input list.  Two
cones with equal signatures are structurally identical up to a
position-respecting renaming of their inputs: the per-output decomposition
pipeline (CNF encoding, SAT search, QBF refinement) is a deterministic
function of exactly this structure, so the memoised result — with input
names mapped positionally — is the result a fresh run would have produced.

Isomorphic cones whose traversal orders differ (e.g. commuted fanins from a
different construction history) hash differently and simply miss the cache;
a miss is never incorrect, only unexploited sharing.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.aig.aig import AIG, AigLiteral, lit_var
from repro.errors import AigError

ConeSignature = Tuple


def cone_signature(aig: AIG, root: AigLiteral, inputs: Sequence[int]) -> ConeSignature:
    """Canonical structural key of the cone of ``root`` over ``inputs``.

    ``inputs`` is the function's ordered input node list (as in
    :class:`repro.aig.function.BooleanFunction`); every input of the cone
    must appear in it.  The returned tuple is hashable and equal for cones
    that are structurally identical modulo input renaming (matched by
    position) and node renumbering (matched by traversal order).
    """
    if lit_var(root) == 0:
        # Same (num_inputs, gates, root) shape as gate cones so consumers can
        # treat signatures uniformly; the tuple root marker cannot collide
        # with a gate cone's integer root edge.
        return (len(inputs), (), ("const", root))
    position: Dict[int, int] = {node: pos for pos, node in enumerate(inputs)}
    # Sequence ids: inputs take their positions, gates are numbered on from
    # len(inputs) in cone traversal order.
    seq: Dict[int, int] = {}
    next_gate = len(inputs)
    gates: List[Tuple[int, int]] = []
    for index in aig.cone_nodes([root]):
        if aig.is_and(index):
            fanin0, fanin1 = aig.fanins(index)
            edge0 = 2 * seq[lit_var(fanin0)] + (fanin0 & 1)
            edge1 = 2 * seq[lit_var(fanin1)] + (fanin1 & 1)
            seq[index] = next_gate
            next_gate += 1
            gates.append((edge0, edge1))
        else:
            if index not in position:
                raise AigError(
                    f"cone input {aig.input_name(index)} is not among the "
                    "declared function inputs"
                )
            seq[index] = position[index]
    root_edge = 2 * seq[lit_var(root)] + (root & 1)
    return (len(inputs), tuple(gates), root_edge)


class ConeCache:
    """A memo cache with hit/miss accounting, keyed by hashable cone keys.

    The scheduler stores one entry per unique (signature, name-order) key;
    ``enabled=False`` turns every lookup into a miss so a single code path
    serves both the deduplicating and the always-recompute configurations.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._store: Dict[Hashable, object] = {}

    def __len__(self) -> int:
        return len(self._store)

    def lookup(self, key: Hashable) -> Optional[object]:
        """Return the cached value or ``None``, updating hit/miss counters."""
        if not self.enabled:
            self.misses += 1
            return None
        value = self._store.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def store(self, key: Hashable, value: object) -> None:
        if self.enabled:
            self._store[key] = value

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
        }
