"""Structural cone signatures and the decomposition memo caches.

Multi-output circuits routinely drive several primary outputs with the same
cone (buffered outputs, replicated slices, generator-produced circuits).
Decomposing each such output from scratch repeats the exact same partition
search, so the batch scheduler (:mod:`repro.core.scheduler`) memoises
per-cone work keyed by a *structural signature*.

Two signatures are provided:

* :func:`cone_signature` serialises the cone in its DFS (``AIG.cone_nodes``)
  order with every input replaced by its position in the function's input
  list.  Two cones with equal signatures are structurally identical up to a
  position-respecting renaming of their inputs: the per-output decomposition
  pipeline (CNF encoding, SAT search, QBF refinement) is a deterministic
  function of exactly this structure, so the memoised result — with input
  names mapped positionally — is the result a fresh run would have produced.
  Isomorphic cones whose traversal orders differ (commuted fanins from a
  different construction history) hash differently and miss.

* :func:`canonical_cone_signature` closes that gap: every node receives a
  bottom-up digest in which an AND node's two fanin edges are *sorted*, so
  the signature is invariant under fanin commutation (and therefore under
  any construction-order difference, since traversal order only ever
  reorders fanins).  Equal canonical signatures mean the cones compute the
  same Boolean function under the positional input mapping, so a memoised
  partition remains *valid* for the duplicate — though a fresh search over
  the permuted encoding could have found a different (equally valid)
  partition, which is why the scheduler's bit-exactness guarantee is stated
  for traversal-order-exact duplicates only (see ``docs/architecture.md``).
  The digest is a stable 128-bit BLAKE2b hash, reproducible across runs and
  machines — the property the persistent cache below relies on.

:class:`PersistentConeCache` snapshots replayable cache entries to a JSON
file keyed by (canonical signature, operator, engine set, engine-options
fingerprint) so a later run over the same suite starts with a warm cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.aig.aig import AIG, AigLiteral, lit_var
from repro.errors import AigError

ConeSignature = Tuple


def cone_signature(aig: AIG, root: AigLiteral, inputs: Sequence[int]) -> ConeSignature:
    """Canonical structural key of the cone of ``root`` over ``inputs``.

    ``inputs`` is the function's ordered input node list (as in
    :class:`repro.aig.function.BooleanFunction`); every input of the cone
    must appear in it.  The returned tuple is hashable and equal for cones
    that are structurally identical modulo input renaming (matched by
    position) and node renumbering (matched by traversal order).
    """
    if lit_var(root) == 0:
        # Same (num_inputs, gates, root) shape as gate cones so consumers can
        # treat signatures uniformly; the tuple root marker cannot collide
        # with a gate cone's integer root edge.
        return (len(inputs), (), ("const", root))
    position: Dict[int, int] = {node: pos for pos, node in enumerate(inputs)}
    # Sequence ids: inputs take their positions, gates are numbered on from
    # len(inputs) in cone traversal order.
    seq: Dict[int, int] = {}
    next_gate = len(inputs)
    gates: List[Tuple[int, int]] = []
    for index in aig.cone_nodes([root]):
        if aig.is_and(index):
            fanin0, fanin1 = aig.fanins(index)
            edge0 = 2 * seq[lit_var(fanin0)] + (fanin0 & 1)
            edge1 = 2 * seq[lit_var(fanin1)] + (fanin1 & 1)
            seq[index] = next_gate
            next_gate += 1
            gates.append((edge0, edge1))
        else:
            if index not in position:
                raise AigError(
                    f"cone input {aig.input_name(index)} is not among the "
                    "declared function inputs"
                )
            seq[index] = position[index]
    root_edge = 2 * seq[lit_var(root)] + (root & 1)
    return (len(inputs), tuple(gates), root_edge)


def canonical_cone_signature(
    aig: AIG, root: AigLiteral, inputs: Sequence[int]
) -> ConeSignature:
    """Fanin-commutative structural key of the cone of ``root``.

    Shaped ``(num_inputs, num_gates, root_edge)`` where ``root_edge`` is a
    hex BLAKE2b-128 digest prefixed with ``!`` when the root is complemented
    (or ``const0``/``const1`` for constant roots).  Each input's digest is
    its position in ``inputs``; each AND node's digest hashes its two fanin
    ``(digest, complemented)`` edges in sorted order, so two cones that are
    isomorphic up to AND-fanin order — matched positionally on their inputs
    — share one signature and compute the same Boolean function.

    The tuple contains only ints and strings, so it survives a JSON
    round-trip (modulo list/tuple conversion) and is stable across runs:
    exactly what :class:`PersistentConeCache` keys entries by.
    """
    if lit_var(root) == 0:
        return (len(inputs), 0, f"const{root & 1}")
    position: Dict[int, int] = {node: pos for pos, node in enumerate(inputs)}
    digests: Dict[int, bytes] = {}
    num_gates = 0
    for index in aig.cone_nodes([root]):
        if aig.is_and(index):
            fanin0, fanin1 = aig.fanins(index)
            edges = sorted(
                (digests[lit_var(fanin)], fanin & 1) for fanin in (fanin0, fanin1)
            )
            hasher = hashlib.blake2b(b"and", digest_size=16)
            for digest, complemented in edges:
                hasher.update(digest)
                hasher.update(b"!" if complemented else b".")
            digests[index] = hasher.digest()
            num_gates += 1
        else:
            if index not in position:
                raise AigError(
                    f"cone input {aig.input_name(index)} is not among the "
                    "declared function inputs"
                )
            digests[index] = hashlib.blake2b(
                b"in%d" % position[index], digest_size=16
            ).digest()
    root_edge = digests[lit_var(root)].hex()
    if root & 1:
        root_edge = "!" + root_edge
    return (len(inputs), num_gates, root_edge)


class ConeCache:
    """A memo cache with hit/miss accounting, keyed by hashable cone keys.

    The scheduler stores one entry per unique (signature, name-order) key;
    ``enabled=False`` turns every lookup into a miss so a single code path
    serves both the deduplicating and the always-recompute configurations.

    Entries installed through :meth:`warm` (from a persistent snapshot) are
    tracked separately: a lookup that hits one also bumps ``warm_hits``, the
    number the scheduler reports as persistent-cache hits.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.warm_hits = 0
        self._store: Dict[Hashable, object] = {}
        self._warmed: set = set()
        # Keys that served at least one hit this run — the recency signal
        # PersistentConeCache's LRU compaction keeps entries alive by.
        self.hit_keys: set = set()

    def __len__(self) -> int:
        return len(self._store)

    def contains(self, key: Hashable) -> bool:
        """Non-counting peek (the parallel scheduler's dispatch planning)."""
        return self.enabled and key in self._store

    def lookup(self, key: Hashable) -> Optional[object]:
        """Return the cached value or ``None``, updating hit/miss counters."""
        if not self.enabled:
            self.misses += 1
            return None
        value = self._store.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
            self.hit_keys.add(key)
            if key in self._warmed:
                self.warm_hits += 1
        return value

    def store(self, key: Hashable, value: object) -> None:
        if self.enabled:
            self._store[key] = value
            # A recomputed entry supersedes the warmed one; subsequent hits
            # are in-run dedup, not persistent-cache reuse.
            self._warmed.discard(key)

    def warm(self, key: Hashable, value: object) -> None:
        """Install an entry restored from a persistent snapshot."""
        if self.enabled:
            self._store[key] = value
            self._warmed.add(key)

    def items(self) -> Iterable[Tuple[Hashable, object]]:
        return self._store.items()

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "warm_hits": self.warm_hits,
        }


class PersistentConeCache:
    """A cross-run snapshot of replayable cone-cache entries (JSON on disk).

    One file holds any number of *contexts*; a context key is the stable
    string built by the scheduler from ``(operator, sorted engine set,
    EngineOptions.search_fingerprint())``.  Within a context, entries are
    keyed by the scheduler's in-memory cache key — ``(canonical signature,
    input-name sort permutation)`` — serialised to JSON.  Only replayable
    entries (no engine result timed out) are ever stored, mirroring the
    in-memory cache's memoisation rule, and the extracted sub-functions are
    *not* persisted: cache replay re-extracts ``fA``/``fB`` against the
    actual cone, so only the partition search outcome needs to survive.

    A missing, corrupted or version-incompatible file is treated as empty —
    a persistent cache can always be deleted (or lost) safely.

    ``max_entries`` bounds the snapshot for long-lived daemons: at save
    time, entries beyond the bound are evicted **least-recently-hit
    first** (each entry carries a ``"g"`` recency generation, bumped when
    a run actually replays it), so a service that decomposes an unbounded
    stream of circuits keeps its hottest cones and ``cone_cache.json``
    stops growing.  ``None`` (the default) keeps the historical unbounded
    behaviour, including the "fully-warm runs never rewrite the file"
    optimisation — recency is only tracked when a bound is set.
    """

    # Version 2: entry stats gained "decisions"/"propagations" (the solver
    # counters now feed result fingerprints, so replayed entries must carry
    # them).  Version-mismatched snapshots are discarded wholesale — a
    # persistent cache is always safe to lose.
    VERSION = 2

    def __init__(self, path: str, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise AigError(
                f"max_entries must be at least 1 (got {max_entries!r})"
            )
        self.path = path
        self.max_entries = max_entries
        self.loaded_entries = 0
        self.evicted_entries = 0
        # True when this instance holds recency bumps (not new entries)
        # that the snapshot file has not seen yet; save() clears it.
        self.dirty = False
        # Sessions share ONE instance across runs, and the live scheduler
        # warms (planning thread) while finalizes absorb/save (executor
        # hook threads): warm/absorb/save are each atomic under this lock.
        self._lock = threading.RLock()
        # (context, key_json) pairs stamped with the CURRENT generation
        # since the last save — re-stamped at save time if a concurrent
        # writer advanced the on-disk recency clock past ours.
        self._stamped: set = set()
        self._contexts: Dict[str, Dict[str, dict]] = {}
        self._load()

    # -- disk format ------------------------------------------------------------

    def _load(self) -> None:
        self._contexts = self._read(self.path)
        self.loaded_entries = sum(len(v) for v in self._contexts.values())
        # The recency clock: one tick per run that touches this snapshot,
        # resumed from the highest generation any stored entry carries.
        self._generation = 1 + max(
            (
                entry.get("g", 0)
                for entries in self._contexts.values()
                for entry in entries.values()
                if isinstance(entry.get("g", 0), int)
            ),
            default=0,
        )

    @classmethod
    def _read(cls, path: str) -> Dict[str, Dict[str, dict]]:
        """The snapshot's structurally valid contexts (empty on any error).

        Drops invalid contexts/entries up front so the per-entry decode in
        :meth:`warm` and the merges in :meth:`absorb` / :meth:`save` only
        ever see ``{key_json: dict}`` maps — a hand-edited or truncated
        file degrades to "fewer warm entries", never to a crash.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            # Missing file (first run) or corrupted JSON: treat as empty.
            return {}
        if not isinstance(payload, dict) or payload.get("version") != cls.VERSION:
            return {}
        contexts = payload.get("contexts")
        if not isinstance(contexts, dict):
            return {}
        return {
            context: {
                key: entry
                for key, entry in entries.items()
                if isinstance(key, str) and isinstance(entry, dict)
            }
            for context, entries in contexts.items()
            if isinstance(context, str) and isinstance(entries, dict)
        }

    def save(self) -> None:
        """Merge with the on-disk snapshot, then atomically rewrite it.

        The snapshot is **canonical**: all JSON object keys are emitted
        sorted, so runs that computed the same entries produce byte-
        identical ``cone_cache.json`` files whatever order they absorbed
        them in — snapshots can be diffed/content-hashed directly.

        Two guarantees for processes *sharing* one cache directory:

        * **No torn reads** — the payload is written to a pid-suffixed
          temp file and moved into place with :func:`os.replace`, so a
          concurrent reader sees either the old snapshot or the new one,
          never a partial file.
        * **No lost entries** — the snapshot is re-read immediately before
          writing and its entries are unioned in (keys this instance
          already holds win; entries are deterministic per context, so the
          difference is cosmetic).  A save can therefore only *add*
          entries relative to what any concurrent process last wrote —
          last-writer-wins clobbering across processes is gone, they
          accumulate.  The merge window between re-read and replace is not
          locked: two simultaneous saves can still each miss the other's
          newest entries, but whatever survives is a valid snapshot and
          the loser's entries are re-absorbed (and re-saved) by the next
          run that computes them — the failure mode degrades to "fewer
          warm hits", never to corruption.
        """
        with self._lock:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            merged_generation = 0
            for context, entries in self._read(self.path).items():
                mine = self._contexts.setdefault(context, {})
                for key, entry in entries.items():
                    mine.setdefault(key, entry)
                    merged_generation = max(
                        merged_generation, _entry_generation(entry)
                    )
            if (
                self.max_entries is not None
                and merged_generation >= self._generation
            ):
                # Another process advanced the recency clock past ours:
                # re-stamp THIS run's entries above the merged maximum, or
                # LRU compaction would rank our newest work as oldest and
                # evict it first (clock inversion across writers).
                # Sorted so the re-stamp walk (and any future side
                # effect of it) is order-deterministic across runs.
                for context, key_json in sorted(self._stamped):
                    entry = self._contexts.get(context, {}).get(key_json)
                    if entry is not None:
                        entry["g"] = merged_generation + 1
                self._generation = merged_generation + 1
            self._compact()
            payload = {"version": self.VERSION, "contexts": self._contexts}
            # pid + thread id: concurrent savers must never share a temp
            # file, and threads within one process are first-class writers
            # now that the thread execution backend exists.
            temp_path = f"{self.path}.tmp.{os.getpid()}.{threading.get_ident()}"
            with open(temp_path, "w", encoding="utf-8") as handle:
                # sort_keys canonicalises the snapshot: contexts, entry
                # keys and entry fields are emitted in sorted order, so
                # two runs that computed the same entries write byte-
                # identical files regardless of absorption order — CI's
                # warm-cache job diffs snapshots directly on that.
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_path, self.path)
            self.dirty = False
            self._stamped.clear()
            # Entries absorbed (or bumped) by the *next* run must sort as
            # more recent than anything this save wrote.
            self._generation += 1

    def _compact(self) -> None:
        """Evict least-recently-hit entries down to ``max_entries``.

        Eviction order is (recency generation, context, key) — fully
        deterministic, so concurrent savers with the same view converge on
        the same survivor set.  Entries written before compaction was
        enabled carry no generation and count as oldest.
        """
        if self.max_entries is None:
            return
        total = sum(len(entries) for entries in self._contexts.values())
        excess = total - self.max_entries
        if excess <= 0:
            return
        ranked = sorted(
            (_entry_generation(entries[key]), context, key)
            for context, entries in self._contexts.items()
            for key in entries
        )
        for _generation, context, key in ranked[:excess]:
            del self._contexts[context][key]
            if not self._contexts[context]:
                del self._contexts[context]
        self.evicted_entries += excess

    # -- cache interchange -------------------------------------------------------

    def warm(self, cache: ConeCache, context: str) -> int:
        """Install this context's decodable entries into ``cache``."""
        restored = 0
        with self._lock:
            entries = dict(self._contexts.get(context, {}))
        for key_json, entry in entries.items():
            try:
                key = _tuplify(json.loads(key_json))
                value = _decode_entry(entry)
            except (KeyError, TypeError, ValueError):
                continue  # one undecodable entry never poisons the rest
            cache.warm(key, value)
            restored += 1
        return restored

    def absorb(self, cache: ConeCache, context: str) -> int:
        """Merge a finished run's *new* cache entries into this context.

        Returns how many entries were actually added.  Keys already in the
        snapshot are skipped without re-encoding: a warmed key is never
        recomputed within a run (its lookups hit), so the stored entry is
        still current — which keeps a fully-warm run from re-serialising
        the whole snapshot, and lets the caller skip :meth:`save` entirely
        when nothing changed.

        With ``max_entries`` set, absorption also refreshes the recency
        generation of every stored entry the run actually *hit*, marking
        the instance :attr:`dirty` when only recency changed — the LRU
        signal compaction evicts by.  (Recency is not tracked unbounded:
        it would turn every fully-warm run into a snapshot rewrite for no
        benefit.)
        """
        with self._lock:
            return self._absorb_locked(cache, context)

    def _absorb_locked(self, cache: ConeCache, context: str) -> int:
        entries = self._contexts.setdefault(context, {})
        absorbed = 0
        track_recency = self.max_entries is not None
        for key, value in cache.items():
            key_json = json.dumps(key, separators=(",", ":"))
            if key_json in entries:
                if (
                    track_recency
                    and key in cache.hit_keys
                    and _entry_generation(entries[key_json]) != self._generation
                ):
                    entries[key_json]["g"] = self._generation
                    self._stamped.add((context, key_json))
                    self.dirty = True
                continue
            entry = _encode_entry(value)
            if track_recency:
                entry["g"] = self._generation
                self._stamped.add((context, key_json))
            entries[key_json] = entry
            absorbed += 1
        return absorbed


def _entry_generation(entry: dict) -> int:
    """An entry's recency generation (0 for pre-compaction snapshots)."""
    generation = entry.get("g", 0)
    return generation if isinstance(generation, int) else 0


def _tuplify(value):
    """Recursively convert JSON lists back into the hashable tuple form."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def _encode_entry(value) -> dict:
    """Serialise a ``(input_names, OutputResult)`` cache entry to JSON types."""
    input_names, record = value
    results = []
    for engine, result in record.results.items():
        partition = None
        if result.partition is not None:
            partition = {
                "xa": list(result.partition.xa),
                "xb": list(result.partition.xb),
                "xc": list(result.partition.xc),
            }
        stats = result.stats
        results.append(
            {
                "engine": engine,
                "operator": result.operator,
                "decomposed": result.decomposed,
                "partition": partition,
                "optimum_proven": result.optimum_proven,
                "stats": {
                    "sat_calls": stats.sat_calls,
                    "qbf_iterations": stats.qbf_iterations,
                    "qbf_calls": stats.qbf_calls,
                    "refinements": stats.refinements,
                    "conflicts": stats.conflicts,
                    "decisions": stats.decisions,
                    "propagations": stats.propagations,
                    "cache_hits": stats.cache_hits,
                    "bound_sequence": list(stats.bound_sequence),
                },
            }
        )
    return {
        "inputs": list(input_names),
        "circuit": record.circuit,
        "output_name": record.output_name,
        "num_support": record.num_support,
        "results": results,
    }


def _decode_entry(entry: dict):
    """Rebuild a ``(input_names, OutputResult)`` entry from its JSON form."""
    # Imported lazily: repro.core imports this module at import time, so a
    # module-level import here would be circular layering.
    from repro.core.partition import VariablePartition
    from repro.core.result import BiDecResult, OutputResult, SearchStatistics

    record = OutputResult(
        circuit=str(entry["circuit"]),
        output_name=str(entry["output_name"]),
        num_support=int(entry["num_support"]),
    )
    for item in entry["results"]:
        partition = None
        if item["partition"] is not None:
            partition = VariablePartition(
                tuple(item["partition"]["xa"]),
                tuple(item["partition"]["xb"]),
                tuple(item["partition"]["xc"]),
            )
        stats = SearchStatistics(
            sat_calls=int(item["stats"]["sat_calls"]),
            qbf_iterations=int(item["stats"]["qbf_iterations"]),
            qbf_calls=int(item["stats"]["qbf_calls"]),
            refinements=int(item["stats"]["refinements"]),
            conflicts=int(item["stats"]["conflicts"]),
            decisions=int(item["stats"]["decisions"]),
            propagations=int(item["stats"]["propagations"]),
            cache_hits=int(item["stats"]["cache_hits"]),
            bound_sequence=[int(b) for b in item["stats"]["bound_sequence"]],
        )
        record.results[str(item["engine"])] = BiDecResult(
            engine=str(item["engine"]),
            operator=str(item["operator"]),
            decomposed=bool(item["decomposed"]),
            partition=partition,
            optimum_proven=bool(item["optimum_proven"]),
            # Only replayable (untruncated) entries are ever persisted.
            timed_out=False,
            stats=stats,
        )
    return (tuple(str(name) for name in entry["inputs"]), record)
