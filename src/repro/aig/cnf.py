"""Tseitin encoding of AIG cones into CNF.

The bi-decomposition formulas of the paper instantiate the function under
decomposition several times (``f(X)``, ``f(X')``, ``f(X'')``); each
instantiation is an independent Tseitin copy of the same cone over a fresh
set of CNF variables for the internal nodes, sharing or renaming the input
variables as the formula requires.  :func:`cone_to_cnf` performs one such
copy and reports the variable mapping so callers can wire copies together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.aig.aig import AIG, AigLiteral, NODE_AND, lit_is_complemented, lit_var
from repro.errors import AigError
from repro.sat.cnf import CNF


@dataclass
class CnfMapping:
    """Mapping produced by one Tseitin copy of a cone.

    Attributes
    ----------
    output_literal:
        DIMACS literal equivalent to the copied root (may be negative when
        the root edge is complemented, or ``0``/``None``-like constants never
        occur — constant roots are encoded through a fresh fixed variable).
    input_vars:
        Maps AIG input node index -> CNF variable used for it in this copy.
    node_vars:
        Maps AIG AND-node index -> CNF variable of its Tseitin definition.
    """

    output_literal: int
    input_vars: Dict[int, int] = field(default_factory=dict)
    node_vars: Dict[int, int] = field(default_factory=dict)


def cone_to_cnf(
    aig: AIG,
    root: AigLiteral,
    cnf: CNF,
    input_vars: Optional[Dict[int, int]] = None,
) -> CnfMapping:
    """Encode the cone of ``root`` into ``cnf`` and return the mapping.

    Parameters
    ----------
    input_vars:
        Optional pre-assigned CNF variables for (some) input nodes; inputs
        not present are given fresh variables.  Passing the same dictionary
        to several calls shares those inputs between the copies, passing
        fresh dictionaries creates the instantiated (primed) copies of the
        paper's formulas.
    """
    mapping = CnfMapping(output_literal=0)
    mapping.input_vars = dict(input_vars) if input_vars else {}
    node_lits: Dict[int, int] = {}

    for index in aig.cone_nodes([root]):
        node = aig.node(index)
        if node.kind == NODE_AND:
            a = _edge_literal(node_lits, mapping.input_vars, node.fanin0)
            b = _edge_literal(node_lits, mapping.input_vars, node.fanin1)
            out = cnf.new_var()
            mapping.node_vars[index] = out
            node_lits[index] = out
            cnf.add_clause((-out, a))
            cnf.add_clause((-out, b))
            cnf.add_clause((out, -a, -b))
        else:
            if index not in mapping.input_vars:
                mapping.input_vars[index] = cnf.new_var()
            node_lits[index] = mapping.input_vars[index]

    if lit_var(root) == 0:
        # Constant root: introduce a variable fixed to the constant so callers
        # can still refer to "the output literal".  Literal 0 is FALSE and
        # literal 1 is TRUE.
        const_var = cnf.new_var()
        cnf.add_unit(const_var if root == 1 else -const_var)
        mapping.output_literal = const_var
        return mapping

    if lit_var(root) not in node_lits:
        raise AigError("root literal was not encoded (unmapped input?)")
    base = node_lits[lit_var(root)]
    mapping.output_literal = -base if lit_is_complemented(root) else base
    return mapping


def _edge_literal(
    node_lits: Dict[int, int], input_vars: Dict[int, int], lit: AigLiteral
) -> int:
    if lit_var(lit) == 0:
        raise AigError(
            "constant fanin encountered during CNF encoding; AIG construction "
            "should have propagated constants"
        )
    index = lit_var(lit)
    base = node_lits.get(index) or input_vars.get(index)
    if base is None:
        raise AigError(f"fanin node {index} encoded before its definition")
    return -base if lit_is_complemented(lit) else base
