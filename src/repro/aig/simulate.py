"""AIG simulation.

Two entry points are provided:

* :func:`simulate` — evaluate output literals under a single Boolean
  assignment to the inputs; and
* :func:`simulate_words` — bit-parallel simulation where every input carries
  an arbitrary-precision integer whose bits encode many assignment at once.
  Python integers act as unbounded machine words, so a single pass evaluates
  an entire (small) truth table or a random sample of patterns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.errors import AigError
from repro.aig.aig import (
    AIG,
    AigLiteral,
    NODE_AND,
    lit_is_complemented,
    lit_var,
)


def simulate(aig: AIG, assignment: Mapping[int, bool], lits: Sequence[AigLiteral]) -> List[bool]:
    """Evaluate ``lits`` under ``assignment`` (input node index -> bool)."""
    width_mask = 1
    words = {index: (1 if value else 0) for index, value in assignment.items()}
    results = simulate_words(aig, words, lits, width_mask)
    return [bool(value & 1) for value in results]


def simulate_words(
    aig: AIG,
    input_words: Mapping[int, int],
    lits: Sequence[AigLiteral],
    mask: int,
) -> List[int]:
    """Bit-parallel evaluation of ``lits``.

    Parameters
    ----------
    input_words:
        Maps input (or latch) node indices to integers; bit ``i`` of the word
        is the value of that input in pattern ``i``.
    mask:
        An all-ones integer as wide as the number of patterns; complemented
        edges are computed as ``word XOR mask``.
    """
    values: Dict[int, int] = {0: 0}
    for index in aig.cone_nodes(lits):
        node = aig.node(index)
        if node.kind == NODE_AND:
            f0 = _edge_value(values, node.fanin0, mask)
            f1 = _edge_value(values, node.fanin1, mask)
            values[index] = f0 & f1
        else:
            if index not in input_words:
                raise AigError(
                    f"no simulation value supplied for input {aig.input_name(index)}"
                )
            values[index] = input_words[index] & mask
    return [_edge_value(values, lit, mask) for lit in lits]


def _edge_value(values: Dict[int, int], lit: AigLiteral, mask: int) -> int:
    value = values[lit_var(lit)]
    return (value ^ mask) if lit_is_complemented(lit) else value


def exhaustive_patterns(num_inputs: int) -> tuple[List[int], int]:
    """Input words and mask enumerating all ``2 ** num_inputs`` patterns.

    Returns a list with one word per input (input ``k`` toggles with period
    ``2 ** k``) and the all-ones mask over ``2 ** num_inputs`` bits.  The
    words follow the usual truth-table convention: pattern index ``p`` assigns
    input ``k`` the value of bit ``k`` of ``p``.
    """
    if num_inputs < 0:
        raise AigError("num_inputs must be non-negative")
    num_patterns = 1 << num_inputs
    mask = (1 << num_patterns) - 1
    words = []
    for k in range(num_inputs):
        period = 1 << k
        word = 0
        for pattern in range(num_patterns):
            if (pattern >> k) & 1:
                word |= 1 << pattern
        words.append(word)
    return words, mask
