"""Single-output completely specified Boolean functions.

A :class:`BooleanFunction` bundles an AIG, a root literal inside it and an
ordered list of input nodes.  It is the object the bi-decomposition engine
manipulates: the paper's ``f(X)`` as well as the extracted ``fA`` and ``fB``
are all instances of this class.  The class offers evaluation, truth tables,
cofactors, Boolean quantification, composition with other functions and CNF
encoding — the services that ABC provides to the original STEP tool.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.aig.aig import AIG, AigLiteral, FALSE_LIT, TRUE_LIT, lit_neg
from repro.aig.cnf import CnfMapping, cone_to_cnf
from repro.aig.simulate import exhaustive_patterns, simulate, simulate_words
from repro.aig.support import functional_support, structural_support
from repro.errors import AigError
from repro.sat.cnf import CNF


class BooleanFunction:
    """A completely specified function ``f : B^n -> B`` backed by an AIG cone."""

    def __init__(self, aig: AIG, root: AigLiteral, inputs: Sequence[int]) -> None:
        self.aig = aig
        self.root = root
        self.inputs: List[int] = list(inputs)
        cone_inputs = set(structural_support(aig, root))
        missing = cone_inputs - set(self.inputs)
        if missing:
            names = ", ".join(sorted(aig.input_name(i) for i in missing))
            raise AigError(f"function inputs do not cover the cone (missing: {names})")

    # -- constructors --------------------------------------------------------------

    @classmethod
    def from_output(cls, aig: AIG, output: int | str) -> "BooleanFunction":
        """Wrap a primary output of ``aig`` (by index or by name).

        The input list is restricted to the output's structural support, in
        the AIG's input creation order, which matches how STEP decomposes
        each PO over its own support.
        """
        if isinstance(output, str):
            candidates = [lit for name, lit in aig.outputs if name == output]
            if not candidates:
                raise AigError(f"no output named {output!r}")
            root = candidates[0]
        else:
            root = aig.outputs[output][1]
        support = set(structural_support(aig, root))
        ordered = [i for i in aig.inputs + aig.latches if i in support]
        return cls(aig, root, ordered)

    @classmethod
    def from_truth_table(
        cls, table: int, num_inputs: int, input_names: Optional[Sequence[str]] = None
    ) -> "BooleanFunction":
        """Build a function from a truth table given as a bit mask.

        Bit ``p`` of ``table`` is the value of the function on the input
        pattern whose bit ``k`` is the value of input ``k``.
        """
        if num_inputs < 0:
            raise AigError("num_inputs must be non-negative")
        if table < 0 or table >= (1 << (1 << num_inputs)):
            raise AigError("truth table does not fit the declared input count")
        aig = AIG("tt")
        names = list(input_names) if input_names else [f"x{i}" for i in range(num_inputs)]
        if len(names) != num_inputs:
            raise AigError("input_names length must match num_inputs")
        lits = [aig.add_input(name) for name in names]
        root = _shannon_from_table(aig, table, lits, num_inputs)
        aig.add_output("f", root)
        return cls(aig, root, aig.inputs)

    @classmethod
    def constant(cls, value: bool) -> "BooleanFunction":
        aig = AIG("const")
        root = TRUE_LIT if value else FALSE_LIT
        aig.add_output("f", root)
        return cls(aig, root, [])

    # -- basic queries ----------------------------------------------------------------

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    @property
    def input_names(self) -> List[str]:
        return [self.aig.input_name(i) for i in self.inputs]

    def input_index(self, name: str) -> int:
        """Position of the named input in this function's input order."""
        for position, node in enumerate(self.inputs):
            if self.aig.input_name(node) == name:
                return position
        raise AigError(f"no input named {name!r}")

    def support(self, functional: bool = True) -> List[int]:
        """Input node indices the function depends on."""
        if functional:
            return functional_support(self.aig, self.root)
        return structural_support(self.aig, self.root)

    def support_names(self, functional: bool = True) -> List[str]:
        return [self.aig.input_name(i) for i in self.support(functional=functional)]

    def is_constant(self) -> Optional[bool]:
        """``True``/``False`` when the function is constant, else ``None``."""
        if self.root == TRUE_LIT:
            return True
        if self.root == FALSE_LIT:
            return False
        if self.num_inputs <= 16:
            table = self.truth_table()
            full = (1 << (1 << self.num_inputs)) - 1
            if table == 0:
                return False
            if table == full:
                return True
            return None
        return None

    # -- evaluation --------------------------------------------------------------------

    def evaluate(self, values: Sequence[bool] | Mapping[str, bool]) -> bool:
        """Evaluate under an assignment (positional list or name -> value map)."""
        assignment = self._assignment_from(values)
        (result,) = simulate(self.aig, assignment, [self.root])
        return result

    def truth_table(self) -> int:
        """Exhaustive truth table as an integer bit mask (inputs in order)."""
        if self.num_inputs > 24:
            raise AigError("truth table requested for a function with > 24 inputs")
        words, mask = exhaustive_patterns(self.num_inputs)
        input_words = {node: words[i] for i, node in enumerate(self.inputs)}
        (value,) = simulate_words(self.aig, input_words, [self.root], mask)
        return value

    def count_minterms(self) -> int:
        """Number of satisfying input patterns (onset size)."""
        return bin(self.truth_table()).count("1")

    def _assignment_from(
        self, values: Sequence[bool] | Mapping[str, bool]
    ) -> Dict[int, bool]:
        if isinstance(values, Mapping):
            assignment = {}
            for name, value in values.items():
                assignment[self.aig.input_by_name(name)] = bool(value)
            return assignment
        if len(values) != self.num_inputs:
            raise AigError(
                f"expected {self.num_inputs} input values, got {len(values)}"
            )
        return {node: bool(v) for node, v in zip(self.inputs, values)}

    # -- functional operations ------------------------------------------------------------

    def cofactor(self, input_name: str, value: bool) -> "BooleanFunction":
        """Shannon cofactor with respect to the named input."""
        node = self.aig.input_by_name(input_name)
        input_map = {i: (2 * i) for i in self.inputs}
        input_map[node] = TRUE_LIT if value else FALSE_LIT
        new_root = self.aig.copy_cone(self.root, self.aig, input_map)
        remaining = [i for i in self.inputs if i != node]
        return BooleanFunction(self.aig, new_root, remaining)

    def exists(self, input_names: Iterable[str]) -> "BooleanFunction":
        """Existential quantification over the named inputs."""
        return self._quantify(input_names, universal=False)

    def forall(self, input_names: Iterable[str]) -> "BooleanFunction":
        """Universal quantification over the named inputs."""
        return self._quantify(input_names, universal=True)

    def _quantify(self, input_names: Iterable[str], universal: bool) -> "BooleanFunction":
        result = self
        for name in input_names:
            positive = result.cofactor(name, True)
            negative = result.cofactor(name, False)
            if universal:
                combined_root = result.aig.add_and(positive.root, negative.root)
            else:
                combined_root = result.aig.lor(positive.root, negative.root)
            remaining = [i for i in result.inputs if result.aig.input_name(i) != name]
            result = BooleanFunction(result.aig, combined_root, remaining)
        return result

    def negate(self) -> "BooleanFunction":
        return BooleanFunction(self.aig, lit_neg(self.root), self.inputs)

    def restrict_inputs(self, input_names: Sequence[str]) -> "BooleanFunction":
        """Re-declare the input list (must still cover the cone)."""
        nodes = [self.aig.input_by_name(name) for name in input_names]
        return BooleanFunction(self.aig, self.root, nodes)

    # -- combination -----------------------------------------------------------------------

    def combine(self, other: "BooleanFunction", operator: str) -> "BooleanFunction":
        """Combine with another function through a two-input gate.

        Inputs are matched *by name*; the result lives in a fresh AIG whose
        inputs are the union of both operands' inputs (this function's inputs
        first).  ``operator`` is one of ``"or"``, ``"and"``, ``"xor"``.
        """
        target = AIG(f"{self.aig.name}_{operator}")
        name_to_lit: Dict[str, AigLiteral] = {}
        ordered_names: List[str] = []
        for source in (self, other):
            for node in source.inputs:
                name = source.aig.input_name(node)
                if name not in name_to_lit:
                    name_to_lit[name] = target.add_input(name)
                    ordered_names.append(name)
        left = self.copy_into(target, name_to_lit)
        right = other.copy_into(target, name_to_lit)
        if operator == "or":
            root = target.lor(left, right)
        elif operator == "and":
            root = target.add_and(left, right)
        elif operator == "xor":
            root = target.lxor(left, right)
        else:
            raise AigError(f"unsupported operator {operator!r}")
        target.add_output("f", root)
        return BooleanFunction(
            target, root, [target.input_by_name(name) for name in ordered_names]
        )

    def copy_into(self, target: AIG, name_to_lit: Mapping[str, AigLiteral]) -> AigLiteral:
        """Copy this function's cone into ``target`` using named input literals."""
        input_map = {}
        for node in self.inputs:
            name = self.aig.input_name(node)
            if name not in name_to_lit:
                raise AigError(f"target AIG does not define input {name!r}")
            input_map[node] = name_to_lit[name]
        return self.aig.copy_cone(self.root, target, input_map)

    # -- CNF -------------------------------------------------------------------------------

    def to_cnf(
        self, cnf: CNF, input_vars: Optional[Dict[int, int]] = None
    ) -> CnfMapping:
        """Tseitin-encode the function into ``cnf`` (see :func:`cone_to_cnf`)."""
        return cone_to_cnf(self.aig, self.root, cnf, input_vars=input_vars)

    # -- comparisons ------------------------------------------------------------------------

    def semantically_equal(self, other: "BooleanFunction") -> bool:
        """Check functional equivalence (inputs matched by name).

        Uses truth tables for small supports and a SAT miter otherwise.
        """
        union_names = sorted(set(self.input_names) | set(other.input_names))
        if len(union_names) <= 16:
            return self._table_over(union_names) == other._table_over(union_names)
        from repro.sat.solver import Solver  # local import to avoid cycles at import time

        cnf = CNF()
        name_vars = {name: cnf.new_var() for name in union_names}
        lit_self = self._cnf_over(cnf, name_vars)
        lit_other = other._cnf_over(cnf, name_vars)
        xor_out = cnf.new_var()
        from repro.sat.tseitin import encode_xor

        encode_xor(cnf, xor_out, lit_self, lit_other)
        cnf.add_unit(xor_out)
        solver = Solver()
        solver.add_cnf(cnf)
        return solver.solve().status is False

    def _table_over(self, names: Sequence[str]) -> int:
        """Truth table with respect to an explicit (possibly larger) input order."""
        own = set(self.input_names)
        words, mask = exhaustive_patterns(len(names))
        input_words = {}
        for i, name in enumerate(names):
            if name in own:
                input_words[self.aig.input_by_name(name)] = words[i]
        for node in self.inputs:
            if self.aig.input_name(node) not in set(names):
                raise AigError(
                    f"input {self.aig.input_name(node)} missing from comparison order"
                )
        (value,) = simulate_words(self.aig, input_words, [self.root], mask)
        return value

    def _cnf_over(self, cnf: CNF, name_vars: Mapping[str, int]) -> int:
        input_vars = {
            node: name_vars[self.aig.input_name(node)] for node in self.inputs
        }
        mapping = self.to_cnf(cnf, input_vars=input_vars)
        return mapping.output_literal

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BooleanFunction(inputs={self.input_names}, "
            f"aig_nodes={self.aig.num_nodes})"
        )


def _shannon_from_table(aig: AIG, table: int, lits: List[AigLiteral], num_inputs: int) -> AigLiteral:
    """Recursive Shannon expansion of a truth table into AND/INV nodes."""
    if num_inputs == 0:
        return TRUE_LIT if table & 1 else FALSE_LIT
    half = 1 << (num_inputs - 1)
    low_mask = (1 << half) - 1
    # The top input is the one with the longest period: input num_inputs-1.
    negative = table & low_mask
    positive = (table >> half) & low_mask
    hi = _shannon_from_table(aig, positive, lits, num_inputs - 1)
    lo = _shannon_from_table(aig, negative, lits, num_inputs - 1)
    return aig.mux(lits[num_inputs - 1], hi, lo)
