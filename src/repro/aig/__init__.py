"""And-Inverter Graph (AIG) circuit substrate.

The paper's tool STEP uses ABC for circuit manipulation: every primary
output is represented as an AIG, sequential circuits are made combinational,
and per-output cones are extracted and encoded to CNF.  This subpackage is a
pure-Python replacement providing exactly those services:

* :class:`repro.aig.aig.AIG` — the structurally hashed graph with constant
  propagation, primary inputs/outputs and latches.
* :class:`repro.aig.function.BooleanFunction` — a single-output completely
  specified function (an AIG cone plus an ordered input list), the object
  the bi-decomposition engine works on.
* :mod:`repro.aig.simulate` — bit-parallel simulation.
* :mod:`repro.aig.cnf` — Tseitin encoding of cones into CNF.
* :mod:`repro.aig.support` — structural and functional support computation.
* :mod:`repro.aig.signature` — structural cone signatures (exact and
  canonical/fanin-commutative), the memo cache behind the batch scheduler's
  duplicate-cone dedup, and its persistent cross-run snapshot.
"""

from repro.aig.aig import AIG, AigLiteral, FALSE_LIT, TRUE_LIT
from repro.aig.function import BooleanFunction
from repro.aig.cnf import cone_to_cnf, CnfMapping
from repro.aig.signature import (
    ConeCache,
    PersistentConeCache,
    canonical_cone_signature,
    cone_signature,
)
from repro.aig.simulate import simulate, simulate_words
from repro.aig.support import structural_support, functional_support

__all__ = [
    "AIG",
    "AigLiteral",
    "FALSE_LIT",
    "TRUE_LIT",
    "BooleanFunction",
    "cone_to_cnf",
    "CnfMapping",
    "ConeCache",
    "PersistentConeCache",
    "canonical_cone_signature",
    "cone_signature",
    "simulate",
    "simulate_words",
    "structural_support",
    "functional_support",
]
