"""Support computation for AIG literals.

Two notions of support are relevant to the paper's experiments:

* the *structural* support — inputs reachable in the transitive fanin of an
  output — which defines the paper's ``#InM`` statistic (maximum number of
  support variables among the primary outputs); and
* the *functional* support — inputs the function actually depends on — which
  is what bi-decomposition partitions.  Structural support over-approximates
  functional support; the difference matters for redundantly built circuits.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.aig.aig import AIG, AigLiteral
from repro.aig.simulate import exhaustive_patterns, simulate_words


def structural_support(aig: AIG, lit: AigLiteral) -> List[int]:
    """Input/latch node indices in the transitive fanin of ``lit``.

    The result is sorted by node index, i.e. by input creation order.
    """
    return sorted(index for index in aig.cone_nodes([lit]) if aig.is_input(index))


def functional_support(aig: AIG, lit: AigLiteral, max_inputs: int = 20) -> List[int]:
    """Inputs the function of ``lit`` truly depends on.

    Computed exactly by exhaustive bit-parallel simulation over the
    structural support, which is practical for cones with at most
    ``max_inputs`` structural support variables (the default of 20 gives
    one-million-bit words).  For wider cones the structural support is
    returned unchanged, mirroring what SAT-based tools do in practice.
    """
    support = structural_support(aig, lit)
    if len(support) > max_inputs:
        return support
    words, mask = exhaustive_patterns(len(support))
    input_words = {node: words[i] for i, node in enumerate(support)}
    (base,) = simulate_words(aig, input_words, [lit], mask)
    essential: List[int] = []
    for i, node in enumerate(support):
        flipped = dict(input_words)
        flipped[node] = input_words[node] ^ mask
        (value,) = simulate_words(aig, flipped, [lit], mask)
        if value != base:
            essential.append(node)
    return essential


def max_output_support(aig: AIG) -> int:
    """The paper's ``#InM``: the largest structural support over all POs."""
    best = 0
    for _, lit in aig.outputs:
        best = max(best, len(structural_support(aig, lit)))
    return best
