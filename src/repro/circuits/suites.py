"""Experiment suites: the circuits the benchmark harnesses decompose.

The paper's tables run over 145 industrial circuits (ISCAS'85/'89, ITC'99,
LGSYNTH) filtered to rows with more than 30 support variables per output.
Those files cannot be redistributed here, so each paper row is mapped to a
*synthetic stand-in* with a comparable structure (arithmetic, control,
parity, random logic) but scaled down so the pure-Python SAT/QBF stack can
decompose every output within benchmark time.  The mapping is recorded in
:func:`paper_row_mapping` and surfaced in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.aig.aig import AIG
from repro.aig.support import max_output_support
from repro.circuits import generators
from repro.circuits.library import classic_circuit
from repro.errors import ReproError


@dataclass
class BenchmarkCircuit:
    """A circuit participating in an experiment suite.

    Attributes
    ----------
    name:
        The paper circuit this entry stands in for (e.g. ``"C7552"``).
    aig:
        The combinational stand-in circuit.
    stand_in:
        Human-readable description of the generator used.
    paper_stats:
        The ``#In`` / ``#InM`` / ``#Out`` columns of the paper's Table I for
        the original circuit (for the report tables).
    """

    name: str
    aig: AIG
    stand_in: str
    paper_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def num_inputs(self) -> int:
        return len(self.aig.inputs)

    @property
    def num_outputs(self) -> int:
        return len(self.aig.outputs)

    @property
    def max_support(self) -> int:
        return max_output_support(self.aig)


def _scale(scale: str) -> int:
    if scale == "small":
        return 0
    if scale == "medium":
        return 1
    if scale == "large":
        return 2
    raise ReproError(f"unknown suite scale {scale!r} (use small, medium or large)")


def _build_rows(extra: int) -> List[BenchmarkCircuit]:
    """Instantiate the stand-in circuits; ``extra`` widens every generator."""

    def comb(aig: AIG) -> AIG:
        return aig.make_combinational()

    rows = [
        BenchmarkCircuit(
            name="C7552",
            aig=generators.alu_slice(3 + extra, name="C7552_syn"),
            stand_in=f"ALU slice, width {3 + extra} (arithmetic/logic mix)",
            paper_stats={"#In": 207, "#InM": 194, "#Out": 108},
        ),
        BenchmarkCircuit(
            name="s15850.1",
            aig=generators.comparator(5 + extra, name="s15850_syn"),
            stand_in=f"unsigned comparator, width {5 + extra}",
            paper_stats={"#In": 611, "#InM": 183, "#Out": 684},
        ),
        BenchmarkCircuit(
            name="s38584.1",
            aig=generators.random_dnf(12 + extra, 18, 4, seed="s38584", name="s38584_syn"),
            stand_in=f"random DNF, {12 + extra} inputs, 18 cubes",
            paper_stats={"#In": 1464, "#InM": 147, "#Out": 1730},
        ),
        BenchmarkCircuit(
            name="C2670",
            aig=generators.carry_lookahead_adder(4 + extra, name="C2670_syn"),
            stand_in=f"carry-lookahead adder, width {4 + extra}",
            paper_stats={"#In": 233, "#InM": 119, "#Out": 140},
        ),
        BenchmarkCircuit(
            name="i10",
            aig=generators.multiplier(3 + extra, name="i10_syn"),
            stand_in=f"array multiplier, width {3 + extra}",
            paper_stats={"#In": 257, "#InM": 108, "#Out": 224},
        ),
        BenchmarkCircuit(
            name="s38417",
            aig=generators.random_aig(12 + extra, 60, 5, seed="s38417", name="s38417_syn"),
            stand_in=f"random AIG, {12 + extra} inputs, 60 gates",
            paper_stats={"#In": 1664, "#InM": 99, "#Out": 1742},
        ),
        BenchmarkCircuit(
            name="s9234.1",
            aig=generators.mux_tree(3 + extra, name="s9234_syn"),
            stand_in=f"{2 ** (3 + extra)}-to-1 multiplexer tree",
            paper_stats={"#In": 247, "#InM": 83, "#Out": 250},
        ),
        BenchmarkCircuit(
            name="rot",
            aig=generators.majority(7 + 2 * extra, name="rot_syn"),
            stand_in=f"majority voter over {7 + 2 * extra} inputs",
            paper_stats={"#In": 135, "#InM": 63, "#Out": 107},
        ),
        BenchmarkCircuit(
            name="s5378",
            aig=generators.decoder(3 + extra, name="s5378_syn"),
            stand_in=f"{3 + extra}-to-{2 ** (3 + extra)} decoder with enable",
            paper_stats={"#In": 199, "#InM": 60, "#Out": 213},
        ),
        BenchmarkCircuit(
            name="s1423",
            aig=generators.ripple_carry_adder(5 + extra, name="s1423_syn"),
            stand_in=f"ripple-carry adder, width {5 + extra}",
            paper_stats={"#In": 91, "#InM": 59, "#Out": 79},
        ),
        BenchmarkCircuit(
            name="pair",
            aig=generators.random_dnf(10 + extra, 14, 3, seed="pair", name="pair_syn"),
            stand_in=f"random DNF, {10 + extra} inputs, 14 cubes",
            paper_stats={"#In": 173, "#InM": 53, "#Out": 137},
        ),
        BenchmarkCircuit(
            name="C880",
            aig=generators.alu_slice(2 + extra, name="C880_syn"),
            stand_in=f"ALU slice, width {2 + extra}",
            paper_stats={"#In": 60, "#InM": 45, "#Out": 26},
        ),
        BenchmarkCircuit(
            name="clma",
            aig=generators.random_aig(11 + extra, 45, 4, seed="clma", name="clma_syn"),
            stand_in=f"random AIG, {11 + extra} inputs, 45 gates",
            paper_stats={"#In": 415, "#InM": 42, "#Out": 115},
        ),
        BenchmarkCircuit(
            name="ITC_b07",
            aig=comb(classic_circuit("seq_ctrl")),
            stand_in="small sequential controller, made combinational",
            paper_stats={"#In": 49, "#InM": 42, "#Out": 57},
        ),
        BenchmarkCircuit(
            name="ITC_b12",
            aig=generators.parity_tree(9 + 2 * extra, name="b12_syn"),
            stand_in=f"parity tree over {9 + 2 * extra} inputs",
            paper_stats={"#In": 125, "#InM": 37, "#Out": 127},
        ),
        BenchmarkCircuit(
            name="sbc",
            aig=_or_decomposable(extra, "sbc"),
            stand_in="OR-decomposable by construction (known optimum)",
            paper_stats={"#In": 68, "#InM": 35, "#Out": 84},
        ),
        BenchmarkCircuit(
            name="mm9a",
            aig=_known_decomposable("or", extra, "mm9a"),
            stand_in="f = gA(XA, XC) OR gB(XB, XC) with |XC| = 2",
            paper_stats={"#In": 39, "#InM": 31, "#Out": 36},
        ),
        BenchmarkCircuit(
            name="mm9b",
            aig=_known_decomposable("and", extra, "mm9b"),
            stand_in="f = gA(XA, XC) AND gB(XB, XC) with |XC| = 2",
            paper_stats={"#In": 38, "#InM": 31, "#Out": 35},
        ),
    ]
    return rows


def _known_decomposable(operator: str, extra: int, seed: str) -> AIG:
    aig, _, _, _ = generators.decomposable_by_construction(
        operator, 4 + extra, 4 + extra, 2, seed=seed, name=f"{seed}_syn"
    )
    return aig


def _or_decomposable(extra: int, seed: str) -> AIG:
    aig, _, _, _ = generators.decomposable_by_construction(
        "or", 3 + extra, 3 + extra, 0, seed=seed, name=f"{seed}_syn"
    )
    return aig


def quality_suite(scale: str = "small") -> List[BenchmarkCircuit]:
    """The circuits used by the Table I / Table II quality experiments."""
    return _build_rows(_scale(scale))


def performance_suite(scale: str = "small") -> List[BenchmarkCircuit]:
    """The circuits used by Table III / Table IV and the Figure 1 scatter."""
    return _build_rows(_scale(scale))


def paper_row_mapping() -> Dict[str, str]:
    """Paper circuit name -> description of the synthetic stand-in."""
    return {row.name: row.stand_in for row in _build_rows(0)}
