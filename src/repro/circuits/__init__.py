"""Benchmark circuits: generators, an embedded classic-circuit library and
the experiment suites.

The paper evaluates on ISCAS'85, ISCAS'89, ITC'99 and LGSYNTH circuits.
Those benchmark files are not redistributable with this reproduction, so the
experiments run on (a) a small embedded library of classic public circuits
(:mod:`repro.circuits.library`) and (b) parameterised generators
(:mod:`repro.circuits.generators`) producing circuits whose per-output
support sizes span the range the paper's ``#InM > 30`` filter targets,
scaled down to what a pure-Python SAT/QBF stack handles in benchmark time.
:mod:`repro.circuits.suites` assembles the named suites used by the
Table I–IV and Figure 1 harnesses and records the mapping from paper
circuit rows to their synthetic stand-ins.
"""

from repro.circuits.generators import (
    ripple_carry_adder,
    carry_lookahead_adder,
    comparator,
    parity_tree,
    mux_tree,
    decoder,
    majority,
    alu_slice,
    multiplier,
    random_aig,
    random_dnf,
    decomposable_by_construction,
)
from repro.circuits.library import classic_circuit, classic_circuit_names
from repro.circuits.suites import (
    BenchmarkCircuit,
    quality_suite,
    performance_suite,
    paper_row_mapping,
)

__all__ = [
    "ripple_carry_adder",
    "carry_lookahead_adder",
    "comparator",
    "parity_tree",
    "mux_tree",
    "decoder",
    "majority",
    "alu_slice",
    "multiplier",
    "random_aig",
    "random_dnf",
    "decomposable_by_construction",
    "classic_circuit",
    "classic_circuit_names",
    "BenchmarkCircuit",
    "quality_suite",
    "performance_suite",
    "paper_row_mapping",
]
