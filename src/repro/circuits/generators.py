"""Parameterised circuit generators.

Each generator returns an :class:`repro.aig.aig.AIG` whose primary outputs
are meaningful decomposition targets.  Arithmetic circuits (adders,
comparators, ALU slices) produce outputs that are OR/AND/XOR decomposable in
interesting, non-trivial ways; parity and majority stress the XOR and
threshold cases; the random generators provide unstructured instances; and
:func:`decomposable_by_construction` builds functions whose optimal partition
is known exactly, which the tests use as ground truth.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.aig.aig import AIG, AigLiteral, FALSE_LIT, TRUE_LIT
from repro.errors import AigError
from repro.utils.rng import deterministic_rng


def _inputs(aig: AIG, prefix: str, count: int) -> List[AigLiteral]:
    return [aig.add_input(f"{prefix}{i}") for i in range(count)]


def ripple_carry_adder(width: int, name: Optional[str] = None) -> AIG:
    """A ``width``-bit ripple-carry adder: outputs ``s0..s{width-1}`` and ``cout``."""
    if width < 1:
        raise AigError("adder width must be at least 1")
    aig = AIG(name or f"rca{width}")
    a = _inputs(aig, "a", width)
    b = _inputs(aig, "b", width)
    carry = FALSE_LIT
    for i in range(width):
        axb = aig.lxor(a[i], b[i])
        aig.add_output(f"s{i}", aig.lxor(axb, carry))
        carry = aig.lor(aig.add_and(a[i], b[i]), aig.add_and(axb, carry))
    aig.add_output("cout", carry)
    return aig


def carry_lookahead_adder(width: int, name: Optional[str] = None) -> AIG:
    """A carry-lookahead adder; logically equivalent to the ripple version."""
    if width < 1:
        raise AigError("adder width must be at least 1")
    aig = AIG(name or f"cla{width}")
    a = _inputs(aig, "a", width)
    b = _inputs(aig, "b", width)
    generate = [aig.add_and(a[i], b[i]) for i in range(width)]
    propagate = [aig.lxor(a[i], b[i]) for i in range(width)]
    carries = [FALSE_LIT]
    for i in range(width):
        # c_{i+1} = g_i OR (p_i AND c_i), fully expanded.
        carries.append(aig.lor(generate[i], aig.add_and(propagate[i], carries[i])))
    for i in range(width):
        aig.add_output(f"s{i}", aig.lxor(propagate[i], carries[i]))
    aig.add_output("cout", carries[width])
    return aig


def comparator(width: int, name: Optional[str] = None) -> AIG:
    """An unsigned comparator with ``eq``, ``lt`` and ``gt`` outputs."""
    if width < 1:
        raise AigError("comparator width must be at least 1")
    aig = AIG(name or f"cmp{width}")
    a = _inputs(aig, "a", width)
    b = _inputs(aig, "b", width)
    eq = TRUE_LIT
    lt = FALSE_LIT
    gt = FALSE_LIT
    for i in reversed(range(width)):
        bit_eq = aig.lxnor(a[i], b[i])
        bit_lt = aig.add_and(a[i] ^ 1, b[i])
        bit_gt = aig.add_and(a[i], b[i] ^ 1)
        lt = aig.lor(lt, aig.add_and(eq, bit_lt))
        gt = aig.lor(gt, aig.add_and(eq, bit_gt))
        eq = aig.add_and(eq, bit_eq)
    aig.add_output("eq", eq)
    aig.add_output("lt", lt)
    aig.add_output("gt", gt)
    return aig


def parity_tree(width: int, name: Optional[str] = None) -> AIG:
    """XOR parity of ``width`` inputs (the canonical XOR bi-decomposition case)."""
    if width < 1:
        raise AigError("parity width must be at least 1")
    aig = AIG(name or f"parity{width}")
    bits = _inputs(aig, "x", width)
    aig.add_output("p", aig.lxor_list(bits))
    return aig


def mux_tree(select_bits: int, name: Optional[str] = None) -> AIG:
    """A ``2**select_bits``-to-1 multiplexer."""
    if select_bits < 1:
        raise AigError("mux needs at least one select bit")
    aig = AIG(name or f"mux{select_bits}")
    selects = _inputs(aig, "s", select_bits)
    data = _inputs(aig, "d", 1 << select_bits)
    level = list(data)
    for s in range(select_bits):
        level = [
            aig.mux(selects[s], level[2 * i + 1], level[2 * i])
            for i in range(len(level) // 2)
        ]
    aig.add_output("y", level[0])
    return aig


def decoder(width: int, name: Optional[str] = None) -> AIG:
    """A ``width``-to-``2**width`` one-hot decoder with an enable input."""
    if width < 1:
        raise AigError("decoder width must be at least 1")
    aig = AIG(name or f"dec{width}")
    enable = aig.add_input("en")
    select = _inputs(aig, "s", width)
    for value in range(1 << width):
        factors = [enable]
        for bit in range(width):
            lit = select[bit]
            factors.append(lit if (value >> bit) & 1 else lit ^ 1)
        aig.add_output(f"o{value}", aig.land_list(factors))
    return aig


def majority(width: int, name: Optional[str] = None) -> AIG:
    """Majority (more than half the inputs true); width should be odd."""
    if width < 1:
        raise AigError("majority width must be at least 1")
    aig = AIG(name or f"maj{width}")
    bits = _inputs(aig, "x", width)
    threshold = width // 2 + 1
    # Dynamic-programming unary counter: count[k] = "at least k of the first i".
    at_least = [TRUE_LIT] + [FALSE_LIT] * width
    for bit in bits:
        updated = [TRUE_LIT]
        for k in range(1, width + 1):
            updated.append(aig.lor(at_least[k], aig.add_and(at_least[k - 1], bit)))
        at_least = updated
    aig.add_output("maj", at_least[threshold])
    return aig


def alu_slice(width: int, name: Optional[str] = None) -> AIG:
    """A small ALU: op-select picks AND / OR / XOR / ADD over two operands."""
    if width < 1:
        raise AigError("ALU width must be at least 1")
    aig = AIG(name or f"alu{width}")
    op0 = aig.add_input("op0")
    op1 = aig.add_input("op1")
    a = _inputs(aig, "a", width)
    b = _inputs(aig, "b", width)
    carry = FALSE_LIT
    for i in range(width):
        and_bit = aig.add_and(a[i], b[i])
        or_bit = aig.lor(a[i], b[i])
        xor_bit = aig.lxor(a[i], b[i])
        add_bit = aig.lxor(xor_bit, carry)
        carry = aig.lor(and_bit, aig.add_and(xor_bit, carry))
        low = aig.mux(op0, or_bit, and_bit)
        high = aig.mux(op0, add_bit, xor_bit)
        aig.add_output(f"y{i}", aig.mux(op1, high, low))
    aig.add_output("cout", carry)
    return aig


def multiplier(width: int, name: Optional[str] = None) -> AIG:
    """An array multiplier producing ``2 * width`` product bits."""
    if width < 1:
        raise AigError("multiplier width must be at least 1")
    aig = AIG(name or f"mul{width}")
    a = _inputs(aig, "a", width)
    b = _inputs(aig, "b", width)
    columns: List[List[AigLiteral]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(aig.add_and(a[i], b[j]))
    carry_over: List[AigLiteral] = []
    for position in range(2 * width):
        bits = columns[position] + carry_over
        carry_over = []
        while len(bits) > 1:
            if len(bits) >= 3:
                x, y, z = bits.pop(), bits.pop(), bits.pop()
                s = aig.lxor(aig.lxor(x, y), z)
                c = aig.lor(aig.add_and(x, y), aig.add_and(z, aig.lxor(x, y)))
            else:
                x, y = bits.pop(), bits.pop()
                s = aig.lxor(x, y)
                c = aig.add_and(x, y)
            bits.append(s)
            carry_over.append(c)
        aig.add_output(f"p{position}", bits[0] if bits else FALSE_LIT)
    return aig


def random_aig(
    num_inputs: int,
    num_gates: int,
    num_outputs: int = 1,
    seed: int | str = 0,
    name: Optional[str] = None,
) -> AIG:
    """A random structurally hashed AIG (unstructured workload)."""
    if num_inputs < 1 or num_gates < 1 or num_outputs < 1:
        raise AigError("random_aig requires positive sizes")
    rng = deterministic_rng(seed)
    aig = AIG(name or f"rand{num_inputs}x{num_gates}")
    literals = _inputs(aig, "x", num_inputs)
    for _ in range(num_gates):
        a = rng.choice(literals) ^ rng.randint(0, 1)
        b = rng.choice(literals) ^ rng.randint(0, 1)
        literals.append(aig.add_and(a, b))
    for index in range(num_outputs):
        aig.add_output(f"y{index}", rng.choice(literals[num_inputs:]) ^ rng.randint(0, 1))
    return aig


def random_dnf(
    num_inputs: int,
    num_terms: int,
    term_size: int,
    seed: int | str = 0,
    name: Optional[str] = None,
) -> AIG:
    """A random DNF (sum of products) function."""
    if term_size > num_inputs:
        raise AigError("term_size cannot exceed num_inputs")
    rng = deterministic_rng(seed)
    aig = AIG(name or f"dnf{num_inputs}")
    inputs = _inputs(aig, "x", num_inputs)
    terms = []
    for _ in range(num_terms):
        chosen = rng.sample(range(num_inputs), term_size)
        factors = [inputs[i] ^ rng.randint(0, 1) for i in chosen]
        terms.append(aig.land_list(factors))
    aig.add_output("f", aig.lor_list(terms))
    return aig


def decomposable_by_construction(
    operator: str,
    size_a: int,
    size_b: int,
    size_c: int = 0,
    seed: int | str = 0,
    name: Optional[str] = None,
) -> Tuple[AIG, List[str], List[str], List[str]]:
    """Build ``f = gA(XA, XC) <op> gB(XB, XC)`` with random, non-degenerate gA/gB.

    Returns the AIG (single output ``f``) along with the ground-truth
    partition ``(XA, XB, XC)`` names, so tests and ablations know that a
    decomposition with disjointness ``|XC| / |X|`` exists.
    """
    if operator not in ("or", "and", "xor"):
        raise AigError(f"unsupported operator {operator!r}")
    if size_a < 1 or size_b < 1 or size_c < 0:
        raise AigError("XA and XB must be non-empty")
    rng = deterministic_rng(seed)
    aig = AIG(name or f"bidec_{operator}_{size_a}_{size_b}_{size_c}")
    xa = [aig.add_input(f"a{i}") for i in range(size_a)]
    xb = [aig.add_input(f"b{i}") for i in range(size_b)]
    xc = [aig.add_input(f"c{i}") for i in range(size_c)]

    def random_function(block: Sequence[AigLiteral]) -> AigLiteral:
        # Random DNF over the block plus the shared variables; retry until it
        # actually depends on at least one block variable (non-degenerate).
        pool = list(block) + list(xc)
        for _ in range(32):
            terms = []
            for _ in range(max(2, len(pool))):
                width = rng.randint(1, max(1, min(3, len(pool))))
                chosen = rng.sample(pool, width)
                terms.append(aig.land_list([lit ^ rng.randint(0, 1) for lit in chosen]))
            candidate = aig.lor_list(terms)
            if candidate not in (TRUE_LIT, FALSE_LIT):
                return candidate
        return block[0]

    ga = random_function(xa)
    gb = random_function(xb)
    if operator == "or":
        root = aig.lor(ga, gb)
    elif operator == "and":
        root = aig.add_and(ga, gb)
    else:
        root = aig.lxor(ga, gb)
    aig.add_output("f", root)
    names_a = [aig.input_name(lit >> 1) for lit in xa]
    names_b = [aig.input_name(lit >> 1) for lit in xb]
    names_c = [aig.input_name(lit >> 1) for lit in xc]
    return aig, names_a, names_b, names_c
