"""Embedded library of small classic circuits.

The collection contains public-domain textbook circuits (full adder,
majority voter, 2-to-1 mux network), the ISCAS'85 circuit ``c17`` — the one
ISCAS circuit small enough to embed verbatim — and a small sequential
controller in the spirit of ISCAS'89's ``s27``.  They are stored as BENCH or
BLIF text and parsed on demand, which doubles as an integration test of the
parsers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.aig.aig import AIG
from repro.errors import ReproError
from repro.io.bench import parse_bench
from repro.io.blif import parse_blif

_BENCH_CIRCUITS: Dict[str, str] = {
    # ISCAS'85 c17: the classic 6-NAND benchmark.
    "c17": """
# c17 (ISCAS'85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
""",
    # A one-bit full adder.
    "full_adder": """
# full adder
INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
t1 = XOR(a, b)
sum = XOR(t1, cin)
t2 = AND(a, b)
t3 = AND(t1, cin)
cout = OR(t2, t3)
""",
    # Three-input majority voter.
    "majority3": """
# 3-input majority
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(m)
t1 = AND(a, b)
t2 = AND(a, c)
t3 = AND(b, c)
m = OR(t1, t2, t3)
""",
    # 2:1 mux pair sharing the select line.
    "mux_pair": """
# two 2:1 muxes with a shared select
INPUT(s)
INPUT(d0)
INPUT(d1)
INPUT(e0)
INPUT(e1)
OUTPUT(y)
OUTPUT(z)
ns = NOT(s)
t0 = AND(ns, d0)
t1 = AND(s, d1)
y = OR(t0, t1)
u0 = AND(ns, e0)
u1 = AND(s, e1)
z = OR(u0, u1)
""",
    # A small sequential controller in the spirit of ISCAS'89 s27.
    "seq_ctrl": """
# small sequential controller (s27-like)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
""",
}

_BLIF_CIRCUITS: Dict[str, str] = {
    # A 4-input AND-OR function expressed as a PLA cover.
    "andor4": """
.model andor4
.inputs a b c d
.outputs f
.names a b ab
11 1
.names c d cd
11 1
.names ab cd f
1- 1
-1 1
.end
""",
    # A two-output decoder fragment with shared logic.
    "dec_frag": """
.model dec_frag
.inputs s0 s1 en
.outputs o0 o3
.names s0 s1 en o0
001 1
.names s0 s1 en o3
111 1
.end
""",
}


def classic_circuit_names() -> List[str]:
    """Names of the embedded circuits."""
    return sorted(list(_BENCH_CIRCUITS) + list(_BLIF_CIRCUITS))


def classic_circuit(name: str) -> AIG:
    """Parse and return an embedded circuit by name."""
    if name in _BENCH_CIRCUITS:
        return parse_bench(_BENCH_CIRCUITS[name], filename=f"<library:{name}>", name=name)
    if name in _BLIF_CIRCUITS:
        aig = parse_blif(_BLIF_CIRCUITS[name], filename=f"<library:{name}>")
        aig.name = name
        return aig
    raise ReproError(
        f"unknown library circuit {name!r}; available: {', '.join(classic_circuit_names())}"
    )
