"""Deterministic random number generation.

Every stochastic component in the library (random circuit generators, random
decision tie-breaking, benchmark workload synthesis) obtains its generator
through :func:`deterministic_rng` so that test runs and benchmark tables are
reproducible bit-for-bit across machines.

The batch scheduler (:mod:`repro.core.scheduler`) extends this to parallel
runs: every per-output job gets a seed derived from the run seed and the
job's identity via :func:`derive_seed`, installed for the duration of the
job with :func:`seeded_job`.  Because the derivation depends only on *what*
the job is — never on which worker runs it or in which order — a run with
``jobs=4`` draws exactly the same random streams as a run with ``jobs=1``.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from typing import Iterator, Optional

Seed = int | str | None

_MASK64 = 0xFFFFFFFFFFFFFFFF

# The RNG of the currently executing scheduler job (None outside jobs).
# Thread-local so thread-backend jobs running concurrently in one process
# each see their own stream, exactly like pool workers in their own
# processes do.
_JOB_STATE = threading.local()


def _stable_hash(seed: int | str) -> int:
    """A stable (non-randomised) 64-bit hash of an int or string seed."""
    if isinstance(seed, int):
        return seed & _MASK64
    value = 0xCBF29CE484222325  # FNV-1a offset basis
    for ch in seed:
        value ^= ord(ch)
        value = (value * 0x100000001B3) & _MASK64
    return value


def deterministic_rng(seed: Seed = 0) -> random.Random:
    """Return a :class:`random.Random` seeded deterministically.

    String seeds are hashed with a stable (non-randomised) scheme so that a
    generator keyed by a circuit name yields the same stream on every run.
    """
    if isinstance(seed, str):
        value = 0
        for ch in seed:
            value = (value * 131 + ord(ch)) & 0xFFFFFFFF
        seed = value
    return random.Random(seed)


def derive_seed(base: Seed, *tokens: int | str) -> int:
    """Mix a base seed with identity tokens into a new 64-bit seed.

    Used by the scheduler to give every per-output job its own reproducible
    stream: ``derive_seed(run_seed, circuit_name, output_name)`` depends only
    on the job's identity, never on scheduling order or worker placement.
    """
    value = _stable_hash(0 if base is None else base)
    for token in tokens:
        value ^= _stable_hash(token)
        # splitmix64 finaliser: decorrelates neighbouring token values.
        value = (value + 0x9E3779B97F4A7C15) & _MASK64
        value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
        value ^= value >> 31
    return value


def job_rng() -> random.Random:
    """The RNG of the current scheduler job (a fresh default outside jobs).

    No engine draws from this yet — the current engines are deterministic
    functions of the cone.  A future stochastic component that does must
    stay *result-invariant* across seeds (e.g. randomised restarts that
    still converge to the canonical answer), or the scheduler's cone cache
    key has to incorporate the job seed; otherwise dedup would replay the
    primary job's stream for its duplicates (noted in ROADMAP.md).
    """
    rng: Optional[random.Random] = getattr(_JOB_STATE, "rng", None)
    if rng is not None:
        return rng
    return deterministic_rng(0)


@contextmanager
def seeded_job(seed: Seed) -> Iterator[random.Random]:
    """Install a job-scoped deterministic RNG for the duration of a job."""
    previous = getattr(_JOB_STATE, "rng", None)
    _JOB_STATE.rng = deterministic_rng(seed)
    try:
        yield _JOB_STATE.rng
    finally:
        _JOB_STATE.rng = previous
