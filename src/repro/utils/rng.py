"""Deterministic random number generation.

Every stochastic component in the library (random circuit generators, random
decision tie-breaking, benchmark workload synthesis) obtains its generator
through :func:`deterministic_rng` so that test runs and benchmark tables are
reproducible bit-for-bit across machines.
"""

from __future__ import annotations

import random


def deterministic_rng(seed: int | str | None = 0) -> random.Random:
    """Return a :class:`random.Random` seeded deterministically.

    String seeds are hashed with a stable (non-randomised) scheme so that a
    generator keyed by a circuit name yields the same stream on every run.
    """
    if isinstance(seed, str):
        value = 0
        for ch in seed:
            value = (value * 131 + ord(ch)) & 0xFFFFFFFF
        seed = value
    return random.Random(seed)
