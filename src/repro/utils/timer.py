"""Wall-clock helpers used to implement the paper's per-call timeouts.

The paper gives every QBF call a 4 second budget and every circuit a 6000
second budget; :class:`Deadline` models such nested budgets and
:class:`Stopwatch` is used by the benchmark harnesses to report CPU columns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def monotonic() -> float:
    """The process-wide monotonic clock, in seconds.

    The sanctioned raw clock read for code that needs a *timestamp* rather
    than a budget — notably the metrics/tracing layer in :mod:`repro.obs`
    (span phase marks, queue-wait measurements).  Centralising it here
    keeps every wall-clock read behind this module (the ``DET-WALLCLOCK``
    lint rule), so timing can never leak into fingerprinted data without
    passing through an audited seam.
    """
    return time.perf_counter()


class Stopwatch:
    """Accumulating stopwatch with ``start``/``stop``/``elapsed`` semantics.

    The stopwatch can be started and stopped repeatedly; ``elapsed`` returns
    the total time spent between matched start/stop pairs (plus the running
    segment if currently started).  It is also usable as a context manager.
    """

    def __init__(self) -> None:
        self._accumulated = 0.0
        self._started_at: float | None = None

    def start(self) -> "Stopwatch":
        if self._started_at is None:
            self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is not None:
            self._accumulated += time.perf_counter() - self._started_at
            self._started_at = None
        return self._accumulated

    def reset(self) -> None:
        self._accumulated = 0.0
        self._started_at = None

    @property
    def elapsed(self) -> float:
        running = 0.0
        if self._started_at is not None:
            running = time.perf_counter() - self._started_at
        return self._accumulated + running

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@dataclass
class Deadline:
    """A wall-clock deadline; ``None`` budget means "no limit".

    Parameters
    ----------
    budget:
        Number of seconds available from the moment of construction, or
        ``None`` for an unlimited deadline.
    """

    budget: float | None
    _start: float = field(default_factory=time.perf_counter)

    @classmethod
    def unlimited(cls) -> "Deadline":
        return cls(budget=None)

    @property
    def expired(self) -> bool:
        if self.budget is None:
            return False
        return (time.perf_counter() - self._start) >= self.budget

    def remaining(self) -> float | None:
        """Seconds left, ``None`` if unlimited, clamped at zero."""
        if self.budget is None:
            return None
        return max(0.0, self.budget - (time.perf_counter() - self._start))

    def sub_deadline(self, budget: float | None) -> "Deadline":
        """A child deadline never exceeding the parent's remaining time."""
        remaining = self.remaining()
        if remaining is None:
            return Deadline(budget)
        if budget is None:
            return Deadline(remaining)
        return Deadline(min(budget, remaining))


@dataclass
class TruncationWitness:
    """Records whether a search was actually cut short by its deadline.

    An engine's ``timed_out`` flag must reflect *truncation*, not merely
    "the deadline had expired by the time the result was packaged" — a
    search that completed just before expiry is a full, memoisable result.
    Search loops call :meth:`check` wherever they would break on expiry (and
    :meth:`mark` for budget-induced unknowns from deeper calls); the wrapper
    reads :attr:`truncated` afterwards.
    """

    truncated: bool = False

    def mark(self) -> None:
        self.truncated = True

    def check(self, deadline: "Deadline | None") -> bool:
        """True — and recorded as truncation — when ``deadline`` expired."""
        if deadline is not None and deadline.expired:
            self.truncated = True
            return True
        return False
