"""Small shared utilities: timers, deterministic RNG and logging helpers."""

from repro.utils.timer import Stopwatch, Deadline
from repro.utils.rng import deterministic_rng

__all__ = ["Stopwatch", "Deadline", "deterministic_rng"]
