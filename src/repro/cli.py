"""``step`` — the command-line front end.

Mirrors how the paper's tool is used: point it at a circuit file (BLIF or
BENCH), pick a gate type and one or more engines, and it prints one line per
decomposed primary output plus a per-engine summary.

Examples
--------
::

    step decompose adder.blif --operator or --engine STEP-QD --engine STEP-MG
    step generate rca --width 4 --out adder.blif
    step info adder.blif

    # a long-lived daemon sharing one pool and one cache across clients,
    # and the client subcommand mirroring `decompose` against it
    # (addresses are Unix paths or HOST:PORT):
    step serve --socket /tmp/repro.sock --backend process --jobs 4 \
        --cache-dir ~/.cache/repro
    step client adder.blif --socket /tmp/repro.sock --engine STEP-QD

    # a sharded tier: N TCP daemons behind one consistent-hash router
    step serve --socket 127.0.0.1:7001 --jobs 4 &
    step serve --socket 127.0.0.1:7002 --jobs 4 &
    step route --listen 127.0.0.1:7000 \
        --shard 127.0.0.1:7001 --shard 127.0.0.1:7002
    step client adder.blif --socket 127.0.0.1:7000 --engine STEP-QD

    # the repo's own static analyzer: determinism / async-hygiene /
    # error-path rules (exit 0 clean, 1 findings, 2 usage errors)
    step lint src/repro --format json
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.aig.aig import AIG
from repro.aig.support import max_output_support
from repro.api import (
    Budgets,
    CachePolicy,
    DecompositionRequest,
    Parallelism,
    Session,
)
from repro.circuits import generators
from repro.circuits.library import classic_circuit, classic_circuit_names
from repro.core.executors import BACKEND_PROCESS, BACKENDS
from repro.core.spec import ENGINES
from repro.errors import ReproError, UsageError
from repro.io.bench import read_bench, write_bench
from repro.io.blif import read_blif, write_blif

_GENERATORS = {
    "rca": lambda args: generators.ripple_carry_adder(args.width),
    "cla": lambda args: generators.carry_lookahead_adder(args.width),
    "comparator": lambda args: generators.comparator(args.width),
    "parity": lambda args: generators.parity_tree(args.width),
    "mux": lambda args: generators.mux_tree(args.width),
    "decoder": lambda args: generators.decoder(args.width),
    "majority": lambda args: generators.majority(args.width),
    "alu": lambda args: generators.alu_slice(args.width),
    "multiplier": lambda args: generators.multiplier(args.width),
}


def _load_circuit(path: str) -> AIG:
    if path in classic_circuit_names():
        return classic_circuit(path)
    # Parse errors are already ReproErrors; OS-level failures (missing file,
    # permissions, binary junk that is not even text) are wrapped so main()
    # prints a one-line error instead of leaking a traceback.
    try:
        if path.endswith(".bench"):
            return read_bench(path)
        return read_blif(path)
    except FileNotFoundError:
        raise ReproError(
            f"no such circuit file or library circuit: {path!r}"
        ) from None
    except (OSError, UnicodeDecodeError) as exc:
        raise ReproError(f"cannot read circuit file {path!r}: {exc}") from exc


def _save_circuit(aig: AIG, path: str) -> None:
    try:
        if path.endswith(".bench"):
            write_bench(aig, path)
        else:
            write_blif(aig, path)
    except OSError as exc:
        raise ReproError(f"cannot write circuit file {path!r}: {exc}") from exc


def _check_decompose_flags(args: argparse.Namespace) -> None:
    """Reject malformed flag values with one-line errors before any work.

    The request objects validate the same invariants, but checking here
    names the offending *flag* instead of the config field it maps to.
    """
    if args.max_outputs is not None and args.max_outputs < 1:
        raise ReproError(f"--max-outputs must be at least 1 (got {args.max_outputs})")
    # `client` has no placement flags (the daemon owns them); default the
    # checks away instead of branching per subcommand.
    if getattr(args, "jobs", 1) < 1:
        raise ReproError(f"--jobs must be at least 1 (got {args.jobs})")
    if args.qbf_timeout is not None and args.qbf_timeout <= 0:
        raise ReproError(
            f"--qbf-timeout must be a positive number of seconds (got {args.qbf_timeout})"
        )
    if args.output_timeout is not None and args.output_timeout <= 0:
        raise ReproError(
            f"--output-timeout must be a positive number of seconds (got {args.output_timeout})"
        )
    if args.circuit_timeout is not None and args.circuit_timeout < 0:
        # 0 is legal: it budgets nothing and reports every output skipped.
        raise ReproError(
            f"--circuit-timeout must be >= 0 seconds (got {args.circuit_timeout})"
        )
    _check_cache_flags(args)


def _check_cache_flags(args: argparse.Namespace) -> None:
    """Cache-flag invariants shared by `decompose` and `serve` (and vacuous
    for `client`, which has no placement flags)."""
    if getattr(args, "cache_dir", None) is not None and getattr(
        args, "no_dedup", False
    ):
        # The persistent cache rides on the dedup cache; accepting both
        # flags would silently persist nothing.
        raise ReproError("--cache-dir requires cone dedup; drop --no-dedup")
    if getattr(args, "cache_max_entries", None) is not None:
        if args.cache_max_entries < 1:
            raise ReproError(
                f"--cache-max-entries must be at least 1 (got {args.cache_max_entries})"
            )
        if args.cache_dir is None:
            raise ReproError("--cache-max-entries requires --cache-dir")


def _print_report(report, engines, show_fingerprint: bool = False) -> None:
    """The `decompose` output format, shared with `client`."""
    for output in report.outputs:
        for engine, result in sorted(output.results.items()):
            print(f"{output.output_name:>12} {result.summary()}")
    print("-" * 60)
    for engine in engines:
        decomposed = report.decomposed_count(engine)
        cpu = report.cpu_seconds(engine)
        print(f"{engine:>10}: #Dec = {decomposed:4d}   CPU = {cpu:8.2f} s")
    schedule = report.schedule
    if schedule:
        line = (
            f"{'schedule':>10}: jobs = {schedule.get('jobs', 1)}   "
            f"unique cones = {schedule.get('unique_cones', 0)}   "
            f"cache hits = {schedule.get('cache_hits', 0)}"
        )
        if schedule.get("jobs", 1) > 1 or schedule.get("requested_jobs", 1) > 1:
            line += f"   backend = {schedule.get('backend', 'process')}"
        if "persistent_hits" in schedule:
            line += f"   persistent hits = {schedule['persistent_hits']}"
        if schedule.get("fallback"):
            line += f"   fallback = {schedule['fallback']}"
        print(line)
        skipped = schedule.get("skipped") or []
        if skipped:
            print(
                f"{'skipped':>10}: {len(skipped)} output(s) past the circuit "
                f"budget: {', '.join(skipped)}"
            )
    if show_fingerprint:
        print(f"report fingerprint: {report.fingerprint_hex()}")


def _request_from_args(args: argparse.Namespace, remote: bool) -> DecompositionRequest:
    """Build the request both `decompose` and `client` share.

    ``remote`` drops the execution-placement knobs (jobs/backend/cache
    directory) — the daemon owns those; everything that defines the
    decomposition itself travels.
    """
    aig = _load_circuit(args.circuit)
    engines = tuple(args.engine or ["STEP-QD"])
    if remote:
        parallelism = Parallelism(dedup=not args.no_dedup, seed=args.seed)
        cache = CachePolicy()
    else:
        parallelism = Parallelism(
            jobs=args.jobs,
            dedup=not args.no_dedup,
            seed=args.seed,
            backend=args.backend,
        )
        cache = CachePolicy(
            directory=args.cache_dir, max_entries=args.cache_max_entries
        )
    return DecompositionRequest(
        circuit=aig,
        operator=args.operator,
        engines=engines,
        budgets=Budgets(
            per_call=args.qbf_timeout,
            per_output=args.output_timeout,
            per_circuit=args.circuit_timeout,
        ),
        parallelism=parallelism,
        cache=cache,
        max_outputs=args.max_outputs,
        verify=args.verify,
    )


def _cmd_decompose(args: argparse.Namespace) -> int:
    _check_decompose_flags(args)
    request = _request_from_args(args, remote=False)
    report = Session().run(request)
    _print_report(report, request.engines, show_fingerprint=args.fingerprint)
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    _check_decompose_flags(args)
    request = _request_from_args(args, remote=True)
    with ServiceClient(args.socket, timeout=args.connect_timeout) as client:
        report = client.run(request)
    _print_report(report, request.engines, show_fingerprint=args.fingerprint)
    return 0


def _serve_until_signal(server, address: str, banner) -> int:
    """Shared serve loop of `serve` and `route`: start, print the banner
    with the resolved address, stop cleanly on SIGINT/SIGTERM."""
    import asyncio

    async def _serve() -> None:
        import signal

        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        await server.start(address)
        print(banner(server.address), flush=True)
        try:
            await stop.wait()
        finally:
            await server.aclose()

    try:
        asyncio.run(_serve())
        print("shutting down")
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        print("shutting down")
    except OSError as exc:
        raise ReproError(f"cannot serve on {address!r}: {exc}") from None
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import QuotaPolicy
    from repro.service import ReproService

    if args.jobs < 1:
        raise ReproError(f"--jobs must be at least 1 (got {args.jobs})")
    _check_cache_flags(args)
    quota = QuotaPolicy(
        max_inflight_per_client=args.max_inflight_per_client,
        max_pending=args.max_pending,
        cache_write_budget=args.cache_write_budget,
    )
    service = ReproService(
        jobs=args.jobs,
        backend=args.backend,
        cache_dir=args.cache_dir,
        cache_max_entries=args.cache_max_entries,
        quota=quota,
        metrics_address=args.metrics,
    )
    return _serve_until_signal(
        service,
        args.socket,
        lambda address: (
            f"serving on {address} (backend={args.backend}, jobs={args.jobs}"
            + (f", cache-dir={args.cache_dir}" if args.cache_dir else "")
            + (
                f", metrics on {service.metrics_address}"
                if service.metrics_address
                else ""
            )
            + ") — SIGINT/SIGTERM to stop"
        ),
    )


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.service import ReproRouter

    if args.retries < 1:
        raise ReproError(f"--retries must be at least 1 (got {args.retries})")
    if args.probe_interval <= 0:
        raise ReproError(
            f"--probe-interval must be positive (got {args.probe_interval})"
        )
    router = ReproRouter(
        args.shard, max_attempts=args.retries, probe_interval=args.probe_interval
    )
    return _serve_until_signal(
        router,
        args.listen,
        lambda address: (
            f"routing on {address} across {len(args.shard)} shard(s): "
            + ", ".join(args.shard)
            + " — SIGINT/SIGTERM to stop"
        ),
    )


def _histogram_line(obs: dict, name: str, series_key: str = "") -> Optional[str]:
    """One ``count/p50/p90/p99`` summary line for a histogram series."""
    entry = obs.get("histograms", {}).get(name)
    if not isinstance(entry, dict):
        return None
    series = entry.get("series", {}).get(series_key)
    if not isinstance(series, dict) or not series.get("count"):
        return None
    quantiles = "  ".join(
        f"{q}={series[q] * 1000:.1f}ms"
        for q in ("p50", "p90", "p99")
        if isinstance(series.get(q), (int, float))
    )
    return f"n={series['count']}  {quantiles}"


def _counter_total(obs: dict, name: str) -> float:
    entry = obs.get("counters", {}).get(name, {})
    values = entry.get("values", {}) if isinstance(entry, dict) else {}
    return sum(v for v in values.values() if isinstance(v, (int, float)))


def _render_stats_text(stats: dict) -> str:
    """The human `step stats` view of one (daemon or router) stats frame."""
    lines = []
    router = stats.get("router")
    if isinstance(router, dict):
        lines.append(
            f"router: {router.get('shards_up', 0)} shard(s) up, "
            f"{router.get('shards_down', 0)} down; "
            f"routed={router.get('routed', 0)} "
            f"failovers={router.get('failovers', 0)} "
            f"results={router.get('results', 0)}"
        )
    lines.append(
        "requests: "
        + " ".join(
            f"{key}={stats.get(key, 0)}"
            for key in ("submitted", "completed", "cancelled", "failed")
        )
    )
    obs = stats.get("obs")
    if isinstance(obs, dict):
        for label, name in (
            ("latency   ", "repro_request_latency_seconds"),
            ("queue wait", "repro_request_queue_wait_seconds"),
            ("fair queue", "repro_fair_queue_wait_seconds"),
        ):
            line = _histogram_line(obs, name)
            if line is not None:
                lines.append(f"{label}: {line}")
        hits = _counter_total(obs, "repro_cone_cache_hits_total")
        misses = _counter_total(obs, "repro_cone_cache_misses_total")
        if hits or misses:
            rate = 100.0 * hits / (hits + misses)
            lines.append(
                f"cone cache: {int(hits)} hit(s), {int(misses)} miss(es) "
                f"({rate:.1f}% hit rate)"
            )
        rejected = _counter_total(obs, "repro_service_backpressure_total")
        if rejected:
            lines.append(f"backpressure rejections: {int(rejected)}")
    clients = stats.get("clients")
    if isinstance(clients, dict) and clients:
        lines.append("clients:")
        for client in sorted(clients):
            entry = clients[client]
            if not isinstance(entry, dict):
                continue
            lines.append(
                f"  {client}: "
                + " ".join(
                    f"{key}={entry.get(key, 0)}"
                    for key in (
                        "inflight",
                        "submitted",
                        "rejected",
                        "cache_throttled",
                    )
                )
            )
    return "\n".join(lines)


def _cmd_stats(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    from repro.service import ServiceClient

    if args.interval <= 0:
        raise ReproError(f"--interval must be positive (got {args.interval})")
    try:
        while True:
            with ServiceClient(args.socket, timeout=args.connect_timeout) as client:
                stats = client.stats()
            if args.json:
                print(_json.dumps(stats, indent=2, sort_keys=True), flush=True)
            else:
                print(_render_stats_text(stats), flush=True)
            if not args.watch:
                return 0
            print("---", flush=True)
            _time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        DEFAULT_BASELINE_NAME,
        RULES,
        analyze_paths,
        load_baseline,
        render_json,
        render_text,
        write_baseline,
    )

    if args.list_rules:
        for rule_id in sorted(RULES):
            spec = RULES[rule_id]
            scope = ", ".join(spec.scope) if spec.scope else "whole tree"
            phase = "project, " if spec.project else ""
            print(
                f"{rule_id:>18} [{spec.severity}] {spec.title} "
                f"({phase}scope: {scope})"
            )
        return 0
    selected = None
    if args.select:
        selected = [
            rule_id.strip()
            for chunk in args.select
            for rule_id in chunk.split(",")
            if rule_id.strip()
        ]
        if not selected:
            raise UsageError("--select needs at least one rule id")
        unknown = sorted(set(selected) - set(RULES))
        if unknown:
            raise UsageError(
                "unknown rule id(s): "
                + ", ".join(unknown)
                + "; see `step lint --list-rules`"
            )
    if args.write_baseline and (
        selected is not None or args.severity or args.no_project
    ):
        # A baseline is a snapshot of the *full* run; writing one from a
        # filtered view would silently un-waive everything filtered out.
        raise UsageError(
            "--write-baseline records a full run; it cannot combine with "
            "--select, --severity or --no-project"
        )
    paths = args.paths or ["src/repro"]
    for path in paths:
        if not os.path.exists(path):
            raise UsageError(f"no such file or directory: {path!r}")
    # Baseline resolution: an explicit --baseline must exist (a typo'd
    # path silently waiving nothing would defeat the gate); the implicit
    # default is only used when the file is actually there.
    baseline = None
    if args.no_baseline:
        if args.baseline is not None:
            raise UsageError("--no-baseline and --baseline are mutually exclusive")
        baseline_path = None
    elif args.baseline is not None:
        if not os.path.isfile(args.baseline) and not args.write_baseline:
            raise UsageError(f"no such baseline file: {args.baseline!r}")
        baseline_path = args.baseline
    else:
        baseline_path = (
            DEFAULT_BASELINE_NAME
            if os.path.isfile(DEFAULT_BASELINE_NAME)
            else None
        )
    if args.write_baseline:
        report = analyze_paths(paths)
        target = baseline_path or DEFAULT_BASELINE_NAME
        count = write_baseline(target, report.findings)
        print(f"wrote {target}: {count} finding(s) baselined")
        return 0
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
    report = analyze_paths(
        paths,
        rules=selected,
        baseline=baseline,
        project=not args.no_project,
        severity=args.severity,
    )
    print(render_json(report) if args.format == "json" else render_text(report))
    return 1 if report.blocking else 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.family not in _GENERATORS:
        raise ReproError(
            f"unknown circuit family {args.family!r}; "
            f"available: {', '.join(sorted(_GENERATORS))}"
        )
    aig = _GENERATORS[args.family](args)
    _save_circuit(aig, args.out)
    print(f"wrote {args.out}: {aig!r}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    aig = _load_circuit(args.circuit)
    print(f"name     : {aig.name}")
    print(f"inputs   : {len(aig.inputs)}")
    print(f"latches  : {len(aig.latches)}")
    print(f"outputs  : {len(aig.outputs)}")
    print(f"AND nodes: {aig.num_ands}")
    print(f"#InM     : {max_output_support(aig)}")
    return 0


def _add_decomposition_flags(parser: argparse.ArgumentParser) -> None:
    """Flags that define the decomposition itself — shared verbatim by
    ``decompose`` (local) and ``client`` (remote), so scripts switch
    between them by swapping the subcommand and adding ``--socket``."""
    parser.add_argument("circuit", help="BLIF/BENCH file or a library circuit name")
    parser.add_argument("--operator", choices=["or", "and", "xor"], default="or")
    parser.add_argument(
        "--engine", action="append", choices=list(ENGINES), help="may be repeated"
    )
    parser.add_argument("--qbf-timeout", type=float, default=4.0)
    parser.add_argument("--output-timeout", type=float, default=60.0)
    parser.add_argument("--circuit-timeout", type=float, default=None)
    parser.add_argument("--max-outputs", type=int, default=None)
    parser.add_argument("--verify", action="store_true")
    parser.add_argument(
        "--no-dedup",
        action="store_true",
        help="disable structural dedup of identical output cones",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help=(
            "run seed mixed into per-output job seeds (reserved for future "
            "stochastic components; current engines are deterministic, so "
            "results do not depend on it) (default: 0)"
        ),
    )
    parser.add_argument(
        "--fingerprint",
        action="store_true",
        help="print a stable digest of the report (for diffing runs)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="step",
        description="Satisfiability-based funcTion dEcomPosition (QBF bi-decomposition)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    decompose = sub.add_parser("decompose", help="bi-decompose every primary output")
    _add_decomposition_flags(decompose)
    decompose.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="workers for the batch scheduler (default: 1)",
    )
    decompose.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=BACKEND_PROCESS,
        help=(
            "execution backend for --jobs N runs: 'process' (multiprocessing "
            "pool, default), 'thread' (thread pool: no pickling, works under "
            "daemonic parents) or 'serial' (inline reference); all three "
            "produce identical reports"
        ),
    )
    decompose.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "directory for the persistent cone cache: replayable partition "
            "searches are snapshotted there and warm the next run over the "
            "same engines/options (default: no persistence)"
        ),
    )
    decompose.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        help=(
            "compact the persistent cone cache to at most N entries at save "
            "time, evicting least-recently-hit first (default: unbounded)"
        ),
    )
    decompose.set_defaults(handler=_cmd_decompose)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived decomposition daemon (Unix socket or TCP)",
    )
    serve.add_argument(
        "--socket",
        required=True,
        metavar="ADDRESS",
        help="address to listen on: a Unix socket path or HOST:PORT",
    )
    serve.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=BACKEND_PROCESS,
        help="execution backend of the daemon's one shared pool (default: process)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=max(1, os.cpu_count() or 1),
        help="worker count of the shared pool (default: the machine's CPUs)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="persistent cone-cache directory shared by EVERY request the daemon serves",
    )
    serve.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        help="bound the shared snapshot: LRU-by-last-hit eviction at save time",
    )
    serve.add_argument(
        "--metrics",
        default=None,
        metavar="ADDRESS",
        help=(
            "also serve a Prometheus text-format scrape endpoint on this "
            "address (Unix path or HOST:PORT; default: off)"
        ),
    )
    serve.add_argument(
        "--max-inflight-per-client",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-connection cap on non-terminal requests; over-limit submits "
            "get a recoverable backpressure error (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=None,
        metavar="N",
        help=(
            "bound the accept queue across ALL connections; excess submits "
            "get a recoverable backpressure error (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--cache-write-budget",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-client persistent cone-cache write budget; exhausted clients "
            "keep running without the persistent cache (default: unbounded)"
        ),
    )
    serve.set_defaults(handler=_cmd_serve)

    stats = sub.add_parser(
        "stats",
        help="print a daemon's or router's live stats (latency percentiles, "
        "cache hit rate, per-client accounting)",
    )
    stats.add_argument(
        "--socket",
        required=True,
        metavar="ADDRESS",
        help="the daemon's or router's address: a Unix socket path or HOST:PORT",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="print the raw stats frame as JSON instead of the summary",
    )
    stats.add_argument(
        "--watch",
        action="store_true",
        help="keep printing (every --interval seconds) until interrupted",
    )
    stats.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period for --watch (default: 2.0)",
    )
    stats.add_argument(
        "--connect-timeout",
        type=float,
        default=None,
        help="socket timeout in seconds (default: wait indefinitely)",
    )
    stats.set_defaults(handler=_cmd_stats)

    route = sub.add_parser(
        "route",
        help="run the consistent-hash router over N `step serve` shards",
    )
    route.add_argument(
        "--listen",
        required=True,
        metavar="ADDRESS",
        help="client-facing address: a Unix socket path or HOST:PORT",
    )
    route.add_argument(
        "--shard",
        action="append",
        required=True,
        metavar="ADDRESS",
        help="a shard daemon's address (repeat once per shard)",
    )
    route.add_argument(
        "--retries",
        type=int,
        default=3,
        help=(
            "shard attempts per request before it fails over to a `failed` "
            "result carrying the shard error (default: 3)"
        ),
    )
    route.add_argument(
        "--probe-interval",
        type=float,
        default=1.0,
        help=(
            "seconds between health probes that re-admit returning shards "
            "to the hash ring (default: 1.0)"
        ),
    )
    route.set_defaults(handler=_cmd_route)

    client = sub.add_parser(
        "client",
        help="run one decompose against a `step serve` daemon or a "
        "`step route` shard fleet (same output)",
    )
    _add_decomposition_flags(client)
    client.add_argument(
        "--socket",
        required=True,
        metavar="ADDRESS",
        help="the daemon's or router's address: a Unix socket path or HOST:PORT",
    )
    client.add_argument(
        "--connect-timeout",
        type=float,
        default=None,
        help="socket timeout in seconds (default: wait indefinitely)",
    )
    client.set_defaults(handler=_cmd_client)

    lint = sub.add_parser(
        "lint",
        help="run the determinism/async-hygiene static analyzer over the tree",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to analyze (default: src/repro)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline of waived legacy findings (default: lint-baseline.json "
            "in the current directory, when present)"
        ),
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: report every finding",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="RULE-ID[,RULE-ID...]",
        help="run only the listed rules (comma-separated, repeatable)",
        action="append",
    )
    lint.add_argument(
        "--severity",
        choices=["error", "warning"],
        default=None,
        help="report only findings of this severity",
    )
    lint.add_argument(
        "--no-project",
        action="store_true",
        help="skip the phase-2 whole-program analyses (DET-FLOW, PROTO)",
    )
    lint.set_defaults(handler=_cmd_lint)

    generate = sub.add_parser("generate", help="write a generated benchmark circuit")
    generate.add_argument("family", help=", ".join(sorted(_GENERATORS)))
    generate.add_argument("--width", type=int, default=4)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=_cmd_generate)

    info = sub.add_parser("info", help="print circuit statistics")
    info.add_argument("circuit")
    info.set_defaults(handler=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        # UsageError carries 2 (called wrong), everything else 1 (failed).
        return getattr(exc, "exit_code", 1)


if __name__ == "__main__":
    sys.exit(main())
