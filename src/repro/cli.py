"""``step`` — the command-line front end.

Mirrors how the paper's tool is used: point it at a circuit file (BLIF or
BENCH), pick a gate type and one or more engines, and it prints one line per
decomposed primary output plus a per-engine summary.

Examples
--------
::

    step decompose adder.blif --operator or --engine STEP-QD --engine STEP-MG
    step generate rca --width 4 --out adder.blif
    step info adder.blif
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.aig.aig import AIG
from repro.aig.support import max_output_support
from repro.api import (
    Budgets,
    CachePolicy,
    DecompositionRequest,
    Parallelism,
    Session,
)
from repro.circuits import generators
from repro.circuits.library import classic_circuit, classic_circuit_names
from repro.core.executors import BACKEND_PROCESS, BACKENDS
from repro.core.spec import ENGINES
from repro.errors import ReproError
from repro.io.bench import read_bench, write_bench
from repro.io.blif import read_blif, write_blif

_GENERATORS = {
    "rca": lambda args: generators.ripple_carry_adder(args.width),
    "cla": lambda args: generators.carry_lookahead_adder(args.width),
    "comparator": lambda args: generators.comparator(args.width),
    "parity": lambda args: generators.parity_tree(args.width),
    "mux": lambda args: generators.mux_tree(args.width),
    "decoder": lambda args: generators.decoder(args.width),
    "majority": lambda args: generators.majority(args.width),
    "alu": lambda args: generators.alu_slice(args.width),
    "multiplier": lambda args: generators.multiplier(args.width),
}


def _load_circuit(path: str) -> AIG:
    if path in classic_circuit_names():
        return classic_circuit(path)
    # Parse errors are already ReproErrors; OS-level failures (missing file,
    # permissions, binary junk that is not even text) are wrapped so main()
    # prints a one-line error instead of leaking a traceback.
    try:
        if path.endswith(".bench"):
            return read_bench(path)
        return read_blif(path)
    except FileNotFoundError:
        raise ReproError(
            f"no such circuit file or library circuit: {path!r}"
        ) from None
    except (OSError, UnicodeDecodeError) as exc:
        raise ReproError(f"cannot read circuit file {path!r}: {exc}") from exc


def _save_circuit(aig: AIG, path: str) -> None:
    try:
        if path.endswith(".bench"):
            write_bench(aig, path)
        else:
            write_blif(aig, path)
    except OSError as exc:
        raise ReproError(f"cannot write circuit file {path!r}: {exc}") from exc


def _check_decompose_flags(args: argparse.Namespace) -> None:
    """Reject malformed flag values with one-line errors before any work.

    The request objects validate the same invariants, but checking here
    names the offending *flag* instead of the config field it maps to.
    """
    if args.max_outputs is not None and args.max_outputs < 1:
        raise ReproError(f"--max-outputs must be at least 1 (got {args.max_outputs})")
    if args.jobs < 1:
        raise ReproError(f"--jobs must be at least 1 (got {args.jobs})")
    if args.qbf_timeout is not None and args.qbf_timeout <= 0:
        raise ReproError(
            f"--qbf-timeout must be a positive number of seconds (got {args.qbf_timeout})"
        )
    if args.output_timeout is not None and args.output_timeout <= 0:
        raise ReproError(
            f"--output-timeout must be a positive number of seconds (got {args.output_timeout})"
        )
    if args.circuit_timeout is not None and args.circuit_timeout < 0:
        # 0 is legal: it budgets nothing and reports every output skipped.
        raise ReproError(
            f"--circuit-timeout must be >= 0 seconds (got {args.circuit_timeout})"
        )
    if args.cache_dir is not None and args.no_dedup:
        # The persistent cache rides on the dedup cache; accepting both
        # flags would silently persist nothing.
        raise ReproError("--cache-dir requires cone dedup; drop --no-dedup")


def _cmd_decompose(args: argparse.Namespace) -> int:
    _check_decompose_flags(args)
    aig = _load_circuit(args.circuit)
    engines = tuple(args.engine or ["STEP-QD"])
    request = DecompositionRequest(
        circuit=aig,
        operator=args.operator,
        engines=engines,
        budgets=Budgets(
            per_call=args.qbf_timeout,
            per_output=args.output_timeout,
            per_circuit=args.circuit_timeout,
        ),
        parallelism=Parallelism(
            jobs=args.jobs,
            dedup=not args.no_dedup,
            seed=args.seed,
            backend=args.backend,
        ),
        cache=CachePolicy(directory=args.cache_dir),
        max_outputs=args.max_outputs,
        verify=args.verify,
    )
    report = Session().run(request)
    for output in report.outputs:
        for engine, result in sorted(output.results.items()):
            print(f"{output.output_name:>12} {result.summary()}")
    print("-" * 60)
    for engine in engines:
        decomposed = report.decomposed_count(engine)
        cpu = report.cpu_seconds(engine)
        print(f"{engine:>10}: #Dec = {decomposed:4d}   CPU = {cpu:8.2f} s")
    schedule = report.schedule
    if schedule:
        line = (
            f"{'schedule':>10}: jobs = {schedule.get('jobs', 1)}   "
            f"unique cones = {schedule.get('unique_cones', 0)}   "
            f"cache hits = {schedule.get('cache_hits', 0)}"
        )
        if schedule.get("jobs", 1) > 1 or schedule.get("requested_jobs", 1) > 1:
            line += f"   backend = {schedule.get('backend', 'process')}"
        if "persistent_hits" in schedule:
            line += f"   persistent hits = {schedule['persistent_hits']}"
        if schedule.get("fallback"):
            line += f"   fallback = {schedule['fallback']}"
        print(line)
        skipped = schedule.get("skipped") or []
        if skipped:
            print(
                f"{'skipped':>10}: {len(skipped)} output(s) past the circuit "
                f"budget: {', '.join(skipped)}"
            )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.family not in _GENERATORS:
        raise ReproError(
            f"unknown circuit family {args.family!r}; "
            f"available: {', '.join(sorted(_GENERATORS))}"
        )
    aig = _GENERATORS[args.family](args)
    _save_circuit(aig, args.out)
    print(f"wrote {args.out}: {aig!r}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    aig = _load_circuit(args.circuit)
    print(f"name     : {aig.name}")
    print(f"inputs   : {len(aig.inputs)}")
    print(f"latches  : {len(aig.latches)}")
    print(f"outputs  : {len(aig.outputs)}")
    print(f"AND nodes: {aig.num_ands}")
    print(f"#InM     : {max_output_support(aig)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="step",
        description="Satisfiability-based funcTion dEcomPosition (QBF bi-decomposition)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    decompose = sub.add_parser("decompose", help="bi-decompose every primary output")
    decompose.add_argument("circuit", help="BLIF/BENCH file or a library circuit name")
    decompose.add_argument("--operator", choices=["or", "and", "xor"], default="or")
    decompose.add_argument(
        "--engine", action="append", choices=list(ENGINES), help="may be repeated"
    )
    decompose.add_argument("--qbf-timeout", type=float, default=4.0)
    decompose.add_argument("--output-timeout", type=float, default=60.0)
    decompose.add_argument("--circuit-timeout", type=float, default=None)
    decompose.add_argument("--max-outputs", type=int, default=None)
    decompose.add_argument("--verify", action="store_true")
    decompose.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="workers for the batch scheduler (default: 1)",
    )
    decompose.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=BACKEND_PROCESS,
        help=(
            "execution backend for --jobs N runs: 'process' (multiprocessing "
            "pool, default), 'thread' (thread pool: no pickling, works under "
            "daemonic parents) or 'serial' (inline reference); all three "
            "produce identical reports"
        ),
    )
    decompose.add_argument(
        "--no-dedup",
        action="store_true",
        help="disable structural dedup of identical output cones",
    )
    decompose.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "directory for the persistent cone cache: replayable partition "
            "searches are snapshotted there and warm the next run over the "
            "same engines/options (default: no persistence)"
        ),
    )
    decompose.add_argument(
        "--seed",
        type=int,
        default=0,
        help=(
            "run seed mixed into per-output job seeds (reserved for future "
            "stochastic components; current engines are deterministic, so "
            "results do not depend on it) (default: 0)"
        ),
    )
    decompose.set_defaults(handler=_cmd_decompose)

    generate = sub.add_parser("generate", help="write a generated benchmark circuit")
    generate.add_argument("family", help=", ".join(sorted(_GENERATORS)))
    generate.add_argument("--width", type=int, default=4)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=_cmd_generate)

    info = sub.add_parser("info", help="print circuit statistics")
    info.add_argument("circuit")
    info.set_defaults(handler=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
