"""Project index: modules, imports, functions, and best-effort call edges.

Phase 2 of the engine hands every project checker one :class:`Project`
wrapping all parsed modules.  The heavy artifacts — the import/name
resolution tables and the function index built here, the taint fixpoint
built in :mod:`repro.analysis.dataflow` — are cached on the project so a
family of rules sharing an analysis computes it once.

Name resolution is deliberately *best effort*: this is a linter, not a
type checker.  We resolve what static Python lets us resolve —

* intraproject imports, absolute (``repro.core.x``, ``core.x`` for
  fixture trees scanned from their own root) and relative (``from
  .helpers import f``), with aliases;
* module-level functions called by bare name or through an imported
  module/symbol;
* ``self.method()`` / ``cls.method()`` against the enclosing class, and
  ``ImportedClass.method()`` for imported class symbols —

and treat everything else (instance attributes of unknown type, values
returned by calls, subscripts) as opaque.  Unresolved calls simply
contribute no interprocedural flow; they never crash the analysis.

Everything iterates in deterministic order: modules sorted by path,
functions in source order.  Two runs over the same tree must produce
byte-identical findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.analysis.registry import call_name

if TYPE_CHECKING:
    from repro.analysis.engine import ModuleUnderAnalysis


@dataclass
class FunctionInfo:
    """One function or method (or a module's top-level code)."""

    module_path: str
    name: str  # dotted within the module: "f", "Cls.m", "<module>"
    node: ast.AST  # FunctionDef/AsyncFunctionDef, or Module for "<module>"
    class_name: str = ""  # enclosing class, "" for module-level functions
    params: Tuple[str, ...] = ()

    @property
    def qualname(self) -> str:
        return f"{self.module_path}::{self.name}"


# An import binding: ("module", module_path) for a name bound to an
# intraproject module, ("symbol", module_path, original_name) for a name
# imported out of one.
Binding = Tuple[str, ...]

MODULE_BODY = "<module>"


def _param_names(node: ast.AST) -> Tuple[str, ...]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return ()
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if args.vararg:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


class ProjectIndex:
    """Import bindings, the function table, and call resolution."""

    def __init__(self, modules: Dict[str, "ModuleUnderAnalysis"]) -> None:
        self.modules = modules
        # (module_path, dotted_name) -> FunctionInfo
        self.functions: Dict[Tuple[str, str], FunctionInfo] = {}
        # module_path -> {local name or dotted import path -> Binding}
        self.bindings: Dict[str, Dict[str, Binding]] = {}
        # module_path -> functions in source order (module body last so a
        # fixpoint sees callee summaries before re-evaluating the driver)
        self.by_module: Dict[str, List[FunctionInfo]] = {}
        for path in sorted(modules):
            self._index_module(modules[path])

    # -- construction --------------------------------------------------

    def _index_module(self, module: "ModuleUnderAnalysis") -> None:
        path = module.module_path
        self.bindings[path] = self._collect_bindings(module)
        infos: List[FunctionInfo] = []

        def collect(body: List[ast.stmt], prefix: str, class_name: str) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    dotted = f"{prefix}{stmt.name}"
                    info = FunctionInfo(
                        module_path=path,
                        name=dotted,
                        node=stmt,
                        class_name=class_name,
                        params=_param_names(stmt),
                    )
                    self.functions[(path, dotted)] = info
                    infos.append(info)
                    # Nested defs are indexed (closures can still be
                    # called locally) but analyzed independently.
                    collect(stmt.body, f"{dotted}.", class_name)
                elif isinstance(stmt, ast.ClassDef):
                    collect(stmt.body, f"{prefix}{stmt.name}.", stmt.name)

        collect(module.tree.body, "", "")
        body_info = FunctionInfo(
            module_path=path, name=MODULE_BODY, node=module.tree
        )
        self.functions[(path, MODULE_BODY)] = body_info
        infos.append(body_info)
        self.by_module[path] = infos

    def _collect_bindings(
        self, module: "ModuleUnderAnalysis"
    ) -> Dict[str, Binding]:
        bindings: Dict[str, Binding] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = self.resolve_module_name(alias.name)
                    if target is None:
                        continue
                    bound = alias.asname or alias.name
                    bindings[bound] = ("module", target)
            elif isinstance(node, ast.ImportFrom):
                base = self._import_from_base(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    as_module = self.resolve_module_name(
                        f"{base}.{alias.name}" if base else alias.name
                    )
                    base_path = self.resolve_module_name(base)
                    if base_path is not None:
                        bindings[bound] = ("symbol", base_path, alias.name)
                    elif as_module is not None:
                        bindings[bound] = ("module", as_module)
        return bindings

    def _import_from_base(
        self, module: "ModuleUnderAnalysis", node: ast.ImportFrom
    ) -> Optional[str]:
        """Dotted base the names are imported from, relative resolved."""
        if not node.level:
            return node.module or ""
        # Relative import: climb from the importing module's package.
        package = module.module_path.split("/")[:-1]
        climb = node.level - 1
        if climb > len(package):
            return None
        base_parts = package[: len(package) - climb] if climb else package
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    # -- resolution ----------------------------------------------------

    def resolve_module_name(self, dotted: str) -> Optional[str]:
        """Map a dotted module name onto a module path in this project.

        Tries the name as spelled and, for absolute ``repro.*`` imports,
        with the package root stripped (module paths are rooted below
        the ``repro`` package).  Returns ``None`` for stdlib/external
        modules — exactly the calls we cannot reason about.
        """
        if not dotted:
            return None
        candidates = [dotted.split(".")]
        if candidates[0][0] == "repro":
            stripped = candidates[0][1:]
            if stripped:
                candidates.insert(0, stripped)
            else:
                candidates.insert(0, ["__init__"])
        for parts in candidates:
            flat = "/".join(parts)
            if f"{flat}.py" in self.modules:
                return f"{flat}.py"
            if f"{flat}/__init__.py" in self.modules:
                return f"{flat}/__init__.py"
        return None

    def lookup_function(
        self, module_path: str, dotted: str
    ) -> Optional[FunctionInfo]:
        info = self.functions.get((module_path, dotted))
        if info is not None and info.name != MODULE_BODY:
            return info
        return None

    def resolve_call(
        self, caller: FunctionInfo, node: ast.Call
    ) -> Optional[FunctionInfo]:
        """Resolve a call site to an intraproject function, best effort."""
        name = call_name(node.func)
        if not name:
            return None
        path = caller.module_path
        head, _, rest = name.partition(".")
        if head in ("self", "cls") and caller.class_name:
            if rest and "." not in rest:
                return self.lookup_function(
                    path, f"{caller.class_name}.{rest}"
                )
            return None
        bindings = self.bindings.get(path, {})
        # Longest import binding that prefixes the dotted call name wins
        # ("import repro.core.x" binds the full dotted path).
        for bound in sorted(bindings, key=len, reverse=True):
            if name == bound or name.startswith(f"{bound}."):
                kind = bindings[bound]
                remainder = name[len(bound) + 1 :]
                if kind[0] == "module":
                    if remainder:
                        return self.lookup_function(kind[1], remainder)
                    return None  # calling a module object: nonsense
                target_path, symbol = kind[1], kind[2]
                dotted = f"{symbol}.{remainder}" if remainder else symbol
                found = self.lookup_function(target_path, dotted)
                if found is not None:
                    return found
                # Imported name may itself re-export a module-level
                # function under a different home; give up quietly.
                return None
        if "." not in name:
            return self.lookup_function(path, name)
        # "ClassDefinedHere.method(...)" within the same module.
        return self.lookup_function(path, name)

    def resolve_symbol_module(
        self, module_path: str, name: str
    ) -> Optional[Tuple[str, str]]:
        """``(target_module_path, original_name)`` for an imported symbol."""
        binding = self.bindings.get(module_path, {}).get(name)
        if binding and binding[0] == "symbol":
            return binding[1], binding[2]
        return None


class Project:
    """All parsed modules plus caches shared across project checkers."""

    def __init__(self, modules: List["ModuleUnderAnalysis"]) -> None:
        self.modules: Dict[str, "ModuleUnderAnalysis"] = {
            m.module_path: m for m in modules
        }
        self._cache: Dict[str, object] = {}

    @property
    def index(self) -> ProjectIndex:
        return self.analysis("index", lambda: ProjectIndex(self.modules))

    def analysis(self, key: str, factory: Callable[[], object]):
        if key not in self._cache:
            self._cache[key] = factory()
        return self._cache[key]
