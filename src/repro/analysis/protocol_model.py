"""Wire-protocol conformance: frame schemas checked against the code.

PR 6 made the JSON-lines frame contract three-party — client, router,
shard daemon — with the router translating ids and re-tagging replies
in both directions.  Nothing but convention keeps the three from
drifting: a frame type misspelled in one of them, a required field
dropped, a dispatch chain that silently ignores a frame type the
protocol module advertises.  This checker turns the convention into a
model and the model into PROTO-* findings.

The model's ground truth is :mod:`repro.service.protocol` itself:
``PROTOCOL_VERSION`` and ``CLIENT_FRAME_TYPES`` are read out of the
analyzed tree's own ``service/protocol.py`` when present (so the lint
follows the code, not a copy of it), falling back to the built-in
schemas below.  Frame *shapes* — required and optional fields per type,
and the tag discipline (``_tagged`` adds ``tag``, the client's
``_call`` adds ``v`` and ``tag``, a shard link's ``call`` adds ``tag``)
— are maintained here, next to the rules that enforce them.

Five rules, all scoped to ``service/``:

* ``PROTO-UNKNOWN-TYPE`` — a frame literal's ``"type"`` or a dispatch
  comparison names a type no schema defines.
* ``PROTO-MISSING-FIELD`` — a frame literal (after crediting subscript
  assignments and tag-discipline helpers) lacks required fields.
* ``PROTO-VERSION-DRIFT`` — ``"v"`` spelled as a numeric literal
  instead of a ``PROTOCOL_VERSION`` reference.
* ``PROTO-UNKNOWN-FIELD`` — code consumes a frame field no schema
  produces (the classic silent typo: ``frame.get("requets")``).
* ``PROTO-DISPATCH`` — an if/elif chain over ``check_client_frame``'s
  result covers only some client frame types and has no ``else``.

Reads are only checked on *frame-shaped* receivers (parameters or
locals named ``frame``/``reply``/``hello``/``result``, or assigned from
``decode_frame``), so ordinary dicts that happen to carry a ``"type"``
key — session event records, option payloads — are never confused with
wire frames.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import Project
from repro.analysis.dataflow import RawFinding
from repro.analysis.findings import SEVERITY_ERROR
from repro.analysis.registry import ProjectChecker, call_name, project_rule

PROTO_SCOPE = ("service/",)

_DEFAULT_VERSION = 1
_DEFAULT_CLIENT_TYPES = ("submit", "cancel", "stats", "ping")


@dataclass(frozen=True)
class FrameSchema:
    """One frame shape: who sends it and which fields it must carry."""

    frame_type: str
    role: str  # "client" or "server"
    required: frozenset
    optional: frozenset


def _schema(frame_type, role, required, optional=()):
    return FrameSchema(
        frame_type=frame_type,
        role=role,
        required=frozenset(required),
        optional=frozenset(optional),
    )


# "stats" is both a client request and a server reply; a construction
# site conforms if it satisfies at least one schema for its type.
_BUILTIN_SCHEMAS = (
    _schema("submit", "client", ("type", "v", "request"), ("tag", "name")),
    _schema("cancel", "client", ("type", "v", "id"), ("tag",)),
    _schema("stats", "client", ("type", "v"), ("tag",)),
    _schema("ping", "client", ("type", "v"), ("tag",)),
    _schema("hello", "server", ("type", "v", "server")),
    _schema("pong", "server", ("type", "v"), ("tag",)),
    _schema("error", "server", ("type", "v", "error"), ("tag", "code")),
    _schema(
        "event",
        "server",
        ("type", "v", "id", "state"),
        ("tag", "name", "output", "cancelled"),
    ),
    _schema(
        "result",
        "server",
        ("type", "v", "id", "state"),
        ("tag", "report", "error"),
    ),
    _schema("stats", "server", ("type", "v", "stats"), ("tag",)),
)

# Helper-call discipline: a dict passed (directly or by name) through
# one of these gains the listed fields before hitting the wire.
_AUGMENTERS = {
    "_tagged": frozenset(["tag"]),
    "_call": frozenset(["tag", "v"]),
    "call": frozenset(["tag"]),
}

# Receiver names treated as wire frames for read/dispatch checks.
_FRAME_NAMES = ("frame", "reply", "hello", "result")


class ProtocolModel:
    """Schemas plus the constants extracted from service/protocol.py."""

    def __init__(
        self,
        version: int = _DEFAULT_VERSION,
        client_types: Tuple[str, ...] = _DEFAULT_CLIENT_TYPES,
    ) -> None:
        self.version = version
        self.client_types = client_types
        self.schemas: Dict[str, List[FrameSchema]] = {}
        for schema in _BUILTIN_SCHEMAS:
            self.schemas.setdefault(schema.frame_type, []).append(schema)
        self.all_types = frozenset(self.schemas) | frozenset(client_types)
        self.field_universe = frozenset(
            field
            for schema in _BUILTIN_SCHEMAS
            for field in schema.required | schema.optional
        )

    @classmethod
    def from_project(cls, project: Project) -> "ProtocolModel":
        version = _DEFAULT_VERSION
        client_types = _DEFAULT_CLIENT_TYPES
        for path in sorted(project.modules):
            if not path.endswith("service/protocol.py") and path != (
                "service/protocol.py"
            ):
                continue
            for node in ast.walk(project.modules[path].tree):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "PROTOCOL_VERSION" and isinstance(
                    node.value, ast.Constant
                ):
                    if isinstance(node.value.value, int):
                        version = node.value.value
                elif target.id == "CLIENT_FRAME_TYPES" and isinstance(
                    node.value, (ast.Tuple, ast.List)
                ):
                    names = [
                        elt.value
                        for elt in node.value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    ]
                    if names:
                        client_types = tuple(names)
        return cls(version=version, client_types=client_types)

    def missing_fields(self, frame_type: str, produced: Set[str]) -> List[str]:
        """Fields still required after the closest schema match."""
        best: Optional[List[str]] = None
        for schema in self.schemas.get(frame_type, []):
            missing = sorted(schema.required - produced)
            if not missing:
                return []
            if best is None or len(missing) < len(best):
                best = missing
        return best or []


def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _constant_key(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _frame_read(node: ast.AST) -> Optional[Tuple[str, str, ast.AST]]:
    """``(receiver, field, where)`` for ``X.get("f")`` / ``X["f"]``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and isinstance(node.func.value, ast.Name)
        and node.args
    ):
        field = _constant_key(node.args[0])
        if field is not None:
            return node.func.value.id, field, node
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and isinstance(node.ctx, ast.Load)
    ):
        field = _constant_key(node.slice)
        if field is not None:
            return node.value.id, field, node
    return None


class _FunctionScan:
    """Per-function facts the frame checks need: who is a frame, what
    fields each dict-by-name gains after construction."""

    def __init__(self, root: ast.AST, params: Set[str]) -> None:
        self.frame_names: Set[str] = set(_FRAME_NAMES) | params
        self.type_aliases: Set[str] = set()
        self.dispatch_vars: Set[str] = set()
        self.subscript_writes: Dict[str, Set[str]] = {}
        self.credits: Dict[str, Set[str]] = {}
        for node in _own_nodes(root):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self._learn_assignment(target.id, node.value)
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    field = _constant_key(target.slice)
                    if field is not None:
                        self.subscript_writes.setdefault(
                            target.value.id, set()
                        ).add(field)
            elif isinstance(node, ast.Call):
                helper = call_name(node.func).rsplit(".", 1)[-1]
                credit = _AUGMENTERS.get(helper)
                if credit and node.args and isinstance(node.args[0], ast.Name):
                    self.credits.setdefault(node.args[0].id, set()).update(
                        credit
                    )

    def _learn_assignment(self, name: str, value: ast.AST) -> None:
        helper = (
            call_name(value.func).rsplit(".", 1)[-1]
            if isinstance(value, ast.Call)
            else ""
        )
        if helper == "decode_frame":
            self.frame_names.add(name)
        elif helper == "check_client_frame":
            self.dispatch_vars.add(name)
        else:
            read = _frame_read(value)
            if (
                read is not None
                and read[0] in self.frame_names
                and read[1] == "type"
            ):
                self.type_aliases.add(name)

    def produced_fields(self, name: str) -> Set[str]:
        produced = set(self.subscript_writes.get(name, ()))
        produced |= self.credits.get(name, set())
        return produced


def _compute_proto(project: Project) -> List[RawFinding]:
    model = ProtocolModel.from_project(project)
    out: Dict[Tuple[str, str, int, int], RawFinding] = {}

    def emit(rule: str, path: str, node: ast.AST, message: str) -> None:
        key = (rule, path, node.lineno, node.col_offset + 1)
        if key not in out:
            out[key] = RawFinding(
                rule=rule,
                path=path,
                line=node.lineno,
                col=node.col_offset + 1,
                message=message,
            )

    index = project.index
    for path in sorted(project.modules):
        if not path.startswith(PROTO_SCOPE):
            continue
        module = project.modules[path]
        for info in index.by_module[path]:
            params = {p for p in info.params if p in _FRAME_NAMES}
            scan = _FunctionScan(info.node, params)
            for node in _own_nodes(info.node):
                _check_node(model, module, scan, node, path, emit)
    return sorted(
        out.values(), key=lambda f: (f.path, f.line, f.col, f.rule)
    )


def _check_node(model, module, scan, node, path, emit) -> None:
    if isinstance(node, ast.Dict):
        _check_frame_literal(model, module, scan, node, path, emit)
    elif isinstance(node, ast.Compare):
        _check_type_comparison(model, scan, node, path, emit)
        _check_dispatch_unknowns(model, scan, node, path, emit)
    elif isinstance(node, ast.If):
        _check_dispatch_chain(model, module, scan, node, path, emit)
    else:
        read = _frame_read(node)
        if read is not None and read[0] in scan.frame_names:
            field = read[1]
            if field not in model.field_universe:
                emit(
                    "PROTO-UNKNOWN-FIELD",
                    path,
                    node,
                    f"frame field {field!r} is consumed but no frame "
                    f"schema produces it; known fields: "
                    + ", ".join(sorted(model.field_universe)),
                )


def _check_frame_literal(model, module, scan, node, path, emit) -> None:
    frame_type = None
    produced: Set[str] = set()
    open_ended = False
    version_value: Optional[ast.AST] = None
    for key, value in zip(node.keys, node.values):
        if key is None:  # ``**spread``: field set unknowable
            open_ended = True
            continue
        field = _constant_key(key)
        if field is None:
            open_ended = True
            continue
        produced.add(field)
        if field == "type":
            frame_type = value.value if isinstance(value, ast.Constant) else None
        elif field == "v":
            version_value = value
    if "type" not in produced or frame_type is None:
        return  # not a frame construction
    if frame_type not in model.all_types:
        emit(
            "PROTO-UNKNOWN-TYPE",
            path,
            node,
            f"frame type {frame_type!r} is not part of the protocol; "
            f"known types: " + ", ".join(sorted(model.all_types)),
        )
        return
    if version_value is not None and isinstance(version_value, ast.Constant):
        emit(
            "PROTO-VERSION-DRIFT",
            path,
            version_value,
            f'frame pins "v" to the literal {version_value.value!r}; '
            f"reference PROTOCOL_VERSION so version bumps cannot drift",
        )
    elif version_value is not None:
        name = call_name(version_value)
        if name and name.rsplit(".", 1)[-1] != "PROTOCOL_VERSION":
            emit(
                "PROTO-VERSION-DRIFT",
                path,
                version_value,
                f'frame sets "v" from {name!r}; reference '
                f"PROTOCOL_VERSION so version bumps cannot drift",
            )
    if open_ended:
        return
    produced |= _context_credits(module, scan, node)
    missing = model.missing_fields(frame_type, produced)
    if missing:
        emit(
            "PROTO-MISSING-FIELD",
            path,
            node,
            f"{frame_type!r} frame is missing required field"
            + ("s " if len(missing) > 1 else " ")
            + ", ".join(missing),
        )


def _context_credits(module, scan, node: ast.Dict) -> Set[str]:
    """Fields the literal gains from where it flows after construction."""
    parent = module.parent(node)
    if isinstance(parent, ast.Call):
        helper = call_name(parent.func).rsplit(".", 1)[-1]
        credit = _AUGMENTERS.get(helper)
        if credit and parent.args and parent.args[0] is node:
            return set(credit)
    if isinstance(parent, (ast.Assign, ast.AnnAssign)):
        targets = (
            parent.targets
            if isinstance(parent, ast.Assign)
            else [parent.target]
        )
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            return scan.produced_fields(targets[0].id)
    return set()


def _type_expr_matches(scan, node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in scan.type_aliases
    read = _frame_read(node)
    return (
        read is not None and read[0] in scan.frame_names and read[1] == "type"
    )


def _comparison_constants(node: ast.Compare) -> List[Tuple[str, ast.AST]]:
    found = []
    for comparator in [node.left] + node.comparators:
        if isinstance(comparator, ast.Constant) and isinstance(
            comparator.value, str
        ):
            found.append((comparator.value, comparator))
        elif isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
            for elt in comparator.elts:
                if isinstance(elt, ast.Constant) and isinstance(
                    elt.value, str
                ):
                    found.append((elt.value, elt))
    return found


def _check_type_comparison(model, scan, node: ast.Compare, path, emit) -> None:
    sides = [node.left] + node.comparators
    if not any(_type_expr_matches(scan, side) for side in sides):
        return
    for value, where in _comparison_constants(node):
        if value not in model.all_types:
            emit(
                "PROTO-UNKNOWN-TYPE",
                path,
                where,
                f"comparison against frame type {value!r}, which is not "
                f"part of the protocol; known types: "
                + ", ".join(sorted(model.all_types)),
            )


def _check_dispatch_unknowns(model, scan, node: ast.Compare, path, emit):
    sides = [node.left] + node.comparators
    if not any(
        isinstance(s, ast.Name) and s.id in scan.dispatch_vars for s in sides
    ):
        return
    for value, where in _comparison_constants(node):
        if value not in model.client_types:
            emit(
                "PROTO-UNKNOWN-TYPE",
                path,
                where,
                f"dispatch on client frame type {value!r}, which "
                f"check_client_frame never returns; client types: "
                + ", ".join(model.client_types),
            )


def _dispatch_test_types(scan, test: ast.AST) -> Optional[Set[str]]:
    """Types one chain link handles, or None if not a dispatch test."""
    if not isinstance(test, ast.Compare):
        return None
    sides = [test.left] + test.comparators
    if not any(
        isinstance(s, ast.Name) and s.id in scan.dispatch_vars for s in sides
    ):
        return None
    if len(test.ops) == 1 and isinstance(test.ops[0], (ast.Eq, ast.In)):
        return {value for value, _ in _comparison_constants(test)}
    return None


def _check_dispatch_chain(model, module, scan, node: ast.If, path, emit):
    covered = _dispatch_test_types(scan, node.test)
    if covered is None:
        return
    parent = module.parent(node)
    if isinstance(parent, ast.If) and parent.orelse == [node]:
        return  # interior elif; the chain is judged from its head
    current = node
    while True:
        orelse = current.orelse
        if not orelse:
            missing = sorted(set(model.client_types) - covered)
            if missing:
                emit(
                    "PROTO-DISPATCH",
                    path,
                    node,
                    "client-frame dispatch handles only "
                    + ", ".join(sorted(covered))
                    + " and has no else branch; unhandled client types: "
                    + ", ".join(missing),
                )
            return
        if len(orelse) == 1 and isinstance(orelse[0], ast.If):
            more = _dispatch_test_types(scan, orelse[0].test)
            if more is None:
                return  # mixed condition: cannot judge exhaustiveness
            covered |= more
            current = orelse[0]
            continue
        return  # a real else branch: exhaustive by construction


def proto_findings(project: Project) -> List[RawFinding]:
    """All PROTO findings for a project, computed once and cached."""
    return project.analysis("proto", lambda: _compute_proto(project))


class _ProtoRule(ProjectChecker):
    def check(self, project: Project) -> None:
        for raw in proto_findings(project):
            if raw.rule == self.spec.id:
                self.report(raw.path, raw.line, raw.col, raw.message)


@project_rule(
    "PROTO-UNKNOWN-TYPE",
    title="frame type absent from the protocol schema",
    severity=SEVERITY_ERROR,
    category="PROTO",
    scope=PROTO_SCOPE,
    rationale=(
        "Every frame type on the wire must exist in the schema derived "
        "from service/protocol.py; a constructed or dispatched type "
        "outside it is a silent three-party drift between client, "
        "router and daemon."
    ),
)
class UnknownTypeRule(_ProtoRule):
    pass


@project_rule(
    "PROTO-MISSING-FIELD",
    title="frame constructed without its required fields",
    severity=SEVERITY_ERROR,
    category="PROTO",
    scope=PROTO_SCOPE,
    rationale=(
        "Required fields per frame type are part of the contract; the "
        "check credits the tag discipline (_tagged/_call/call add tag "
        "and v) and later subscript assignments, so only genuinely "
        "absent fields fire."
    ),
)
class MissingFieldRule(_ProtoRule):
    pass


@project_rule(
    "PROTO-VERSION-DRIFT",
    title='frame "v" not referencing PROTOCOL_VERSION',
    severity=SEVERITY_ERROR,
    category="PROTO",
    scope=PROTO_SCOPE,
    rationale=(
        "A hard-coded protocol version keeps working until the first "
        "real version bump, then fails only across mixed fleets; "
        "referencing PROTOCOL_VERSION makes the bump atomic."
    ),
)
class VersionDriftRule(_ProtoRule):
    pass


@project_rule(
    "PROTO-UNKNOWN-FIELD",
    title="frame field consumed that no schema produces",
    severity=SEVERITY_ERROR,
    category="PROTO",
    scope=PROTO_SCOPE,
    rationale=(
        'frame.get("requets") returns None forever and no test notices; '
        "checking consumed fields against the produced universe catches "
        "the typo at lint time."
    ),
)
class UnknownFieldRule(_ProtoRule):
    pass


@project_rule(
    "PROTO-DISPATCH",
    title="non-exhaustive client-frame dispatch",
    severity=SEVERITY_ERROR,
    category="PROTO",
    scope=PROTO_SCOPE,
    rationale=(
        "check_client_frame validates against CLIENT_FRAME_TYPES; an "
        "if/elif chain over its result that covers fewer types with no "
        "else drops valid frames on the floor when the protocol grows."
    ),
)
class DispatchRule(_ProtoRule):
    pass
