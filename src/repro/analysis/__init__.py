"""Repo-specific static analysis: the determinism / async-hygiene linter.

Every tier of this system is held to one invariant — reports
fingerprint-identical to the serial reference — and the service tier to
a second: nothing blocks the shared event loop.  The differential test
suites catch violations after the fact, on the inputs CI happens to run;
this package catches the *source patterns* that cause them, on every
line, at lint time (``step lint``).

Rule classes (full catalog in ``docs/analysis.md``):

* **DET** — unordered-set iteration in order-sensitive positions, wall-
  clock reads outside ``utils/timer.py``, entropy outside
  ``utils/rng.py``, ``id()`` in keys;
* **DET-FLOW** — whole-program taint flow: nondeterminism sources
  (sets, clocks, entropy, ``id()``) tracked through the call graph to
  fingerprint/cache/wire sinks, across module boundaries;
* **PROTO** — wire-protocol conformance of daemon/router/client frame
  construction and dispatch against schemas derived from
  ``service/protocol.py``;
* **ASYNC** — blocking calls inside the service tier's coroutines,
  ``await`` under a held threading lock;
* **ERR** — bare/swallowed broad excepts on scheduler/daemon paths,
  wire error replies without a correlation tag.

Findings are waived either inline (``# repro: allow[RULE-ID] reason`` —
a reviewed decision with its justification) or by the committed
``lint-baseline.json`` (legacy findings only; new code is never
baselined).
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.callgraph import Project, ProjectIndex
from repro.analysis.engine import (
    ModuleUnderAnalysis,
    analyze_paths,
    discover_files,
    module_path_for,
    render_json,
    render_text,
)
from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    AnalysisReport,
    Finding,
)
from repro.analysis.protocol_model import ProtocolModel
from repro.analysis.registry import (
    RULES,
    Checker,
    ProjectChecker,
    RuleSpec,
    project_rule,
    rule,
)
from repro.analysis.suppressions import Suppression, parse_suppressions

__all__ = [
    "AnalysisReport",
    "Checker",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "ModuleUnderAnalysis",
    "Project",
    "ProjectChecker",
    "ProjectIndex",
    "ProtocolModel",
    "RULES",
    "RuleSpec",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Suppression",
    "analyze_paths",
    "apply_baseline",
    "discover_files",
    "load_baseline",
    "module_path_for",
    "parse_suppressions",
    "project_rule",
    "render_json",
    "render_text",
    "rule",
    "write_baseline",
]
