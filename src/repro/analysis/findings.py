"""Findings — what the static analyzer reports.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects: the engine sorts them into a canonical order (path,
line, column, rule) so two runs over the same tree produce byte-identical
output — the analyzer is held to the same determinism bar it enforces.

Severities
----------
``error`` findings fail ``step lint`` (exit status 1) unless suppressed
inline or carried by the committed baseline; ``warning`` findings are
reported but never affect the exit status (today only the unused-
suppression hygiene rule emits them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the *module path* — the part of the file path below the
    ``repro`` package root (``core/scheduler.py``), or relative to the
    scanned directory for trees that contain no ``repro`` segment (the
    test fixtures).  Module paths keep baselines portable across
    checkouts and working directories.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, str]:
        """The identity baselines match on.

        Deliberately excludes the line number: unrelated edits above a
        legacy finding must not un-baseline it.
        """
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class AnalysisReport:
    """The outcome of one analyzer run.

    ``findings`` are the live (non-suppressed, non-baselined) findings in
    canonical order; ``suppressed``/``baselined`` count what inline
    ``allow`` comments and the baseline absorbed, so the text summary can
    be honest about how much is being waived.
    """

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    @property
    def blocking(self) -> bool:
        """True when the run must fail (any live error-severity finding)."""
        return bool(self.errors)
