"""Inline suppressions: ``# repro: allow[RULE-ID] reason``.

A suppression waives named rules for exactly one statement line — either
the line carrying the trailing comment, or (for a comment-only line) the
next line that holds code.  The *reason* is mandatory: a suppression is a
reviewed decision, and the decision's justification belongs next to it.
Suppressions are themselves linted:

* ``SUP-REASON`` (error) — an ``allow`` comment with no reason text;
* ``SUP-UNUSED`` (warning) — an ``allow`` comment that waived nothing,
  i.e. the hazard it excused has since been fixed or moved.

Comments are extracted with :mod:`tokenize`, so an ``allow`` spelled
inside a string literal or docstring is inert — only real comments
suppress.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)\]"
    r"\s*(?P<reason>.*)$"
)


@dataclass
class Suppression:
    """One parsed ``allow`` comment."""

    line: int  # line the comment itself is on (1-based)
    target_line: int  # line whose findings it waives
    rules: Tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)

    def covers(self, rule: str) -> bool:
        return rule in self.rules


def _comment_tokens(text: str) -> List[Tuple[int, int, str]]:
    """``(line, col, comment_text)`` for every real comment in ``text``.

    Tokenisation errors (the file may not even be valid Python — the
    engine reports that separately) degrade to "no comments seen".
    """
    comments: List[Tuple[int, int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def _next_code_line(lines: List[str], after: int) -> int:
    """The first line past ``after`` that holds code (1-based).

    Skips blank and comment-only lines so a standalone ``allow`` comment
    can sit above further commentary.  Falls back to the line after the
    comment when the file ends first (the suppression then simply
    matches nothing and is reported unused).
    """
    index = after  # ``after`` is 1-based; lines[after] is the next line
    while index < len(lines):
        stripped = lines[index].strip()
        if stripped and not stripped.startswith("#"):
            return index + 1
        index += 1
    return after + 1


def parse_suppressions(text: str) -> List[Suppression]:
    """Every ``allow`` comment in ``text``, with its resolved target line."""
    lines = text.splitlines()
    suppressions: List[Suppression] = []
    for line, col, comment in _comment_tokens(text):
        match = _ALLOW_RE.search(comment)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        reason = match.group("reason").strip()
        standalone = col == len(lines[line - 1]) - len(lines[line - 1].lstrip())
        target = _next_code_line(lines, line) if standalone else line
        suppressions.append(
            Suppression(line=line, target_line=target, rules=rules, reason=reason)
        )
    return suppressions


def suppressions_by_target(
    suppressions: List[Suppression],
) -> Dict[int, List[Suppression]]:
    table: Dict[int, List[Suppression]] = {}
    for suppression in suppressions:
        table.setdefault(suppression.target_line, []).append(suppression)
    return table
