"""The committed finding baseline: legacy findings that don't block.

``lint-baseline.json`` records findings that predate a rule (or a rule's
tightening) so adopting the analyzer never requires a big-bang cleanup:
baselined findings are subtracted from a run, anything *new* still fails.
The policy for this repo (docs/analysis.md) is that new code never gets
baselined — genuine findings are fixed or carry an inline suppression
with a written reason; the baseline only ever shrinks.

Matching is by ``(rule, module path, message)`` with multiplicity — not
by line number, so unrelated edits above a legacy finding don't
un-baseline it, and fixing one of two identical findings in a file still
surfaces the other as fixed (the stale baseline entry is reported by
``--write-baseline`` refreshes, which always emit canonically sorted
JSON so diffs stay reviewable).
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Iterable, List, Tuple

from repro.analysis.findings import Finding
from repro.errors import ReproError

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"

BaselineKey = Tuple[str, str, str]


def load_baseline(path: str) -> Counter:
    """The baseline's ``(rule, path, message) -> count`` multiset.

    A malformed baseline is a hard error, not an empty waiver set: a
    truncated file silently waiving nothing would fail CI with hundreds
    of "new" findings and no hint why.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read baseline {path!r}: {exc}") from None
    except ValueError as exc:
        raise ReproError(f"baseline {path!r} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ReproError(
            f"baseline {path!r}: expected a version-{BASELINE_VERSION} baseline object"
        )
    entries = payload.get("findings", [])
    if not isinstance(entries, list):
        raise ReproError(f"baseline {path!r}: 'findings' must be a list")
    counts: Counter = Counter()
    for entry in entries:
        if not isinstance(entry, dict):
            raise ReproError(f"baseline {path!r}: malformed finding entry {entry!r}")
        try:
            key = (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
            count = int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError):
            raise ReproError(
                f"baseline {path!r}: malformed finding entry {entry!r}"
            ) from None
        if count < 1:
            raise ReproError(
                f"baseline {path!r}: count must be positive in {entry!r}"
            )
        counts[key] += count
    return counts


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as a canonically ordered baseline; return count.

    Entries are sorted by (rule, path, message) and the JSON is emitted
    with sorted keys, so regenerating an unchanged baseline is a no-op
    diff.
    """
    counts: Counter = Counter(f.baseline_key() for f in findings)
    entries: List[dict] = [
        {"rule": rule, "path": module_path, "message": message, "count": count}
        for (rule, module_path, message), count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as exc:
        raise ReproError(f"cannot write baseline {path!r}: {exc}") from None
    return sum(counts.values())


def apply_baseline(
    findings: List[Finding], baseline: Counter
) -> Tuple[List[Finding], int, Counter]:
    """Subtract baselined findings.

    Returns ``(live findings, waived count, stale entries)`` — the third
    element is the multiset of baseline entries no current finding
    consumed, which the engine surfaces as ``BASELINE-STALE`` warnings
    so a rotting baseline cannot hide silently.
    """
    remaining = Counter(baseline)
    live: List[Finding] = []
    waived = 0
    for finding in findings:
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            waived += 1
        else:
            live.append(finding)
    stale = Counter({key: count for key, count in remaining.items() if count > 0})
    return live, waived, stale
