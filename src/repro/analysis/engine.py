"""The analysis engine: discovery, parsing, two phases, filtering, output.

``analyze_paths`` is the whole pipeline the CLI and tests drive:

1. discover ``.py`` files under the given paths (sorted — the run order,
   and therefore the output, is reproducible);
2. parse each into a :class:`ModuleUnderAnalysis` (AST + parent links +
   comment-derived suppressions);
3. **phase 1** — run every in-scope module rule's checker over ONE walk
   of each AST;
4. **phase 2** — hand all parsed modules at once to the project
   checkers (call-graph taint flow, protocol conformance); their
   findings join the owning module's so inline suppressions work
   identically for both phases;
5. apply inline suppressions, then the baseline (unconsumed baseline
   entries surface as ``BASELINE-STALE`` warnings);
6. append the suppression-hygiene findings (missing reason, unused) and
   apply the optional severity filter.

Findings come back in canonical (path, line, col, rule) order inside an
:class:`AnalysisReport`; ``render_text``/``render_json`` turn it into
the two CLI output formats.
"""

from __future__ import annotations

import ast
import json
import os
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.baseline import apply_baseline
from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    AnalysisReport,
    Finding,
)
from repro.analysis.registry import RULES, RuleSpec
from repro.analysis.suppressions import (
    Suppression,
    parse_suppressions,
    suppressions_by_target,
)
from repro.errors import ReproError

# Importing the rule modules populates the registry (dataflow and
# protocol_model register the phase-2 project rules).
from repro.analysis import rules_async  # noqa: F401
from repro.analysis import rules_det  # noqa: F401
from repro.analysis import rules_err  # noqa: F401
from repro.analysis import dataflow  # noqa: F401
from repro.analysis import protocol_model  # noqa: F401
from repro.analysis.callgraph import Project

# Meta-findings the engine itself emits (they are rules in the catalog
# sense — documented, baselineable — but need no checker class).
RULE_PARSE = "PARSE"
RULE_SUP_REASON = "SUP-REASON"
RULE_SUP_UNUSED = "SUP-UNUSED"
RULE_BASELINE_STALE = "BASELINE-STALE"


class ModuleUnderAnalysis:
    """One parsed source file plus the navigation aids checkers need."""

    def __init__(self, path: str, module_path: str, text: str) -> None:
        self.path = path
        self.module_path = module_path
        self.text = text
        self.tree = ast.parse(text, filename=path)  # SyntaxError handled above
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent  # repro: allow[DET-ID-KEY] within-one-walk parent links; never ordered, hashed into results, or persisted
        self.suppressions: List[Suppression] = parse_suppressions(text)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))  # repro: allow[DET-ID-KEY] same within-walk parent-link lookup as above

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)


def module_path_for(path: str, root: str) -> str:
    """The scope-relative module path of ``path`` (see Finding.path).

    Uses the part below the innermost ``repro`` package directory when
    there is one, so scanning ``src/repro``, ``src`` or a single file
    all yield the same stable paths; otherwise falls back to the path
    relative to the scanned root.
    """
    normalized = os.path.abspath(path).replace(os.sep, "/")
    head, sep, tail = normalized.rpartition("/repro/")
    if sep:
        return tail
    if os.path.isdir(root):
        return os.path.relpath(path, root).replace(os.sep, "/")
    # A lone file outside any repro package: keep its parent directory so
    # directory-scoped rules (core/, service/ …) still resolve.
    parent = os.path.basename(os.path.dirname(normalized))
    name = os.path.basename(normalized)
    return f"{parent}/{name}" if parent else name


def discover_files(paths: Sequence[str]) -> List[tuple]:
    """Sorted ``(file_path, scan_root)`` pairs under ``paths``."""
    files: List[tuple] = []
    for path in paths:
        if os.path.isfile(path):
            files.append((path, path))
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append((os.path.join(dirpath, filename), path))
        else:
            raise ReproError(f"no such file or directory: {path!r}")
    return sorted(files)


def _select_rules(only: Optional[Sequence[str]]) -> List[RuleSpec]:
    if only is None:
        return [RULES[rule_id] for rule_id in sorted(RULES)]
    specs = []
    for rule_id in only:
        if rule_id not in RULES:
            raise ReproError(
                f"unknown rule {rule_id!r}; known rules: {', '.join(sorted(RULES))}"
            )
        specs.append(RULES[rule_id])
    return specs


def _run_checkers(module: ModuleUnderAnalysis, specs: List[RuleSpec]) -> List[Finding]:
    checkers = [spec.checker(module) for spec in specs]
    for checker in checkers:
        checker.begin()
    dispatch = []
    for checker in checkers:
        table = {}
        for name in dir(checker):
            if name.startswith("visit_"):
                table[name[len("visit_") :]] = getattr(checker, name)
        dispatch.append(table)
    for node in ast.walk(module.tree):
        node_type = type(node).__name__
        for table in dispatch:
            handler = table.get(node_type)
            if handler is not None:
                handler(node)
    findings: List[Finding] = []
    for checker in checkers:
        checker.finish()
        findings.extend(checker.findings)
    return findings


def _apply_suppressions(
    module: ModuleUnderAnalysis, findings: List[Finding]
) -> tuple:
    """Split one module's findings into (live, suppressed_count)."""
    by_target = suppressions_by_target(module.suppressions)
    live: List[Finding] = []
    suppressed = 0
    for finding in findings:
        waivers = by_target.get(finding.line, [])
        matched = None
        for suppression in waivers:
            if suppression.covers(finding.rule):
                matched = suppression
                break
        if matched is not None:
            matched.used = True
            suppressed += 1
        else:
            live.append(finding)
    return live, suppressed


def _suppression_hygiene(
    module: ModuleUnderAnalysis, *, check_unused: bool = True
) -> List[Finding]:
    findings: List[Finding] = []
    for suppression in module.suppressions:
        if not suppression.reason:
            findings.append(
                Finding(
                    rule=RULE_SUP_REASON,
                    severity=SEVERITY_ERROR,
                    path=module.module_path,
                    line=suppression.line,
                    col=1,
                    message=(
                        "suppression of "
                        + ", ".join(suppression.rules)
                        + " has no reason; write why the finding is acceptable"
                    ),
                )
            )
        if check_unused and not suppression.used:
            findings.append(
                Finding(
                    rule=RULE_SUP_UNUSED,
                    severity=SEVERITY_WARNING,
                    path=module.module_path,
                    line=suppression.line,
                    col=1,
                    message=(
                        "suppression of "
                        + ", ".join(suppression.rules)
                        + " matched no finding; delete the stale comment"
                    ),
                )
            )
    return findings


def analyze_paths(
    paths: Sequence[str],
    *,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Counter] = None,
    project: bool = True,
    severity: Optional[str] = None,
) -> AnalysisReport:
    """Run the analyzer over ``paths`` and return the filtered report.

    ``rules`` restricts the run to the given rule ids (``--select``);
    ``project=False`` skips the phase-2 whole-program checkers;
    ``severity`` keeps only findings of that severity in the report.
    With an active rule selection the run is partial by construction,
    so the soundness-dependent meta findings (``SUP-UNUSED``,
    ``BASELINE-STALE``) are withheld — a suppression or baseline entry
    for a deselected rule is not stale, it is merely out of view.
    """
    specs = _select_rules(rules)
    module_specs = [spec for spec in specs if not spec.project]
    project_specs = [spec for spec in specs if spec.project]
    full_run = rules is None
    report = AnalysisReport()
    all_findings: List[Finding] = []
    modules: List[ModuleUnderAnalysis] = []
    raw_by_module: Dict[int, List[Finding]] = {}
    for file_path, scan_root in discover_files(paths):
        module_path = module_path_for(file_path, scan_root)
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            raise ReproError(f"cannot read {file_path!r}: {exc}") from None
        try:
            module = ModuleUnderAnalysis(file_path, module_path, text)
        except SyntaxError as exc:
            all_findings.append(
                Finding(
                    rule=RULE_PARSE,
                    severity=SEVERITY_ERROR,
                    path=module_path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            report.files_scanned += 1
            continue
        report.files_scanned += 1
        modules.append(module)
        in_scope = [
            spec for spec in module_specs if spec.applies_to(module_path)
        ]
        raw_by_module[len(modules) - 1] = _run_checkers(module, in_scope)

    if project and modules and project_specs:
        whole_program = Project(modules)
        by_path = {
            module.module_path: position
            for position, module in enumerate(modules)
        }
        for spec in project_specs:
            checker = spec.checker()
            checker.check(whole_program)
            for finding in checker.findings:
                if not spec.applies_to(finding.path):
                    continue
                position = by_path.get(finding.path)
                if position is None:
                    all_findings.append(finding)
                else:
                    raw_by_module[position].append(finding)

    for position, module in enumerate(modules):
        live, suppressed = _apply_suppressions(
            module, raw_by_module[position]
        )
        report.suppressed += suppressed
        all_findings.extend(live)
        # A partial run (rule selection or skipped phase 2) cannot judge
        # whether a suppression is unused.
        all_findings.extend(
            _suppression_hygiene(module, check_unused=full_run and project)
        )

    if baseline:
        all_findings, waived, stale = apply_baseline(all_findings, baseline)
        report.baselined = waived
        if full_run and project:
            for (rule_id, path, message), count in sorted(stale.items()):
                snippet = (
                    message if len(message) <= 60 else message[:57] + "..."
                )
                multiplicity = f" ({count}x)" if count > 1 else ""
                all_findings.append(
                    Finding(
                        rule=RULE_BASELINE_STALE,
                        severity=SEVERITY_WARNING,
                        path=path,
                        line=1,
                        col=1,
                        message=(
                            f"baseline entry for {rule_id}{multiplicity} "
                            f"no longer matches any finding "
                            f"({snippet!r}); refresh with --write-baseline"
                        ),
                    )
                )
    if severity is not None:
        all_findings = [f for f in all_findings if f.severity == severity]
    report.findings = sorted(all_findings, key=Finding.sort_key)
    return report


def render_text(report: AnalysisReport) -> str:
    lines = [finding.render() for finding in report.findings]
    summary = (
        f"{report.files_scanned} file(s): "
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
    )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    if report.baselined:
        summary += f", {report.baselined} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    payload = {
        "version": 1,
        "files_scanned": report.files_scanned,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "findings": [finding.to_json() for finding in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
