"""The rule framework: specs, the registry, and the checker base classes.

A *rule* is an id, a severity, a scope (which module paths it applies
to) and a checker class; the :func:`rule` decorator registers all of it
in one place so the engine, the CLI's ``--list-rules`` table and the
docs catalog all read from the same source of truth.

Two kinds of checkers exist, matching the engine's two phases:

* **Module checkers** (:class:`Checker`, registered with :func:`rule`)
  are AST visitors in the classic ``visit_<NodeType>`` style, but
  dispatch is driven by the engine's single walk over each module: one
  parse, one traversal, every in-scope rule — adding a rule never adds
  a pass.  A checker is instantiated once per (rule, module) pair, so
  per-module state (import maps, set-typed name inference) lives
  naturally on the instance; ``begin()`` runs before the walk,
  ``finish()`` after.

* **Project checkers** (:class:`ProjectChecker`, registered with
  :func:`project_rule`) run in phase 2, once per *run*, over every
  parsed module at once — that is where the whole-program analyses
  (call-graph taint flow, wire-protocol conformance) live.  Expensive
  shared artifacts (the call graph, the taint fixpoint) are cached on
  the :class:`repro.analysis.callgraph.Project` each checker receives,
  so a family of rules sharing one analysis still computes it once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple, Type

from repro.analysis.findings import SEVERITIES, Finding

if TYPE_CHECKING:  # circular at runtime: engine imports this module
    from repro.analysis.engine import ModuleUnderAnalysis


@dataclass(frozen=True)
class RuleSpec:
    """Everything the engine and the docs need to know about one rule."""

    id: str
    title: str
    severity: str
    category: str
    scope: Tuple[str, ...]  # module-path prefixes; empty = whole tree
    exclude: Tuple[str, ...]  # module-path prefixes exempted from the scope
    rationale: str
    checker: type
    project: bool = False  # True: phase-2 whole-program checker

    def applies_to(self, module_path: str) -> bool:
        if any(module_path.startswith(prefix) for prefix in self.exclude):
            return False
        if not self.scope:
            return True
        return any(module_path.startswith(prefix) for prefix in self.scope)


# id -> spec, in registration order; iterate sorted(RULES) for output.
RULES: Dict[str, RuleSpec] = {}


def rule(
    rule_id: str,
    *,
    title: str,
    severity: str,
    category: str,
    scope: Tuple[str, ...] = (),
    exclude: Tuple[str, ...] = (),
    rationale: str = "",
):
    """Class decorator registering a :class:`Checker` under ``rule_id``."""
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r} for rule {rule_id}")

    def register(checker: Type["Checker"]) -> Type["Checker"]:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        spec = RuleSpec(
            id=rule_id,
            title=title,
            severity=severity,
            category=category,
            scope=tuple(scope),
            exclude=tuple(exclude),
            rationale=rationale,
            checker=checker,
        )
        RULES[rule_id] = spec
        checker.spec = spec
        return checker

    return register


class Checker:
    """Base class of every rule checker.

    Subclasses implement ``visit_<NodeType>`` methods; the engine calls
    the matching method for every node of its walk.  ``self.report``
    records a finding at a node's location under this rule's id and
    severity.
    """

    spec: RuleSpec  # installed by @rule

    def __init__(self, module: "ModuleUnderAnalysis") -> None:
        self.module = module
        self.findings: List[Finding] = []

    def begin(self) -> None:
        """Per-module setup before the walk (import maps, inference)."""

    def finish(self) -> None:
        """Per-module wrap-up after the walk."""

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=self.spec.id,
                severity=self.spec.severity,
                path=self.module.module_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )


def project_rule(
    rule_id: str,
    *,
    title: str,
    severity: str,
    category: str,
    scope: Tuple[str, ...] = (),
    exclude: Tuple[str, ...] = (),
    rationale: str = "",
):
    """Class decorator registering a :class:`ProjectChecker`.

    Project rules live in the same ``RULES`` table as module rules —
    ``--list-rules``, ``--select``, inline suppressions and the baseline
    treat both kinds uniformly — but the engine runs them in phase 2,
    once per run, with the whole :class:`~repro.analysis.callgraph.Project`
    in hand.  ``scope``/``exclude`` filter the *paths of the findings*
    they emit, not which modules they may look at: a whole-program
    checker must see everything to reason about anything.
    """
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r} for rule {rule_id}")

    def register(checker: Type["ProjectChecker"]) -> Type["ProjectChecker"]:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        spec = RuleSpec(
            id=rule_id,
            title=title,
            severity=severity,
            category=category,
            scope=tuple(scope),
            exclude=tuple(exclude),
            rationale=rationale,
            checker=checker,
            project=True,
        )
        RULES[rule_id] = spec
        checker.spec = spec
        return checker

    return register


class ProjectChecker:
    """Base class of phase-2 whole-program checkers.

    Subclasses implement ``check(project)`` and call ``self.report``
    with an explicit path/line/col — unlike module checkers they are
    not bound to a single file, so location is spelled out per finding.
    """

    spec: RuleSpec  # installed by @project_rule

    def __init__(self) -> None:
        self.findings: List[Finding] = []

    def check(self, project) -> None:
        raise NotImplementedError

    def report(self, path: str, line: int, col: int, message: str) -> None:
        self.findings.append(
            Finding(
                rule=self.spec.id,
                severity=self.spec.severity,
                path=path,
                line=line,
                col=col,
                message=message,
            )
        )


def call_name(node: ast.AST) -> str:
    """Dotted name of a call target / reference, best effort.

    ``time.perf_counter`` -> ``"time.perf_counter"``; deeper attribute
    chains keep their last two segments (``datetime.datetime.now`` ->
    ``"datetime.now"`` is matched by suffix).  Unresolvable shapes
    (subscripts, calls) return ``""``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = call_name(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""
