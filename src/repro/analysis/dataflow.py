"""Summary-based taint flow from nondeterminism sources to identity sinks.

The per-module DET rules (:mod:`repro.analysis.rules_det`) catch the
pattern *at the site where it is written*: a set iterated here, a clock
read there.  The historical bugs this repo exists to prevent were not
written at one site — a helper returns a set, a distant caller freezes
it with ``list()`` and feeds it into ``canonical_cone_signature``, and
every module involved looks locally innocent.  This module sees the
whole chain.

**Model.**  A taint is ``(kind, source)`` where *kind* is one of

======== =============================================================
set      the value *is* an unordered container (iteration order varies)
set-order the value carries a frozen-but-arbitrary order (``list(s)``)
wallclock derived from a wall-clock read
rng      derived from an unseeded entropy source
id       derived from ``id()`` (an allocation address)
param    symbolic: "whatever the caller passes as parameter *i*"
======== =============================================================

and *source* is a stable human-readable origin ("set built in
core/helpers.py").  Expressions are evaluated abstractly: unions for
arithmetic and container displays, laundering for ``sorted()`` (order
kinds die, value kinds survive — a sorted list of timestamps is ordered
but still machine-dependent), freezing for ``list()``/``tuple()`` of a
set (``set`` becomes ``set-order``: the arbitrary order is now
load-bearing).

**Summaries.**  Each function gets ``(returns, sink_params)``:  the
taints of its return value (symbolic ``param`` taints let argument
taint flow through helpers) and which parameters reach a sink inside it
(transitively).  Summaries are iterated to a fixpoint over the call
graph — all transfer ops are unions and filters, so the sequence is
monotone and converges; recursion costs extra rounds, not correctness.
Findings are collected in a final reporting pass after convergence and
attach to the *sink call site*, the one line where the chain becomes a
reproducibility bug.

Unresolved calls propagate only value kinds (``wallclock``/``rng``/
``id``): claiming order flow through unknown code would drown the
signal in noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.analysis.callgraph import (
    MODULE_BODY,
    FunctionInfo,
    Project,
    ProjectIndex,
)
from repro.analysis.findings import SEVERITY_ERROR
from repro.analysis.registry import ProjectChecker, call_name, project_rule

# Findings are emitted only for these tiers; the analysis itself reads
# every module (utils/ helpers still propagate taint into core/).
FLOW_SCOPE = ("aig/", "core/", "obs/", "service/", "api/")

_ORDER_KINDS = ("set", "set-order")
_VALUE_KINDS = ("wallclock", "rng", "id")

# kind -> rule id that fires when it reaches a sink.
_KIND_RULES = {
    "set": "DET-FLOW-ORDER",
    "set-order": "DET-FLOW-ORDER",
    "wallclock": "DET-FLOW-TIME",
    "rng": "DET-FLOW-RNG",
    "id": "DET-FLOW-ID",
}

_KIND_LABELS = {
    "set": "unordered set",
    "set-order": "set-derived ordering",
    "wallclock": "wall-clock value",
    "rng": "entropy-derived value",
    "id": "id()-derived value",
}

_WALLCLOCK_FUNCS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}
_DATETIME_FUNCS = {"now", "utcnow", "today"}
_RNG_NAMES = {"os.urandom", "uuid.uuid4", "uuid.uuid1"}
# Filesystem enumeration: element *set* is stable, order is not.
_FS_ORDER_FUNCS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}

# Last call-name segment -> sink category.  The four families protect
# the identity surfaces from docs/architecture.md: cone fingerprints,
# wire frames, hash digests, serialized snapshots / cache keys.
SINKS = {
    "canonical_cone_signature": "fingerprint",
    "cone_signature": "fingerprint",
    "search_fingerprint": "fingerprint",
    "encode_frame": "wire",
    "encode_request": "wire",
    "encode_report": "wire",
    "encode_circuit": "wire",
    "blake2b": "hash",
    "sha256": "hash",
    "sha1": "hash",
    "md5": "hash",
    "dumps": "snapshot",
}

_ORDER_INSENSITIVE = {"min", "max", "len", "sum", "any", "all"}
_TRANSPARENT_BUILTINS = {
    "str",
    "repr",
    "format",
    "int",
    "float",
    "bool",
    "abs",
    "round",
    "bytes",
    "hash",
    "dict",
    "reversed",
    "enumerate",
    "zip",
    "iter",
    "next",
}
_PRESERVING_METHODS = {
    "keys",
    "values",
    "items",
    "copy",
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}
_ACCUMULATORS = {"append", "extend", "insert", "add", "update"}


@dataclass(frozen=True, order=True)
class Taint:
    kind: str
    source: str


@dataclass(frozen=True)
class Summary:
    returns: frozenset = frozenset()
    sink_params: Tuple[Tuple[int, str], ...] = ()


class RawFinding(NamedTuple):
    rule: str
    path: str
    line: int
    col: int
    message: str


def _union(*taint_sets: Set[Taint]) -> Set[Taint]:
    out: Set[Taint] = set()
    for taints in taint_sets:
        out |= taints
    return out


def _strip(taints: Set[Taint], kinds: Tuple[str, ...]) -> Set[Taint]:
    return {t for t in taints if t.kind not in kinds}


def _element_taint(taints: Set[Taint]) -> Set[Taint]:
    """Taint of one element drawn by iterating a tainted value.

    Drawing from a ``set`` yields values in arbitrary order, so the
    element position (and anything accumulated from it) is order
    tainted; all other kinds ride along unchanged.
    """
    out: Set[Taint] = set()
    for t in taints:
        if t.kind == "set":
            out.add(Taint("set-order", t.source))
        else:
            out.add(t)
    return out


class _FunctionAnalyzer:
    """One abstract-interpretation pass over one function body."""

    def __init__(
        self,
        index: ProjectIndex,
        info: FunctionInfo,
        summaries: Dict[str, Summary],
        module_envs: Dict[str, Dict[str, frozenset]],
        collector: Optional[Dict[Tuple[str, str, int, int], RawFinding]] = None,
    ) -> None:
        self.index = index
        self.info = info
        self.summaries = summaries
        self.module_envs = module_envs
        self.collector = collector
        self.env: Dict[str, Set[Taint]] = {}
        self.returns: Set[Taint] = set()
        self.sink_params: Dict[int, str] = {}
        self._order_depth = 0
        self._order_source = ""
        for i, name in enumerate(info.params):
            self.env[name] = {Taint("param", str(i))}

    # -- driver --------------------------------------------------------

    def run(self) -> Summary:
        if self.info.name == MODULE_BODY:
            body = [
                s
                for s in self.info.node.body
                if not isinstance(
                    s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
        else:
            body = self.info.node.body
        self._do_body(body)
        return Summary(
            returns=frozenset(self.returns),
            sink_params=tuple(sorted(self.sink_params.items())),
        )

    def export_module_env(self) -> Dict[str, frozenset]:
        return {
            name: frozenset(taints)
            for name, taints in self.env.items()
            if taints and "." not in name
        }

    # -- statements ----------------------------------------------------

    def _do_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._do_stmt(stmt)

    def _do_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # analyzed as their own functions
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taints)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taints = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, set())
                self.env[stmt.target.id] = _union(current, taints)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns |= self._eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._do_for(stmt)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._do_body(stmt.body)
            self._do_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._do_body(stmt.body)
            self._do_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints)
            self._do_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._do_body(stmt.body)
            for handler in stmt.handlers:
                self._do_body(handler.body)
            self._do_body(stmt.orelse)
            self._do_body(stmt.finalbody)
        else:
            # Raise, Assert, Delete, ... — evaluate embedded expressions
            # so sink calls inside them are still seen.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)

    def _do_for(self, stmt) -> None:
        iter_taints = self._eval(stmt.iter)
        self._bind(stmt.target, _element_taint(iter_taints))
        ordered = [t for t in iter_taints if t.kind in _ORDER_KINDS]
        if ordered:
            self._order_depth += 1
            previous = self._order_source
            self._order_source = min(ordered).source
        self._do_body(stmt.body)
        self._do_body(stmt.orelse)
        if ordered:
            self._order_depth -= 1
            self._order_source = previous

    def _bind(self, target: ast.expr, taints: Set[Taint]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(taints)
        elif isinstance(target, ast.Attribute):
            dotted = call_name(target)
            if dotted.startswith("self."):
                self.env[dotted] = set(taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taints)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taints)
        elif isinstance(target, ast.Subscript):
            # Writing into a container taints the container.
            self._eval(target.slice)
            if isinstance(target.value, ast.Name):
                current = self.env.get(target.value.id, set())
                self.env[target.value.id] = _union(current, taints)

    # -- expressions ---------------------------------------------------

    def _lookup(self, dotted: str) -> Set[Taint]:
        if dotted in self.env:
            return self.env[dotted]
        if "." in dotted:
            # Module-level variable of an imported module/symbol.
            bindings = self.index.bindings.get(self.info.module_path, {})
            for bound in sorted(bindings, key=len, reverse=True):
                if dotted == bound or dotted.startswith(f"{bound}."):
                    binding = bindings[bound]
                    rest = dotted[len(bound) + 1 :]
                    if binding[0] == "module" and rest and "." not in rest:
                        env = self.module_envs.get(binding[1], {})
                        return set(env.get(rest, frozenset()))
                    return set()
            return set()
        symbol = self.index.resolve_symbol_module(
            self.info.module_path, dotted
        )
        if symbol is not None:
            env = self.module_envs.get(symbol[0], {})
            return set(env.get(symbol[1], frozenset()))
        # Module-level fallback for functions reading module globals.
        env = self.module_envs.get(self.info.module_path, {})
        return set(env.get(dotted, frozenset()))

    def _eval(self, node: ast.expr) -> Set[Taint]:
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.Attribute):
            dotted = call_name(node)
            if dotted:
                return self._lookup(dotted)
            self._eval(node.value)
            return set()
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return _union(self._eval(node.left), self._eval(node.right))
        if isinstance(node, ast.BoolOp):
            return _union(*[self._eval(v) for v in node.values])
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return set()  # booleans do not carry order/value identity
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return _union(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, ast.Dict):
            parts = [self._eval(k) for k in node.keys if k is not None]
            parts += [self._eval(v) for v in node.values]
            return _union(*parts) if parts else set()
        if isinstance(node, (ast.List, ast.Tuple)):
            return _union(*[self._eval(e) for e in node.elts]) if node.elts else set()
        if isinstance(node, ast.Set):
            inner = _union(*[self._eval(e) for e in node.elts]) if node.elts else set()
            return _strip(inner, _ORDER_KINDS) | {self._set_taint()}
        if isinstance(node, ast.SetComp):
            inner = self._eval_comprehension(node, [node.elt])
            return _strip(inner, _ORDER_KINDS) | {self._set_taint()}
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._eval_comprehension(node, [node.key, node.value])
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.JoinedStr):
            return _union(*[self._eval(v) for v in node.values]) if node.values else set()
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(node, ast.NamedExpr):
            taints = self._eval(node.value)
            self._bind(node.target, taints)
            return taints
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self.returns |= self._eval(node.value)
            return set()
        parts = [
            self._eval(child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        ]
        return _union(*parts) if parts else set()

    def _eval_comprehension(self, node, result_exprs) -> Set[Taint]:
        order: Set[Taint] = set()
        for gen in node.generators:
            iter_taints = self._eval(gen.iter)
            self._bind(gen.target, _element_taint(iter_taints))
            for condition in gen.ifs:
                self._eval(condition)
            for t in iter_taints:
                if t.kind in _ORDER_KINDS:
                    order.add(Taint("set-order", t.source))
        result = _union(*[self._eval(e) for e in result_exprs])
        return result | order

    def _set_taint(self) -> Taint:
        return Taint("set", f"set built in {self.info.module_path}")

    # -- calls ---------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> Set[Taint]:
        name = call_name(node.func)
        last = name.rsplit(".", 1)[-1]
        arg_taints = [self._eval(a) for a in node.args]
        kw_taints = [(kw.arg, self._eval(kw.value)) for kw in node.keywords]
        everything = _union(*arg_taints, *[t for _, t in kw_taints])

        source = self._match_source(node, name, last)
        if source is not None:
            return {source}

        if last in SINKS:
            label = f"{SINKS[last]} sink {last}()"
            self._sink_hit(node, everything, label)
            return set()

        if name == "sorted":
            # The sanctioned laundering step: order dies, values do not.
            # Symbolic param taints are dropped too — the order channel
            # is the one sorted() is used for (documented approximation).
            return _strip(everything, _ORDER_KINDS + ("param",))
        if name in ("list", "tuple"):
            frozen = {
                Taint("set-order", t.source) if t.kind == "set" else t
                for t in everything
            }
            return frozen
        if name in ("set", "frozenset"):
            return _strip(everything, _ORDER_KINDS) | {self._set_taint()}
        if name in _ORDER_INSENSITIVE:
            return _strip(everything, _ORDER_KINDS)
        if name in _TRANSPARENT_BUILTINS:
            return everything

        if isinstance(node.func, ast.Attribute):
            handled = self._eval_method(node, last, everything)
            if handled is not None:
                return handled

        resolved = self.index.resolve_call(self.info, node)
        if resolved is not None:
            return self._apply_summary(node, resolved, arg_taints, kw_taints)

        if isinstance(node.func, ast.Attribute):
            # An unrecognized method is a transform of its receiver
            # (``.encode()``, ``.strip()``, …): the receiver's taints
            # survive; argument taints get the unknown-callable rule.
            receiver_taints = self._eval(node.func.value)
            return _union(
                receiver_taints,
                {t for t in everything if t.kind in _VALUE_KINDS},
            )

        # Unknown callable: only value kinds survive — pretending order
        # flows through arbitrary code would bury real findings.
        return {t for t in everything if t.kind in _VALUE_KINDS}

    def _match_source(
        self, node: ast.Call, name: str, last: str
    ) -> Optional[Taint]:
        path = self.info.module_path
        head = name.rpartition(".")[0].split(".")[-1]
        if head == "time" and last in _WALLCLOCK_FUNCS:
            return Taint("wallclock", f"{name}() in {path}")
        if head in ("datetime", "date") and last in _DATETIME_FUNCS:
            return Taint("wallclock", f"{name}() in {path}")
        if head in ("random", "secrets") or name in _RNG_NAMES:
            return Taint("rng", f"{name}() in {path}")
        if name == "id" and len(node.args) == 1:
            return Taint("id", f"id() in {path}")
        if name in _FS_ORDER_FUNCS or last == "iterdir":
            return Taint("set-order", f"{name}() in {path}")
        return None

    def _eval_method(
        self, node: ast.Call, attr: str, everything: Set[Taint]
    ) -> Optional[Set[Taint]]:
        receiver = node.func.value
        receiver_taints = self._eval(receiver)
        if attr in _PRESERVING_METHODS:
            return _union(receiver_taints, everything)
        if attr == "sort" and isinstance(receiver, ast.Name):
            self.env[receiver.id] = _strip(
                self.env.get(receiver.id, set()), _ORDER_KINDS + ("param",)
            )
            return set()
        if attr == "pop" and any(t.kind == "set" for t in receiver_taints):
            # set.pop() removes an *arbitrary* element.
            return _element_taint(receiver_taints)
        if attr == "join":
            return _union(receiver_taints, everything)
        if attr == "get":
            return _union(receiver_taints, everything)
        if attr in _ACCUMULATORS:
            added = set(everything)
            if (
                self._order_depth
                and attr != "add"
                and not any(t.kind == "set" for t in receiver_taints)
            ):
                # Appending inside iteration over an unordered source
                # bakes the arbitrary visit order into the accumulator.
                added.add(Taint("set-order", self._order_source))
            target = call_name(receiver)
            if target and (target in self.env or "." not in target):
                self.env[target] = _union(
                    self.env.get(target, set()), added
                )
            return set()
        return None

    def _apply_summary(
        self,
        node: ast.Call,
        callee: FunctionInfo,
        arg_taints: List[Set[Taint]],
        kw_taints: List[Tuple[Optional[str], Set[Taint]]],
    ) -> Set[Taint]:
        summary = self.summaries.get(callee.qualname, Summary())
        offset = (
            1
            if callee.class_name and callee.params[:1] in (("self",), ("cls",))
            else 0
        )

        def taints_for_param(index: int) -> Optional[Set[Taint]]:
            position = index - offset
            if 0 <= position < len(arg_taints):
                return arg_taints[position]
            if 0 <= index < len(callee.params):
                wanted = callee.params[index]
                for kw_name, taints in kw_taints:
                    if kw_name == wanted:
                        return taints
            return None

        result: Set[Taint] = set()
        for t in summary.returns:
            if t.kind == "param":
                passed = taints_for_param(int(t.source))
                if passed:
                    result |= passed
            else:
                result.add(t)
        short = callee.name.rsplit(".", 1)[-1]
        for index, label in summary.sink_params:
            passed = taints_for_param(index)
            if passed:
                self._sink_hit(node, passed, f"{label} via {short}()")
        return result

    def _sink_hit(
        self, node: ast.Call, taints: Set[Taint], label: str
    ) -> None:
        for t in sorted(taints):
            if t.kind == "param":
                self.sink_params.setdefault(int(t.source), label)
            elif t.kind in _KIND_RULES and self.collector is not None:
                rule_id = _KIND_RULES[t.kind]
                key = (
                    rule_id,
                    self.info.module_path,
                    node.lineno,
                    node.col_offset + 1,
                )
                if key not in self.collector:
                    self.collector[key] = RawFinding(
                        rule=rule_id,
                        path=self.info.module_path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        message=(
                            f"{_KIND_LABELS[t.kind]} ({t.source}) reaches "
                            f"{label}; make it deterministic before it "
                            f"enters the identity surface"
                        ),
                    )


_MAX_ROUNDS = 20


def _compute_flow(project: Project) -> List[RawFinding]:
    index = project.index
    summaries: Dict[str, Summary] = {}
    module_envs: Dict[str, Dict[str, frozenset]] = {
        path: {} for path in index.by_module
    }
    ordered = [
        info
        for path in sorted(index.by_module)
        for info in index.by_module[path]
    ]
    for info in ordered:
        summaries[info.qualname] = Summary()

    for _ in range(_MAX_ROUNDS):
        changed = False
        for info in ordered:
            analyzer = _FunctionAnalyzer(index, info, summaries, module_envs)
            summary = analyzer.run()
            if summary != summaries[info.qualname]:
                summaries[info.qualname] = summary
                changed = True
            if info.name == MODULE_BODY:
                env = analyzer.export_module_env()
                if env != module_envs[info.module_path]:
                    module_envs[info.module_path] = env
                    changed = True
        if not changed:
            break

    collector: Dict[Tuple[str, str, int, int], RawFinding] = {}
    for info in ordered:
        _FunctionAnalyzer(
            index, info, summaries, module_envs, collector=collector
        ).run()
    return sorted(
        collector.values(), key=lambda f: (f.path, f.line, f.col, f.rule)
    )


def flow_findings(project: Project) -> List[RawFinding]:
    """All DET-FLOW findings for a project, computed once and cached."""
    return project.analysis("taint-flow", lambda: _compute_flow(project))


class _FlowRule(ProjectChecker):
    """Each DET-FLOW rule filters its id out of the shared taint run."""

    def check(self, project: Project) -> None:
        for raw in flow_findings(project):
            if raw.rule == self.spec.id:
                self.report(raw.path, raw.line, raw.col, raw.message)


@project_rule(
    "DET-FLOW-ORDER",
    title="set-derived ordering reaches a fingerprint/cache/wire sink",
    severity=SEVERITY_ERROR,
    category="DET-FLOW",
    scope=FLOW_SCOPE,
    rationale=(
        "A set's iteration order — even frozen through list()/tuple() or "
        "laundered across module boundaries — must never reach a cone "
        "fingerprint, hash digest, cache snapshot or wire frame. The "
        "chain is tracked through the call graph; sorted(...) at any hop "
        "kills the taint."
    ),
)
class OrderFlowRule(_FlowRule):
    pass


@project_rule(
    "DET-FLOW-TIME",
    title="wall-clock value reaches a fingerprint/cache/wire sink",
    severity=SEVERITY_ERROR,
    category="DET-FLOW",
    scope=FLOW_SCOPE,
    rationale=(
        "Timing is measurement metadata, never identity: a clock reading "
        "folded into a fingerprint, cache key or encoded frame makes "
        "identical runs produce different artifacts."
    ),
)
class TimeFlowRule(_FlowRule):
    pass


@project_rule(
    "DET-FLOW-RNG",
    title="entropy-derived value reaches a fingerprint/cache/wire sink",
    severity=SEVERITY_ERROR,
    category="DET-FLOW",
    scope=FLOW_SCOPE,
    rationale=(
        "Unseeded entropy (random, os.urandom, uuid4, secrets) flowing "
        "into an identity surface breaks run-to-run reproducibility even "
        "when every individual module passes DET-RNG locally."
    ),
)
class RngFlowRule(_FlowRule):
    pass


@project_rule(
    "DET-FLOW-ID",
    title="id()-derived value reaches a fingerprint/cache/wire sink",
    severity=SEVERITY_ERROR,
    category="DET-FLOW",
    scope=FLOW_SCOPE,
    rationale=(
        "id() values are allocation addresses; any fingerprint, key or "
        "frame derived from one is unreproducible by construction, no "
        "matter how many helpers it passed through on the way."
    ),
)
class IdFlowRule(_FlowRule):
    pass
