"""ASYNC-class rules: event-loop hygiene in the service tier.

The daemon and router multiplex every client connection onto one asyncio
loop; a single blocking call in a coroutine stalls all of them at once
(and, worse, does so only under load — exactly the failure differential
tests never see).  CPU-bound or blocking work belongs in
``loop.run_in_executor`` (see ``service/daemon.py``'s submit path for
the idiom).
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, call_name, rule
from repro.analysis.findings import SEVERITY_ERROR

# The asyncio-native tiers: coroutines here run on the one shared loop.
ASYNC_SCOPE = ("service/", "api/aio.py")

# Dotted call names that block the calling thread outright.
_BLOCKING_DOTTED = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "os.system": "run it in an executor",
    "subprocess.run": "use asyncio.create_subprocess_exec",
    "subprocess.call": "use asyncio.create_subprocess_exec",
    "subprocess.check_call": "use asyncio.create_subprocess_exec",
    "subprocess.check_output": "use asyncio.create_subprocess_exec",
    "socket.socket": "use asyncio streams (open_connection/start_server)",
    "socket.create_connection": "use asyncio.open_connection",
}
# Bare-name calls that open blocking channels inside a coroutine.  The
# sync ServiceClient and sync Session are the repo-specific offenders:
# both park the thread on socket/pool waits.
_BLOCKING_NAMES = {
    "open": "do file I/O in an executor",
    "input": "never prompt inside the service loop",
    "ServiceClient": "use the async wire client or an executor",
    "Session": "use repro.api.aio.AsyncSession",
}


def _enclosing_function(module, node):
    """Nearest enclosing function def, or None at module level."""
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


@rule(
    "ASYNC-BLOCKING",
    title="blocking call inside a coroutine",
    severity=SEVERITY_ERROR,
    category="ASYNC",
    scope=ASYNC_SCOPE,
    rationale=(
        "A blocking call inside `async def` freezes the daemon's event "
        "loop for every connected client; push blocking work through "
        "loop.run_in_executor or use the asyncio-native equivalent."
    ),
)
class BlockingCallChecker(Checker):
    def visit_Call(self, node: ast.Call) -> None:
        function = _enclosing_function(self.module, node)
        if not isinstance(function, ast.AsyncFunctionDef):
            return
        name = call_name(node.func)
        hint = _BLOCKING_DOTTED.get(name)
        if hint is None and isinstance(node.func, ast.Name):
            hint = _BLOCKING_NAMES.get(name)
        if hint is not None:
            self.report(
                node,
                f"blocking call {name}(...) inside `async def "
                f"{function.name}` stalls the event loop; {hint}",
            )


@rule(
    "ASYNC-LOCK-AWAIT",
    title="await while holding a threading lock",
    severity=SEVERITY_ERROR,
    category="ASYNC",
    rationale=(
        "`await` suspends the coroutine with the threading lock still "
        "held; any thread (or the loop itself, re-entering) that needs "
        "the lock then deadlocks. Hold thread locks only across straight-"
        "line code, or use asyncio.Lock with `async with`."
    ),
)
class LockAwaitChecker(Checker):
    _LOCK_CONSTRUCTORS = {"threading.Lock", "threading.RLock", "Lock", "RLock"}

    def _lock_like(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):
            return call_name(expr.func) in self._LOCK_CONSTRUCTORS
        name = call_name(expr)
        return "lock" in name.rsplit(".", 1)[-1].lower()

    def visit_Await(self, node: ast.Await) -> None:
        # Walk outward to the enclosing function only: a `with lock:` in
        # an *outer* function does not span this coroutine's awaits.
        for ancestor in self.module.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    if self._lock_like(item.context_expr):
                        self.report(
                            node,
                            "await while holding a threading lock "
                            f"({ast.unparse(item.context_expr)}); release "
                            "it first or use asyncio.Lock",
                        )
                        return
