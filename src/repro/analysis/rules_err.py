"""ERR-class rules: error-path discipline in the scheduler and service.

One failed request must never take the scheduler down — but the dual
discipline is that no failure may vanish either: every broad catch has
to record, relay or re-raise, and every wire error reply has to carry
the client's correlation tag so the failure lands on the request that
caused it.
"""

from __future__ import annotations

import ast

from repro.analysis.registry import Checker, call_name, rule
from repro.analysis.findings import SEVERITY_ERROR

# The always-on tiers where a swallowed failure strands requests.
ERROR_PATH_SCOPE = ("core/", "service/", "api/")

_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def _names_in(expr: ast.AST):
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            yield node.id


@rule(
    "ERR-BARE-EXCEPT",
    title="bare except:",
    severity=SEVERITY_ERROR,
    category="ERR",
    rationale=(
        "A bare except catches SystemExit and KeyboardInterrupt too, "
        "turning shutdown signals into silent continues. Catch a named "
        "exception type (BaseException if interception really is the "
        "point, with a reason)."
    ),
)
class BareExceptChecker(Checker):
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node, "bare `except:`; name the exception type being handled"
            )


@rule(
    "ERR-SWALLOW",
    title="broad exception swallowed",
    severity=SEVERITY_ERROR,
    category="ERR",
    scope=ERROR_PATH_SCOPE,
    rationale=(
        "In the scheduler/daemon tiers a swallowed Exception strands the "
        "request it belonged to: nothing marks the ticket failed, nothing "
        "replies to the client. Broad catches must record, relay or "
        "re-raise — `pass` is only acceptable for narrow, named "
        "exceptions."
    ),
)
class SwallowedExceptionChecker(Checker):
    def _is_broad(self, type_node: ast.AST) -> bool:
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        return call_name(type_node).rsplit(".", 1)[-1] in _BROAD_EXCEPTIONS

    def _handles(self, statement: ast.stmt) -> bool:
        """True when the statement plausibly *does* something with the
        failure: raises, calls, assigns, returns/yields a value…"""
        if isinstance(statement, (ast.Pass, ast.Continue, ast.Break)):
            return False
        if isinstance(statement, ast.Return):
            return statement.value is not None and not isinstance(
                statement.value, ast.Constant
            )
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            return False  # a stray docstring/ellipsis is not handling
        return True

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None or not self._is_broad(node.type):
            return
        if not any(self._handles(statement) for statement in node.body):
            self.report(
                node,
                "broad exception caught and swallowed; record the failure "
                "(ticket/reply/log) or re-raise",
            )


@rule(
    "ERR-UNTAGGED-REPLY",
    title="error reply without a correlation tag",
    severity=SEVERITY_ERROR,
    category="ERR",
    scope=("service/",),
    rationale=(
        "The wire protocol correlates replies by the client's `tag`; an "
        "error frame sent without one cannot be matched to the submit "
        "that failed, so pipelined clients hang. Route error frames "
        "through the connection's _tagged(...) helper."
    ),
)
class UntaggedErrorReplyChecker(Checker):
    def _dict_keys(self, node: ast.Dict):
        for key in node.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                yield key.value

    def _is_error_frame(self, node: ast.Dict) -> bool:
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "type"
                and isinstance(value, ast.Constant)
                and value.value == "error"
            ):
                return True
        return False

    def visit_Dict(self, node: ast.Dict) -> None:
        if not self._is_error_frame(node):
            return
        if "tag" in set(self._dict_keys(node)):
            return
        for ancestor in self.module.ancestors(node):
            if isinstance(ancestor, ast.Call):
                callee = call_name(ancestor.func).rsplit(".", 1)[-1]
                if callee == "_tagged":
                    return
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        self.report(
            node,
            'error frame built without a "tag"; wrap it in the '
            "connection's _tagged(...) helper",
        )
