"""DET-class rules: source patterns that can break fingerprint identity.

Every tier of this repo is held to one invariant — reports byte-identical
to the serial reference (docs/architecture.md).  These rules make the
three source-level ways of silently breaking it visible at lint time:

* iterating a ``set`` in an order-sensitive position (``DET-SET-ITER``),
* reading the wall clock outside ``utils/timer.py`` (``DET-WALLCLOCK``),
* drawing entropy outside ``utils/rng.py`` (``DET-RNG``),
* keying anything off ``id()`` (``DET-ID-KEY``).
"""

from __future__ import annotations

import ast
from typing import Set

from repro.analysis.registry import Checker, call_name, rule
from repro.analysis.findings import SEVERITY_ERROR

# Module paths whose outputs feed hashes, fingerprints, wire frames or
# schedule order — the determinism-critical tiers named in the invariant.
DETERMINISM_SCOPE = ("aig/", "core/", "obs/", "service/")

_SET_ANNOTATIONS = {"set", "Set", "frozenset", "FrozenSet", "MutableSet"}
_SET_BUILTINS = {"set", "frozenset"}
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
# list()/tuple() of a set materialises the arbitrary order instead of
# hiding it; sorted() is the sanctioned laundering step.
_SEQUENCE_WRAPPERS = {"list", "tuple"}
# Iteration consumers whose result cannot depend on element order.
_ORDER_INSENSITIVE_CALLS = {
    "len",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "set",
    "frozenset",
    "sorted",
}


def _annotation_is_set(annotation: ast.AST) -> bool:
    """True for ``set``/``Set[...]``/``frozenset`` style annotations."""
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # ``from __future__ import annotations`` keeps these as strings.
        head = annotation.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1] in _SET_ANNOTATIONS
    name = call_name(annotation)
    return name.rsplit(".", 1)[-1] in _SET_ANNOTATIONS


@rule(
    "DET-SET-ITER",
    title="order-sensitive iteration over a set",
    severity=SEVERITY_ERROR,
    category="DET",
    scope=DETERMINISM_SCOPE,
    rationale=(
        "Set iteration order depends on insertion history and hash "
        "randomisation; feeding it into hashes, fingerprints, wire frames "
        "or schedule order silently breaks report reproducibility. Wrap "
        "the iterable in sorted(...) or restructure around a list/dict."
    ),
)
class SetIterationChecker(Checker):
    """Flags ``for``/comprehension iteration over set-typed expressions.

    Set-typedness is inferred per module: set literals, set
    comprehensions, ``set()``/``frozenset()`` calls, set-returning
    methods, set-set binary operators, plus any name or attribute the
    module visibly assigns or annotates as a set (a flat, per-module
    namespace — deliberately simple, matched to this codebase's idiom).
    """

    def begin(self) -> None:
        self.set_names: Set[str] = set()
        self.set_attrs: Set[str] = set()
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.Assign) and self._is_set_expr(node.value):
                for target in node.targets:
                    self._learn(target)
            elif isinstance(node, ast.AnnAssign) and (
                _annotation_is_set(node.annotation)
                or (node.value is not None and self._is_set_expr(node.value))
            ):
                self._learn(node.target)
            elif isinstance(node, ast.arg):
                if node.annotation is not None and _annotation_is_set(
                    node.annotation
                ):
                    self.set_names.add(node.arg)

    def _learn(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.set_names.add(target.id)
        elif isinstance(target, ast.Attribute):
            self.set_attrs.add(target.attr)

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute):
            return node.attr in self.set_attrs
        if isinstance(node, ast.Call):
            name = call_name(node.func)
            if name in _SET_BUILTINS:
                return True
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in _SET_METHODS and self._is_set_expr(
                    node.func.value
                ):
                    return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _unwrap(self, node: ast.AST) -> ast.AST:
        """See through list()/tuple() — they freeze set order, not fix it."""
        while (
            isinstance(node, ast.Call)
            and call_name(node.func) in _SEQUENCE_WRAPPERS
            and len(node.args) == 1
        ):
            node = node.args[0]
        return node

    def _check_iterable(self, iterable: ast.AST) -> None:
        unwrapped = self._unwrap(iterable)
        if self._is_set_expr(unwrapped):
            self.report(
                iterable,
                "iteration order of a set is not reproducible; "
                "wrap the iterable in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iterable(node.iter)

    def _check_comprehension(self, node) -> None:
        # A set/frozenset-building comprehension is itself unordered, so
        # the order it consumes its source in cannot leak; dict/list/
        # generator comprehensions preserve (and thus expose) it.
        if isinstance(node, ast.SetComp):
            return
        parent = self.module.parent(node)
        if isinstance(node, ast.GeneratorExp) and isinstance(parent, ast.Call):
            consumer = call_name(parent.func)
            if consumer in _ORDER_INSENSITIVE_CALLS:
                return
        for comprehension in node.generators:
            self._check_iterable(comprehension.iter)

    visit_ListComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_SetComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension


@rule(
    "DET-WALLCLOCK",
    title="wall-clock read outside utils/timer.py",
    severity=SEVERITY_ERROR,
    category="DET",
    exclude=("utils/timer.py",),
    rationale=(
        "Deadlines and stopwatches are centralised in utils/timer.py so "
        "timeout semantics (and their truncation-witness accounting) stay "
        "in one audited place; ad-hoc clock reads drift into results and "
        "make reports machine-dependent."
    ),
)
class WallClockChecker(Checker):
    _TIME_FUNCS = {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
    _DATETIME_FUNCS = {"now", "utcnow", "today"}

    def begin(self) -> None:
        # ``from time import perf_counter`` style aliases.
        self.clock_names: Set[str] = set()
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._TIME_FUNCS:
                        self.clock_names.add(alias.asname or alias.name)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = call_name(node)
        head, _, attr = name.rpartition(".")
        if head.split(".")[-1] == "time" and attr in self._TIME_FUNCS:
            self.report(node, f"wall-clock read {name}; use utils/timer.py")
        elif (
            head.split(".")[-1] in ("datetime", "date")
            and attr in self._DATETIME_FUNCS
        ):
            self.report(node, f"wall-clock read {name}; use utils/timer.py")

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id in self.clock_names:
            self.report(
                node, f"wall-clock read {node.id}; use utils/timer.py"
            )


@rule(
    "DET-RNG",
    title="entropy source outside utils/rng.py",
    severity=SEVERITY_ERROR,
    category="DET",
    exclude=("utils/rng.py",),
    rationale=(
        "All randomness flows through utils/rng.py (deterministic_rng / "
        "job_rng / seeded jobs) so identical runs draw identical streams "
        "regardless of worker placement; the global random module, "
        "os.urandom, secrets and uuid4 are unseeded or unseedable."
    ),
)
class RngChecker(Checker):
    def begin(self) -> None:
        self.entropy_names: Set[str] = set()
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "random",
                "secrets",
            ):
                for alias in node.names:
                    self.entropy_names.add(alias.asname or alias.name)

    def visit_Call(self, node: ast.Call) -> None:
        name = call_name(node.func)
        head = name.rpartition(".")[0].split(".")[-1]
        if head in ("random", "secrets"):
            self.report(node, f"direct entropy source {name}; use utils/rng.py")
        elif name in ("os.urandom", "uuid.uuid4", "uuid.uuid1"):
            self.report(node, f"direct entropy source {name}; use utils/rng.py")
        elif isinstance(node.func, ast.Name) and node.func.id in self.entropy_names:
            self.report(
                node, f"direct entropy source {node.func.id}; use utils/rng.py"
            )


@rule(
    "DET-ID-KEY",
    title="id() used where a stable key is required",
    severity=SEVERITY_ERROR,
    category="DET",
    rationale=(
        "id() values are allocation addresses: unstable across runs and "
        "recycled within one. Keys, hashes and orderings built from them "
        "are unreproducible. Within-run identity sets used purely for "
        "membership are the one legitimate use — suppress those with a "
        "written reason."
    ),
)
class IdKeyChecker(Checker):
    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
        ):
            self.report(
                node,
                "id() is not stable across runs; do not use it in keys or "
                "ordering",
            )
