"""A CDCL SAT solver with a pure-Python reference and an optional C kernel.

The solver implements the standard conflict-driven clause learning loop:

* two-literal watching for unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style variable activities with phase saving,
* Luby-sequence restarts,
* literal-block-distance (LBD) based learned-clause reduction with lazy
  watcher cleanup (deleted clauses are dropped from watcher lists as
  propagation encounters them instead of by an eager sweep),
* incremental solving under assumptions with failed-assumption (core)
  extraction, and
* optional resolution-proof logging, used by
  :mod:`repro.sat.interpolate` to compute Craig interpolants which the
  bi-decomposition engine turns into the functions ``fA`` and ``fB``.

Two interchangeable substrates implement the loop:

* :class:`PySolver` — the pure-Python reference.  It favours clarity but is
  careful about the usual hot spots: literals are encoded as small integers
  internally (``2*var`` for the positive literal, ``2*var + 1`` for the
  negative one) and propagation is a tight loop over watcher lists.  Binary
  clauses — the majority in Tseitin encodings — are propagated from
  dedicated ``(other, clause)`` watch lists that need no watch moves; long
  clauses use the classic two-watched-literal scheme with in-place
  watcher-list compaction.
* :class:`CKernelSolver` — a thin wrapper over the optional compiled
  extension :mod:`repro.sat._ckernel` (built by
  ``python setup.py build_ext --inplace``), which implements the identical
  state machine in C.  The kernel is *decision-for-decision identical* to
  the Python path — same VSIDS tie-breaking (bit-exact IEEE-754 activity
  arithmetic and ``heapq`` semantics), same Luby restarts, same LBD
  reduction — so kernel-on and kernel-off runs produce bit-identical
  reports; ``tests/test_kernel_differential.py`` holds it to that.

:func:`Solver` picks the substrate: the compiled kernel when it is
importable, the pure path when the build is absent, when
``STEP_PURE_PYTHON=1`` is set, and always when proof logging is requested
(the proof machinery stays pure Python by design).
"""

from __future__ import annotations

import os
import threading
from array import array
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import SolverError
from repro.sat.cnf import CNF
from repro.sat.proof import Proof, ResolutionChain
from repro.utils.timer import Deadline

try:  # pragma: no cover - exercised only when the extension is built
    from repro.sat import _ckernel
except ImportError:  # pragma: no cover - the pure fallback is always valid
    _ckernel = None

TRUE = 1
FALSE = 0
UNASSIGNED = -1

#: Environment variable forcing the pure-Python path even when the compiled
#: kernel is importable.  Checked at :func:`Solver` construction time so a
#: test (or a CI job) can flip substrates without re-importing the module.
PURE_PYTHON_ENV = "STEP_PURE_PYTHON"

#: Learned clauses with an LBD at or below this are "glue" clauses
#: (Audemard & Simon): they connect few decision levels and are kept
#: forever by :meth:`PySolver._reduce_db` (and by the kernel's twin).
GLUE_LBD = 2

#: Learned-clause count that triggers a database reduction.
REDUCE_BASE = 4000


def kernel_available() -> bool:
    """True when the compiled kernel extension imported successfully."""
    return _ckernel is not None


def kernel_forced_pure() -> bool:
    """True when ``STEP_PURE_PYTHON`` requests the pure-Python path."""
    return os.environ.get(PURE_PYTHON_ENV, "") not in ("", "0")


def active_kernel_name() -> str:
    """The substrate :func:`Solver` would pick right now (``c``/``python``).

    Surfaced as ``schedule["solver_kernel"]`` so every report says which
    substrate produced it.  Proof-logging solvers are always ``python``
    regardless of this value.
    """
    if kernel_available() and not kernel_forced_pure():
        return "c"
    return "python"


# --------------------------------------------------------------- work counters

# Per-thread totals of solver work (conflicts, decisions, propagations)
# across every solver instance.  The engine driver samples this around each
# partition search to attribute solver work to the result's
# SearchStatistics; thread-local storage keeps concurrently running jobs
# (thread backend) from bleeding into each other's counts.
_work = threading.local()


def _work_cells() -> List[int]:
    cells = getattr(_work, "cells", None)
    if cells is None:
        cells = _work.cells = [0, 0, 0]
    return cells


_WORK_COUNTERS = None


def _obs_work_counters():
    """Process-wide obs counters for solver work (lazy; never hot-path)."""
    global _WORK_COUNTERS
    if _WORK_COUNTERS is None:
        from repro.obs.registry import default_registry

        registry = default_registry()
        _WORK_COUNTERS = tuple(
            registry.counter(
                f"repro_solver_{kind}_total",
                f"total solver {kind} across every substrate in this process",
            )
            for kind in ("conflicts", "decisions", "propagations")
        )
    return _WORK_COUNTERS


def solver_work_snapshot() -> Tuple[int, int, int]:
    """Cumulative (conflicts, decisions, propagations) for this thread.

    Sampling also flushes this thread's un-reported work into the
    process-wide :mod:`repro.obs` counters — the engine driver samples
    around every partition search, so the metrics surface tracks solver
    work without touching the CDCL hot loop itself.  (Process-backend
    workers flush into *their own* process's registry; cross-process
    totals come from ``schedule["solver_stats"]``, which rides on the
    results.)
    """
    cells = _work_cells()
    flushed = getattr(_work, "flushed", None)
    if flushed is None:
        flushed = _work.flushed = [0, 0, 0]
    counters = _obs_work_counters()
    for index in range(3):
        delta = cells[index] - flushed[index]
        if delta:
            counters[index].inc(delta)
            flushed[index] = cells[index]
    return (cells[0], cells[1], cells[2])


def _internal(lit: int) -> int:
    """DIMACS literal -> internal index (2*var positive, 2*var+1 negative)."""
    var = abs(lit)
    return 2 * var + (1 if lit < 0 else 0)


def _external(ilit: int) -> int:
    var = ilit >> 1
    return -var if ilit & 1 else var


def _neg(ilit: int) -> int:
    return ilit ^ 1


@dataclass
class SolveResult:
    """Outcome of a :meth:`PySolver.solve` call.

    ``status`` is ``True`` for SAT, ``False`` for UNSAT and ``None`` when a
    conflict budget or deadline expired before a verdict was reached.  For
    UNSAT answers obtained under assumptions, ``core`` holds a subset of the
    assumption literals whose conjunction with the clause database is already
    unsatisfiable.
    """

    status: Optional[bool]
    model: Dict[int, bool] = field(default_factory=dict)
    core: Tuple[int, ...] = ()
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0

    def __bool__(self) -> bool:
        return self.status is True


class _Clause:
    """Internal clause record (original or learned).

    ``lits`` is set to ``None`` when the clause is discarded by database
    reduction: the watcher lists are *not* swept eagerly — propagation drops
    dead clauses as it walks past them (lazy watcher cleanup), which turns
    the old O(all watcher lists) purge into work that is amortised into the
    hot loop's existing compaction.
    """

    __slots__ = ("lits", "learned", "activity", "cid", "lbd", "locked")

    def __init__(self, lits: List[int], learned: bool, cid: int) -> None:
        self.lits: Optional[List[int]] = lits
        self.learned = learned
        self.activity = 0.0
        self.cid = cid
        # Literal-block distance: distinct decision levels among the
        # clause's literals at learning time (0 for original clauses).
        self.lbd = 0
        # Scratch flag used by _reduce_db (reason clauses survive).
        self.locked = False


class PySolver:
    """Incremental CDCL solver over DIMACS-style integer literals.

    This is the pure-Python reference implementation; construct solvers via
    the :func:`Solver` factory, which transparently substitutes the compiled
    kernel when one is available.

    Parameters
    ----------
    proof:
        When true the solver records a resolution chain for every learned
        clause and, upon a top-level refutation, a derivation of the empty
        clause.  Clause-database reduction is disabled in this mode so that
        every recorded antecedent stays available, and input clauses are
        never shortened so that their recorded literals match the clauses
        actually used during search.
    """

    def __init__(self, proof: bool = False) -> None:
        self.proof_logging = proof
        self._num_vars = 0
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        # _watches[ilit] holds the long clauses watching the negation of ilit
        # (clauses to inspect when ilit becomes true).  Binary clauses live in
        # _bin_watches[ilit] as (other, clause) tuples: when ilit becomes
        # true, ``other`` is the only literal that can still satisfy the
        # clause, so propagation needs no watch moves and never touches the
        # clause's literal array.
        self._watches: List[List[_Clause]] = [[], []]
        self._bin_watches: List[List[Tuple[int, _Clause]]] = [[], []]
        # The assignment store stays a plain list on purpose: an
        # array('b')/bytearray variant (8x denser) was measured on
        # benchmarks/bench_solver_hotpath.py and LOST ~30% end to end —
        # CPython boxes every typed-array read, while list reads return
        # cached references, and the propagation loop reads _assigns
        # several times per visited clause.  Numbers in
        # docs/architecture.md; do not redo without re-measuring — typed
        # assignment stores belong in the compiled kernel (_ckernel.c uses
        # a plain int8 array), where reads cost a load, not a boxing.
        self._assigns: List[int] = [UNASSIGNED]
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._activity: List[float] = [0.0]
        # Saved phases tolerate the typed-array read tax (one write per
        # enqueue, one read per decision — far colder than _assigns) in
        # exchange for one byte per variable.
        self._phase = array("b", [0])
        self._var_inc = 1.0
        self._var_inc_growth = 1.0 / 0.95  # reciprocal of the VSIDS decay
        self._cla_inc = 1.0
        self._cla_inc_growth = 1.0 / 0.999  # reciprocal of the clause decay
        self._order_heap: List[Tuple[float, int]] = []
        self._ok = True
        self._proof: Optional[Proof] = Proof() if proof else None
        self._next_cid = 0
        self._seen: List[int] = [0]
        self._reduce_base = REDUCE_BASE
        # statistics
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self._model: Dict[int, bool] = {}
        self._core: Tuple[int, ...] = ()

    # ------------------------------------------------------------------ API

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def ok(self) -> bool:
        """False once the clause database is unsatisfiable on its own."""
        return self._ok

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self._num_vars += 1
        var = self._num_vars
        self._assigns.append(UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        self._seen.append(0)
        self._watches.append([])  # 2*var
        self._watches.append([])  # 2*var + 1
        self._bin_watches.append([])
        self._bin_watches.append([])
        heappush(self._order_heap, (0.0, var))
        return var

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self.new_var()

    def add_clause(self, lits: Iterable[int]) -> Optional[int]:
        """Add a clause (an iterable of DIMACS literals).

        Returns the clause's proof identifier, or ``None`` when the clause is
        a tautology and was dropped.  Clauses may only be added at decision
        level 0 (the solver always returns to level 0 between ``solve``
        calls).
        """
        if self._trail_lim:
            raise SolverError("add_clause called while the solver holds decisions")
        seen: Set[int] = set()
        clause: List[int] = []
        for lit in lits:
            if not isinstance(lit, int) or isinstance(lit, bool) or lit == 0:
                raise SolverError(f"invalid literal {lit!r}")
            self._ensure_var(abs(lit))
            ilit = _internal(lit)
            if _neg(ilit) in seen:
                return None  # tautology
            if ilit in seen:
                continue
            seen.add(ilit)
            clause.append(ilit)
        cid = self._new_cid([_external(l) for l in clause])
        if not self._ok:
            return cid

        if any(self._value(l) == TRUE for l in clause):
            # Satisfied by the level-0 assignment: the clause can never be an
            # antecedent, so it is safe to drop it even under proof logging.
            return cid
        if self._proof is None:
            # Simplify against the level-0 assignment.
            working = [
                l
                for l in clause
                if not (self._value(l) == FALSE and self._level[l >> 1] == 0)
            ]
        else:
            working = list(clause)

        record = _Clause(working, learned=False, cid=cid if cid is not None else -1)

        non_false = [l for l in working if self._value(l) != FALSE]
        if not non_false:
            # Conflicting at level 0: the database is unsatisfiable.
            self._ok = False
            if self._proof is not None:
                self._derive_empty(record)
            return cid
        if len(non_false) == 1 and self._value(non_false[0]) == UNASSIGNED:
            self._enqueue(non_false[0], record)
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                if self._proof is not None:
                    self._derive_empty(conflict)
            if len(working) > 1:
                self._clauses.append(record)
            return cid
        if len(working) == 1:
            # Single-literal clause already satisfied at level 0.
            return cid
        # Choose two non-false literals as watchers so propagation stays
        # complete even when earlier units already falsified some literals.
        self._move_to_front(working, non_false)
        self._attach(record)
        self._clauses.append(record)
        return cid

    def add_cnf(self, cnf: CNF) -> List[Optional[int]]:
        """Add every clause of a :class:`CNF`; returns their proof ids."""
        self._ensure_var(cnf.num_vars)
        return [self.add_clause(clause) for clause in cnf.clauses]

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> SolveResult:
        """Run the CDCL loop and return a :class:`SolveResult`."""
        self._model = {}
        self._core = ()
        if not self._ok:
            return self._result(False)
        for lit in assumptions:
            if lit == 0:
                raise SolverError("assumption literal cannot be zero")
            self._ensure_var(abs(lit))
        self._cancel_until(0)
        int_assumptions = [_internal(l) for l in assumptions]
        conflicts_at_start = self.conflicts
        restart_index = 0
        restart_budget = 64 * _luby(restart_index)
        conflicts_this_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                _work_cells()[0] += 1
                conflicts_this_restart += 1
                if self._decision_level() == 0:
                    if self._proof is not None:
                        self._derive_empty(conflict)
                    self._ok = False
                    return self._result(False)
                learned, backtrack_level, chain, lbd = self._analyze(conflict)
                self._cancel_until(backtrack_level)
                self._record_learned(learned, chain, lbd)
                self._decay_activities()
                if (
                    conflict_budget is not None
                    and self.conflicts - conflicts_at_start >= conflict_budget
                ):
                    self._cancel_until(0)
                    return self._result(None)
                if deadline is not None and deadline.expired:
                    self._cancel_until(0)
                    return self._result(None)
                if conflicts_this_restart >= restart_budget:
                    restart_index += 1
                    restart_budget = 64 * _luby(restart_index)
                    conflicts_this_restart = 0
                    self._cancel_until(0)
                continue

            if deadline is not None and deadline.expired:
                self._cancel_until(0)
                return self._result(None)

            if self._decision_level() < len(int_assumptions):
                # Place the next assumption as a pseudo-decision.
                ilit = int_assumptions[self._decision_level()]
                value = self._value(ilit)
                if value == TRUE:
                    self._new_decision_level()
                    continue
                if value == FALSE:
                    self._core = self._analyze_final(ilit, int_assumptions)
                    self._cancel_until(0)
                    return self._result(False)
                self._new_decision_level()
                self._enqueue(ilit, None)
                continue

            if self._proof is None and len(self._learnts) > self._reduce_base:
                self._reduce_db()

            ilit = self._pick_branch()
            if ilit is None:
                self._model = {
                    v: self._assigns[v] == TRUE for v in range(1, self._num_vars + 1)
                }
                self._cancel_until(0)
                return self._result(True)
            self.decisions += 1
            _work_cells()[1] += 1
            self._new_decision_level()
            self._enqueue(ilit, None)

    def model(self) -> Dict[int, bool]:
        """The satisfying assignment from the most recent SAT answer."""
        return dict(self._model)

    def model_value(self, lit: int) -> Optional[bool]:
        """Value of a DIMACS literal in the last model (``None`` if absent)."""
        var = abs(lit)
        if var not in self._model:
            return None
        value = self._model[var]
        return value if lit > 0 else not value

    def core(self) -> Tuple[int, ...]:
        """Failed assumptions responsible for the last UNSAT answer."""
        return self._core

    def proof(self) -> Proof:
        """The recorded resolution proof (requires ``proof=True``)."""
        if self._proof is None:
            raise SolverError("proof logging was not enabled")
        return self._proof

    # ----------------------------------------------------------- internals

    def _result(self, status: Optional[bool]) -> SolveResult:
        return SolveResult(
            status=status,
            model=dict(self._model),
            core=self._core,
            conflicts=self.conflicts,
            decisions=self.decisions,
            propagations=self.propagations,
        )

    def _new_cid(self, external_lits: List[int]) -> Optional[int]:
        if self._proof is not None:
            return self._proof.add_original(external_lits)
        cid = self._next_cid
        self._next_cid += 1
        return cid

    def _value(self, ilit: int) -> int:
        val = self._assigns[ilit >> 1]
        if val == UNASSIGNED:
            return UNASSIGNED
        return val ^ (ilit & 1)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _enqueue(self, ilit: int, reason: Optional[_Clause]) -> bool:
        value = self._value(ilit)
        if value != UNASSIGNED:
            return value == TRUE
        var = ilit >> 1
        self._assigns[var] = 1 ^ (ilit & 1)
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._phase[var] = not (ilit & 1)
        self._trail.append(ilit)
        return True

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for ilit in reversed(self._trail[boundary:]):
            var = ilit >> 1
            self._assigns[var] = UNASSIGNED
            self._reason[var] = None
            heappush(self._order_heap, (-self._activity[var], var))
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    @staticmethod
    def _move_to_front(working: List[int], non_false: List[int]) -> None:
        """Reorder ``working`` so two non-false literals occupy slots 0 and 1."""
        first, second = non_false[0], non_false[1]
        i = working.index(first)
        working[0], working[i] = working[i], working[0]
        j = working.index(second)
        working[1], working[j] = working[j], working[1]

    def _attach(self, clause: _Clause) -> None:
        lits = clause.lits
        if len(lits) == 2:
            self._bin_watches[lits[0] ^ 1].append((lits[1], clause))
            self._bin_watches[lits[1] ^ 1].append((lits[0], clause))
            return
        self._watches[lits[0] ^ 1].append(clause)
        self._watches[lits[1] ^ 1].append(clause)

    def _propagate(self) -> Optional[_Clause]:
        # The propagation loop is the solver's hot path: every container and
        # value test is kept local and inlined (no _value or _enqueue calls,
        # no attribute chasing), binary clauses are propagated from their own
        # immutable watch lists, and long-clause watcher lists are compacted
        # in place instead of being rebuilt.  ``propagations`` counts the
        # assignments this loop *enqueues* (derived facts), not the trail
        # literals it dequeues — decisions and assumptions are never counted.
        qhead = self._qhead
        trail = self._trail
        if qhead == len(trail):
            return None
        watches = self._watches
        bin_watches = self._bin_watches
        assigns = self._assigns
        levels = self._level
        reasons = self._reason
        phases = self._phase
        level = len(self._trail_lim)
        propagated = 0
        conflict: Optional[_Clause] = None
        while conflict is None and qhead < len(trail):
            ilit = trail[qhead]
            qhead += 1

            # Binary clauses: the other literal is unit unless already true.
            for other, clause in bin_watches[ilit]:
                other_val = assigns[other >> 1]
                if other_val < 0:
                    var = other >> 1
                    assigns[var] = 1 ^ (other & 1)
                    levels[var] = level
                    reasons[var] = clause
                    phases[var] = not (other & 1)
                    trail.append(other)
                    propagated += 1
                elif other_val == (other & 1):
                    conflict = clause
                    qhead = len(trail)
                    break
            if conflict is not None:
                break

            watch_list = watches[ilit]
            false_lit = ilit ^ 1
            i = j = 0
            count = len(watch_list)
            while i < count:
                clause = watch_list[i]
                i += 1
                lits = clause.lits
                if lits is None:
                    # Reduced away: lazy watcher cleanup drops the dead
                    # clause here instead of sweeping every watcher list
                    # at reduction time.
                    continue
                if lits[0] == false_lit:
                    lits[0] = lits[1]
                    lits[1] = false_lit
                first = lits[0]
                first_val = assigns[first >> 1]
                if first_val == 1 ^ (first & 1):
                    watch_list[j] = clause
                    j += 1
                    continue
                for k in range(2, len(lits)):
                    other = lits[k]
                    if assigns[other >> 1] != (other & 1):
                        # Not false: move the watch to this literal.
                        lits[1] = other
                        lits[k] = false_lit
                        watches[other ^ 1].append(clause)
                        break
                else:
                    watch_list[j] = clause
                    j += 1
                    if first_val == (first & 1):
                        # Every literal false: conflict.
                        while i < count:
                            watch_list[j] = watch_list[i]
                            j += 1
                            i += 1
                        conflict = clause
                        qhead = len(trail)
                        break
                    # Unit: enqueue (the inlined unassigned case of _enqueue).
                    var = first >> 1
                    assigns[var] = 1 ^ (first & 1)
                    levels[var] = level
                    reasons[var] = clause
                    phases[var] = not (first & 1)
                    trail.append(first)
                    propagated += 1
            del watch_list[j:]
        self._qhead = qhead
        self.propagations += propagated
        _work_cells()[2] += propagated
        return conflict

    def _analyze(
        self, conflict: _Clause
    ) -> Tuple[List[int], int, ResolutionChain, int]:
        """First-UIP conflict analysis.

        Returns the learned clause (asserting literal first), the backtrack
        level, the resolution chain when proof logging is enabled (level-0
        literals are resolved away so the chain reproduces the learned clause
        exactly) and the clause's literal-block distance (distinct decision
        levels among its literals, measured before backtracking).
        """
        learned: List[int] = [0]
        seen = self._seen
        counter = 0
        resolved_lit: Optional[int] = None
        clause: Optional[_Clause] = conflict
        index = len(self._trail) - 1
        chain = ResolutionChain(antecedents=[], pivots=[])
        zero_lits: Set[int] = set()
        if self._proof is not None:
            chain.antecedents.append(conflict.cid)

        while True:
            assert clause is not None
            if clause.learned:
                self._bump_clause(clause)
            for lit in clause.lits:
                if resolved_lit is not None and lit == resolved_lit:
                    continue
                var = lit >> 1
                if seen[var] or self._value(lit) == TRUE:
                    continue
                if self._level[var] == 0:
                    zero_lits.add(lit)
                    continue
                seen[var] = 1
                self._bump_var(var)
                if self._level[var] >= self._decision_level():
                    counter += 1
                else:
                    learned.append(lit)
            while not seen[self._trail[index] >> 1]:
                index -= 1
            resolved_lit = self._trail[index]
            index -= 1
            var = resolved_lit >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                learned[0] = _neg(resolved_lit)
                break
            clause = self._reason[var]
            if self._proof is not None:
                chain.antecedents.append(clause.cid)
                chain.pivots.append(var)

        for lit in learned[1:]:
            seen[lit >> 1] = 0

        if self._proof is not None and zero_lits:
            self._resolve_zero_literals(zero_lits, chain)

        if len(learned) == 1:
            backtrack_level = 0
        else:
            max_i = 1
            for i in range(2, len(learned)):
                if self._level[learned[i] >> 1] > self._level[learned[max_i] >> 1]:
                    max_i = i
            learned[1], learned[max_i] = learned[max_i], learned[1]
            backtrack_level = self._level[learned[1] >> 1]
        # LBD must be measured while the conflicting assignment is still in
        # place: after backtracking the levels of the learned literals are
        # stale.  Proof mode never reduces the database, so it skips the
        # (per-conflict) set build.
        lbd = 0
        if self._proof is None:
            levels = self._level
            lbd = len({levels[l >> 1] for l in learned})
        return learned, backtrack_level, chain, lbd

    def _resolve_zero_literals(self, zero_lits: Set[int], chain: ResolutionChain) -> None:
        """Extend a chain with resolutions eliminating level-0 literals."""
        pending = set(zero_lits)
        for ilit in reversed(self._trail):
            if not pending:
                break
            if _neg(ilit) not in pending:
                continue
            var = ilit >> 1
            reason = self._reason[var]
            pending.discard(_neg(ilit))
            if reason is None:
                continue
            for other in reason.lits:
                if (other >> 1) != var:
                    pending.add(other)
            chain.antecedents.append(reason.cid)
            chain.pivots.append(var)

    def _record_learned(
        self, learned: List[int], chain: ResolutionChain, lbd: int
    ) -> None:
        cid = -1
        if self._proof is not None:
            cid = self._proof.add_learned([_external(l) for l in learned], chain)
        clause = _Clause(learned, learned=True, cid=cid)
        clause.lbd = lbd
        if len(learned) == 1:
            self._learnts.append(clause)
            self._enqueue(learned[0], clause)
            return
        self._attach(clause)
        self._learnts.append(clause)
        self._bump_clause(clause)
        self._enqueue(learned[0], clause)

    def _analyze_final(self, failed: int, assumptions: List[int]) -> Tuple[int, ...]:
        """Compute a subset of assumptions implying the failed assumption."""
        assumption_set = set(assumptions)
        core: List[int] = [_external(failed)]
        stack = [_neg(failed)]
        visited: Set[int] = set()
        while stack:
            lit = stack.pop()
            var = lit >> 1
            if var in visited:
                continue
            visited.add(var)
            if self._level[var] == 0:
                continue
            reason = self._reason[var]
            true_lit = lit if self._value(lit) == TRUE else _neg(lit)
            if reason is None:
                if true_lit in assumption_set:
                    core.append(_external(true_lit))
                continue
            stack.extend(l for l in reason.lits if (l >> 1) != var)
        return tuple(dict.fromkeys(core))

    def _pick_branch(self) -> Optional[int]:
        while self._order_heap:
            _, var = heappop(self._order_heap)
            if self._assigns[var] == UNASSIGNED:
                return 2 * var + (0 if self._phase[var] else 1)
        for var in range(1, self._num_vars + 1):
            if self._assigns[var] == UNASSIGNED:
                return 2 * var + (0 if self._phase[var] else 1)
        return None

    def _bump_var(self, var: int) -> None:
        activity = self._activity
        activity[var] += self._var_inc
        if activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                activity[v] *= 1e-100
            self._var_inc *= 1e-100
        # Assigned variables are pushed by _cancel_until when they become
        # selectable again (with their then-current activity), so pushing here
        # would only add stale heap entries.
        if self._assigns[var] == UNASSIGNED:
            heappush(self._order_heap, (-activity[var], var))

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learnts:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        # Decay by growing the increment (one multiplication per conflict)
        # instead of rescaling stored activities.
        self._var_inc *= self._var_inc_growth
        self._cla_inc *= self._cla_inc_growth

    def _reduce_db(self) -> None:
        """LBD-based learned-clause reduction (glue and locked clauses stay).

        The learned clauses are ordered worst-first — highest literal-block
        distance, then lowest activity (stable, so insertion order breaks
        remaining ties) — and the worst half is discarded, except:

        * *glue* clauses (LBD <= ``GLUE_LBD``) survive unconditionally:
          they connect few decision levels and re-deriving them is what
          makes restarts expensive;
        * *locked* clauses (the reason of a currently assigned variable)
          survive — conflict analysis may still need them as antecedents;
        * binary clauses survive (their (other, clause) watch pairs live in
          the dedicated binary lists, which are never compacted — and a
          learned binary clause has LBD <= 2 anyway).

        Discarded clauses are only *marked* dead (``lits = None``); the
        watcher lists shed them lazily as propagation walks past (see
        :meth:`_propagate`), replacing the old eager sweep over every
        watcher list in the database.
        """
        reasons = self._reason
        for var in range(1, self._num_vars + 1):
            reason = reasons[var]
            if reason is not None and reason.learned:
                reason.locked = True
        learnts = self._learnts
        learnts.sort(key=lambda c: (-c.lbd, c.activity))
        half = len(learnts) // 2
        kept: List[_Clause] = []
        dropped = 0
        for i, clause in enumerate(learnts):
            if (
                i < half
                and clause.lbd > GLUE_LBD
                and not clause.locked
                and len(clause.lits) > 2
            ):
                clause.lits = None  # reaped lazily by _propagate
                dropped += 1
            else:
                kept.append(clause)
        for var in range(1, self._num_vars + 1):
            reason = reasons[var]
            if reason is not None and reason.learned:
                reason.locked = False
        if dropped:
            self._learnts = kept

    # -------------------------------------------------------------- proofs

    def _derive_empty(self, conflict: _Clause) -> None:
        """Derive the empty clause from a clause falsified at level 0."""
        if self._proof is None:
            return
        chain = ResolutionChain(antecedents=[conflict.cid], pivots=[])
        pending: Set[int] = set(conflict.lits)
        self._resolve_zero_literals(pending, chain)
        self._proof.set_empty_clause(chain)


class CKernelSolver:
    """The compiled-kernel substrate behind :func:`Solver`.

    The public surface mirrors :class:`PySolver` exactly (minus proof
    logging, which the factory routes to the pure path).  Clause hygiene —
    literal validation, tautology and duplicate elimination — happens here
    in Python so the error behaviour is byte-identical to the reference;
    the level-0 simplification, watcher bookkeeping and the entire search
    loop run inside :mod:`repro.sat._ckernel`.
    """

    proof_logging = False

    def __init__(self) -> None:
        if _ckernel is None:  # pragma: no cover - factory guards this
            raise SolverError("the compiled solver kernel is not available")
        self._c = _ckernel.Solver()
        self._num_vars = 0
        self._next_cid = 0
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self._model: Dict[int, bool] = {}
        self._core: Tuple[int, ...] = ()

    # ------------------------------------------------------------------ API

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def ok(self) -> bool:
        return bool(self._c.ok())

    @property
    def _reduce_base(self) -> int:
        # Test hook, mirroring PySolver._reduce_base (the learned-clause
        # count that triggers an LBD reduction).
        return self._c.get_reduce_base()

    @_reduce_base.setter
    def _reduce_base(self, value: int) -> None:
        self._c.set_reduce_base(value)

    def new_var(self) -> int:
        self._num_vars += 1
        self._c.ensure_vars(self._num_vars)
        return self._num_vars

    def _ensure_var(self, var: int) -> None:
        if var > self._num_vars:
            self._num_vars = var
            self._c.ensure_vars(var)

    def add_clause(self, lits: Iterable[int]) -> Optional[int]:
        """Add a clause; ``None`` for dropped tautologies (see PySolver)."""
        seen: Set[int] = set()
        clause: List[int] = []
        max_var = 0
        for lit in lits:
            if not isinstance(lit, int) or isinstance(lit, bool) or lit == 0:
                raise SolverError(f"invalid literal {lit!r}")
            var = lit if lit > 0 else -lit
            if var > max_var:
                max_var = var
            ilit = 2 * var + (1 if lit < 0 else 0)
            if ilit ^ 1 in seen:
                # The reference allocates variables while scanning, so a
                # dropped tautology still grows num_vars for the literals
                # scanned so far (including this one).
                self._ensure_var(max_var)
                return None  # tautology
            if ilit in seen:
                continue
            seen.add(ilit)
            clause.append(ilit)
        self._ensure_var(max_var)
        cid = self._next_cid
        self._next_cid += 1
        # Level-0 propagation triggered by the new clause counts as solver
        # work exactly like in-search propagation (the reference counts it
        # through the same _propagate loop).
        delta = self._c.add_clause(clause)
        self.propagations += delta
        _work_cells()[2] += delta
        return cid

    def add_cnf(self, cnf: CNF) -> List[Optional[int]]:
        self._ensure_var(cnf.num_vars)
        return [self.add_clause(clause) for clause in cnf.clauses]

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> SolveResult:
        self._model = {}
        self._core = ()
        int_assumptions: List[int] = []
        for lit in assumptions:
            if not isinstance(lit, int) or lit == 0:
                raise SolverError("assumption literal cannot be zero")
            var = lit if lit > 0 else -lit
            self._ensure_var(var)
            int_assumptions.append(2 * var + (1 if lit < 0 else 0))
        budget = -1 if conflict_budget is None else conflict_budget
        status, model, core, conflicts, decisions, propagations = self._c.solve(
            int_assumptions, budget, deadline
        )
        cells = _work_cells()
        cells[0] += conflicts - self.conflicts
        cells[1] += decisions - self.decisions
        cells[2] += propagations - self.propagations
        self.conflicts = conflicts
        self.decisions = decisions
        self.propagations = propagations
        if model is not None:
            self._model = model
        if core is not None:
            self._core = tuple(dict.fromkeys(core))
        return SolveResult(
            status=None if status < 0 else bool(status),
            model=dict(self._model),
            core=self._core,
            conflicts=conflicts,
            decisions=decisions,
            propagations=propagations,
        )

    def model(self) -> Dict[int, bool]:
        return dict(self._model)

    def model_value(self, lit: int) -> Optional[bool]:
        var = abs(lit)
        if var not in self._model:
            return None
        value = self._model[var]
        return value if lit > 0 else not value

    def core(self) -> Tuple[int, ...]:
        return self._core

    def proof(self) -> Proof:
        raise SolverError("proof logging was not enabled")


def Solver(proof: bool = False):
    """Construct a solver on the fastest substrate that fits the request.

    The compiled kernel (:class:`CKernelSolver`) is used when the optional
    :mod:`repro.sat._ckernel` extension imported successfully, unless

    * ``proof=True`` — proof logging (and the interpolation machinery on
      top of it) stays pure Python by design, or
    * ``STEP_PURE_PYTHON=1`` is set — the escape hatch for differential
      testing and for environments where a stale build is suspect.

    Both substrates are decision-for-decision identical, so the choice
    never changes a result — only how fast it arrives.
    """
    if proof or _ckernel is None or kernel_forced_pure():
        _count_solver_created("python")
        return PySolver(proof=proof)
    _count_solver_created("c")
    return CKernelSolver()


_SOLVERS_CREATED = None


def _count_solver_created(kernel: str) -> None:
    """Per-substrate creation counter + "which kernel is live" gauge."""
    global _SOLVERS_CREATED
    if _SOLVERS_CREATED is None:
        from repro.obs.registry import default_registry

        registry = default_registry()
        _SOLVERS_CREATED = (
            registry.counter(
                "repro_solvers_created_total",
                "solver instances constructed, by substrate",
            ),
            registry.gauge(
                "repro_solver_kernel_active",
                "1 for the substrate Solver() currently picks",
            ),
        )
    counter, gauge = _SOLVERS_CREATED
    counter.inc(kernel=kernel)
    gauge.set(1 if kernel == active_kernel_name() else 0, kernel=kernel)


def _luby(index: int) -> int:
    """The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, ... (0-based index)."""
    size = 1
    level = 0
    while size < index + 1:
        level += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        level -= 1
        index %= size
    return 1 << level


def solve_cnf(
    cnf: CNF,
    assumptions: Sequence[int] = (),
    conflict_budget: Optional[int] = None,
    deadline: Optional[Deadline] = None,
) -> SolveResult:
    """One-shot convenience wrapper: solve a :class:`CNF` formula."""
    solver = Solver()
    solver.add_cnf(cnf)
    return solver.solve(
        assumptions=assumptions, conflict_budget=conflict_budget, deadline=deadline
    )
