"""Minimal Unsatisfiable Subformula (MUS) extraction.

The STEP-MG baseline of the paper (Chen & Marques-Silva, VLSI-SoC'11)
derives variable partitions from *group-oriented* MUSes of the
bi-decomposition check formula: the relaxable equality constraints of each
input variable form a group, and a group-MUS identifies an irreducible set
of variables whose equalities must stay enforced.  This module provides the
required machinery on top of the assumption interface of the CDCL solver —
the role MUSer plays for the original tool:

* :class:`MusExtractor` — clause-level deletion-based MUS extraction.
* :class:`GroupMusExtractor` — group-level deletion-based MUS extraction
  with optional clause-set refinement from unsatisfiable cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SolverError
from repro.sat.cnf import CNF
from repro.sat.solver import Solver
from repro.utils.timer import Deadline


@dataclass
class MusStatistics:
    """Bookkeeping for MUS extraction (reported by the benchmark harness)."""

    sat_calls: int = 0
    initial_groups: int = 0
    final_groups: int = 0


class _AssumptionFramework:
    """Shared machinery: selector variables guard removable clause groups.

    Selector variables must not collide with problem variables, and groups
    may be registered incrementally (possibly introducing new problem
    variables), so the underlying solver is (re)built lazily on the first
    check after a modification, with selectors allocated above every problem
    variable seen so far.
    """

    def __init__(self, hard_clauses: Iterable[Sequence[int]], num_vars: int) -> None:
        self._hard: List[Tuple[int, ...]] = [tuple(c) for c in hard_clauses]
        self._declared_vars = num_vars
        self._groups: Dict[Hashable, List[Tuple[int, ...]]] = {}
        self._solver: Optional[Solver] = None
        self._selectors: Dict[Hashable, int] = {}
        self.stats = MusStatistics()

    def add_group(self, key: Hashable, clauses: Iterable[Sequence[int]]) -> None:
        if key in self._groups:
            raise SolverError(f"duplicate group key {key!r}")
        self._groups[key] = [tuple(clause) for clause in clauses]
        self._solver = None  # force a rebuild on the next check

    def _build(self) -> None:
        top = self._declared_vars
        for clause in self._hard:
            for lit in clause:
                top = max(top, abs(lit))
        for clauses in self._groups.values():
            for clause in clauses:
                for lit in clause:
                    top = max(top, abs(lit))
        self._solver = Solver()
        self._selectors = {}
        for clause in self._hard:
            self._solver.add_clause(clause)
        for key, clauses in self._groups.items():
            top += 1
            self._selectors[key] = top
            for clause in clauses:
                self._solver.add_clause(clause + (-top,))

    def check(
        self,
        active: Sequence[Hashable],
        deadline: Optional[Deadline] = None,
        conflict_budget: Optional[int] = None,
    ) -> Tuple[Optional[bool], List[Hashable]]:
        """SAT check with the given groups enabled; returns (status, core keys)."""
        if self._solver is None:
            self._build()
        self.stats.sat_calls += 1
        assumptions = [self._selectors[key] for key in active]
        result = self._solver.solve(
            assumptions=assumptions,
            deadline=deadline,
            conflict_budget=conflict_budget,
        )
        if result.status is not False:
            return result.status, []
        selector_to_key = {v: k for k, v in self._selectors.items()}
        core = [selector_to_key[lit] for lit in result.core if lit in selector_to_key]
        return False, core


class MusExtractor:
    """Deletion-based MUS extraction over individually removable clauses."""

    def __init__(
        self,
        soft_clauses: Sequence[Sequence[int]],
        hard_clauses: Iterable[Sequence[int]] = (),
        num_vars: int = 0,
    ) -> None:
        self._framework = _AssumptionFramework(hard_clauses, num_vars)
        self._keys: List[int] = []
        for index, clause in enumerate(soft_clauses):
            self._framework.add_group(index, [clause])
            self._keys.append(index)

    @property
    def stats(self) -> MusStatistics:
        return self._framework.stats

    def compute(self, deadline: Optional[Deadline] = None) -> List[int]:
        """Return indices of soft clauses forming a MUS.

        Requires the full soft+hard set to be unsatisfiable; raises
        :class:`SolverError` otherwise.
        """
        return _deletion_mus(self._framework, self._keys, deadline)


class GroupMusExtractor:
    """Deletion-based MUS extraction over named clause groups."""

    def __init__(self, hard_clauses: Iterable[Sequence[int]] = (), num_vars: int = 0) -> None:
        self._framework = _AssumptionFramework(hard_clauses, num_vars)
        self._keys: List[Hashable] = []

    @property
    def stats(self) -> MusStatistics:
        return self._framework.stats

    def add_group(self, key: Hashable, clauses: Iterable[Sequence[int]]) -> None:
        """Register a removable group of clauses under ``key``."""
        self._framework.add_group(key, clauses)
        self._keys.append(key)

    def compute(self, deadline: Optional[Deadline] = None) -> List[Hashable]:
        """Return the keys of a group-MUS (irreducible unsatisfiable subset)."""
        return _deletion_mus(self._framework, self._keys, deadline)

    def is_unsat_with(self, keys: Sequence[Hashable]) -> bool:
        """Check whether enabling exactly ``keys`` yields unsatisfiability."""
        status, _ = self._framework.check(keys)
        if status is None:
            raise SolverError("budget exhausted during group satisfiability check")
        return status is False


def _deletion_mus(
    framework: _AssumptionFramework,
    keys: Sequence[Hashable],
    deadline: Optional[Deadline],
) -> List[Hashable]:
    framework.stats.initial_groups = len(keys)
    status, core = framework.check(list(keys), deadline=deadline)
    if status is None:
        raise SolverError("budget exhausted before establishing unsatisfiability")
    if status is True:
        raise SolverError("the formula is satisfiable; no MUS exists")
    # Clause-set refinement: restrict attention to the reported core.
    working: List[Hashable] = list(core) if core else list(keys)

    index = 0
    while index < len(working):
        if deadline is not None and deadline.expired:
            break
        candidate = working[:index] + working[index + 1 :]
        status, core = framework.check(candidate, deadline=deadline)
        if status is False:
            # The removed group is unnecessary; also exploit the new core to
            # drop further groups when it is smaller.
            if core and len(core) < len(candidate):
                core_set = set(core)
                working = [k for k in candidate if k in core_set]
                index = 0
            else:
                working = candidate
        else:
            index += 1
    framework.stats.final_groups = len(working)
    return working
