"""Craig interpolation from resolution proofs (McMillan's system).

The original SAT-based bi-decomposition (Lee, Jiang & Hung, DAC'08) extracts
the decomposition functions ``fA`` and ``fB`` as Craig interpolants of the
refutation of the decomposability check: the check formula is split into an
``A`` part and a ``B`` part whose shared variables are exactly the inputs
allowed in the target sub-function, and the interpolant — a circuit over the
shared variables — *is* the sub-function.  The paper reuses that construction
on top of its QBF-derived partitions; :mod:`repro.core.extract` drives this
module to do the same.

Interpolants are constructed directly as AIG nodes so that the result plugs
straight into :class:`repro.aig.function.BooleanFunction`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.aig.aig import AIG, AigLiteral, FALSE_LIT, TRUE_LIT
from repro.errors import SolverError
from repro.sat.proof import LEARNED, ORIGINAL, Proof, ResolutionChain


class InterpolantBuilder:
    """Builds a McMillan interpolant for a refutation of ``A AND B``.

    Parameters
    ----------
    proof:
        A refutation recorded by :class:`repro.sat.solver.Solver`.
    a_clause_ids:
        Proof identifiers of the original clauses forming the ``A`` part;
        every other original clause is part of ``B``.
    aig / var_to_literal:
        Target AIG and a mapping from *shared* CNF variables to AIG literals.
        Shared variables are those occurring both in ``A`` and in ``B``
        clauses; each of them must be mapped.
    """

    def __init__(
        self,
        proof: Proof,
        a_clause_ids: Iterable[int],
        aig: AIG,
        var_to_literal: Mapping[int, AigLiteral],
    ) -> None:
        self.proof = proof
        self.a_ids: Set[int] = set(a_clause_ids)
        self.aig = aig
        self.var_to_literal = dict(var_to_literal)
        self._a_vars: Set[int] = set()
        self._b_vars: Set[int] = set()
        for clause in proof.original_clauses():
            variables = {abs(l) for l in clause.lits}
            if clause.cid in self.a_ids:
                self._a_vars |= variables
            else:
                self._b_vars |= variables
        self.shared_vars = self._a_vars & self._b_vars
        missing = self.shared_vars - set(self.var_to_literal)
        if missing:
            raise SolverError(
                f"no AIG literal provided for shared CNF variables {sorted(missing)}"
            )

    # -- labelling -----------------------------------------------------------------

    def _is_a_local(self, var: int) -> bool:
        return var in self._a_vars and var not in self._b_vars

    def _literal_aig(self, lit: int) -> AigLiteral:
        base = self.var_to_literal[abs(lit)]
        return base if lit > 0 else base ^ 1

    # -- interpolant computation ------------------------------------------------------

    def build(self) -> AigLiteral:
        """Compute the interpolant of the recorded refutation."""
        if not self.proof.has_refutation:
            raise SolverError("the proof does not contain a refutation")
        partial: Dict[int, AigLiteral] = {}
        for clause in self.proof:
            if clause.kind == ORIGINAL:
                partial[clause.cid] = self._leaf_interpolant(clause.cid, clause.lits)
            elif clause.kind == LEARNED:
                partial[clause.cid] = self._chain_interpolant(clause.chain, partial)
        return self._chain_interpolant(self.proof.empty_chain, partial)

    def _leaf_interpolant(self, cid: int, lits: Iterable[int]) -> AigLiteral:
        if cid in self.a_ids:
            shared_lits = [
                self._literal_aig(l) for l in lits if abs(l) in self.shared_vars
            ]
            return self.aig.lor_list(shared_lits) if shared_lits else FALSE_LIT
        return TRUE_LIT

    def _chain_interpolant(
        self, chain: ResolutionChain, partial: Dict[int, AigLiteral]
    ) -> AigLiteral:
        if not chain.antecedents:
            raise SolverError("empty resolution chain in proof")
        current = partial[chain.antecedents[0]]
        for cid, pivot in zip(chain.antecedents[1:], chain.pivots):
            other = partial[cid]
            if self._is_a_local(pivot):
                current = self.aig.lor(current, other)
            else:
                current = self.aig.add_and(current, other)
        return current


def interpolant(
    proof: Proof,
    a_clause_ids: Iterable[int],
    aig: AIG,
    var_to_literal: Mapping[int, AigLiteral],
) -> AigLiteral:
    """Convenience wrapper around :class:`InterpolantBuilder`."""
    return InterpolantBuilder(proof, a_clause_ids, aig, var_to_literal).build()
