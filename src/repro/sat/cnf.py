"""Conjunctive normal form containers and DIMACS serialisation.

Literals follow the DIMACS convention: a variable is a positive integer and
its negation is the corresponding negative integer.  Zero is never a valid
literal.  :class:`CNF` is a lightweight mutable container used to assemble
problem encodings before handing them to :class:`repro.sat.solver.Solver`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import CnfError, ParseError

Clause = Tuple[int, ...]


def check_literal(lit: int) -> int:
    """Validate a DIMACS literal (non-zero integer) and return it."""
    if not isinstance(lit, int) or isinstance(lit, bool) or lit == 0:
        raise CnfError(f"invalid literal: {lit!r}")
    return lit


def normalize_clause(lits: Iterable[int]) -> Clause | None:
    """Sort a clause, drop duplicate literals, detect tautologies.

    Returns ``None`` when the clause is a tautology (contains ``x`` and
    ``-x``), otherwise a tuple of distinct literals in ascending
    ``(var, sign)`` order.
    """
    seen = set()
    for lit in lits:
        check_literal(lit)
        if -lit in seen:
            return None
        seen.add(lit)
    return tuple(sorted(seen, key=lambda l: (abs(l), l < 0)))


class CNF:
    """A CNF formula: a clause list plus a variable counter.

    The variable counter grows monotonically; :meth:`new_var` hands out fresh
    variables for Tseitin encodings and cardinality networks, and
    :meth:`add_clause` bumps the counter when a clause mentions a larger
    variable than seen so far.
    """

    def __init__(self, num_vars: int = 0, clauses: Iterable[Iterable[int]] = ()) -> None:
        if num_vars < 0:
            raise CnfError("num_vars must be non-negative")
        self.num_vars = num_vars
        self.clauses: List[Clause] = []
        for clause in clauses:
            self.add_clause(clause)

    # -- construction -------------------------------------------------------

    def new_var(self) -> int:
        """Allocate and return a fresh variable."""
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables and return them in order."""
        if count < 0:
            raise CnfError("count must be non-negative")
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Iterable[int]) -> None:
        """Append a clause (a disjunction of DIMACS literals)."""
        clause = tuple(check_literal(l) for l in lits)
        for lit in clause:
            if abs(lit) > self.num_vars:
                self.num_vars = abs(lit)
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def add_unit(self, lit: int) -> None:
        self.add_clause((lit,))

    def extend(self, other: "CNF") -> None:
        """Append all clauses of ``other`` (variables are shared, not shifted)."""
        self.num_vars = max(self.num_vars, other.num_vars)
        self.clauses.extend(other.clauses)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def variables(self) -> set[int]:
        """The set of variables actually occurring in some clause."""
        return {abs(lit) for clause in self.clauses for lit in clause}

    def copy(self) -> "CNF":
        out = CNF(self.num_vars)
        out.clauses = list(self.clauses)
        return out

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Evaluate under a total assignment (mapping var -> bool)."""
        for clause in self.clauses:
            if not any(
                assignment[abs(lit)] if lit > 0 else not assignment[abs(lit)]
                for lit in clause
            ):
                return False
        return True

    # -- DIMACS --------------------------------------------------------------

    def to_dimacs(self) -> str:
        """Serialise to the standard DIMACS CNF text format."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str, filename: str = "<string>") -> "CNF":
        """Parse a DIMACS CNF string.

        The parser is liberal: clause literals may span multiple lines and
        the header clause count is not enforced, matching common solver
        behaviour.
        """
        cnf = cls()
        declared_vars = None
        pending: List[int] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ParseError("malformed problem line", filename, lineno)
                try:
                    declared_vars = int(parts[2])
                    int(parts[3])
                except ValueError as exc:
                    raise ParseError(f"malformed problem line: {exc}", filename, lineno)
                continue
            for token in line.split():
                try:
                    lit = int(token)
                except ValueError as exc:
                    raise ParseError(f"invalid literal {token!r}: {exc}", filename, lineno)
                if lit == 0:
                    cnf.add_clause(pending)
                    pending = []
                else:
                    pending.append(lit)
        if pending:
            cnf.add_clause(pending)
        if declared_vars is not None:
            cnf.num_vars = max(cnf.num_vars, declared_vars)
        return cnf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CNF(num_vars={self.num_vars}, num_clauses={len(self.clauses)})"
