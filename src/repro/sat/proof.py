"""Resolution proof recording.

When :class:`repro.sat.solver.Solver` runs with ``proof=True`` it records,
for every learned clause, the *resolution chain* that derives it: the
conflict clause followed by the reason clauses it was resolved against and
the pivot variables of those resolutions.  A refutation ends with a chain
deriving the empty clause.  :mod:`repro.sat.interpolate` replays these chains
to compute Craig interpolants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SolverError

ORIGINAL = "original"
LEARNED = "learned"


@dataclass
class ResolutionChain:
    """A linear resolution derivation.

    The derived clause is obtained by starting from ``antecedents[0]`` and
    resolving, in order, with ``antecedents[i + 1]`` on variable
    ``pivots[i]``.
    """

    antecedents: List[int] = field(default_factory=list)
    pivots: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.antecedents and len(self.pivots) != len(self.antecedents) - 1:
            # Chains are built incrementally by the solver; only fully built
            # chains satisfy the invariant, so the check happens in Proof.
            pass


@dataclass
class ProofClause:
    """A clause participating in a proof, with its provenance."""

    cid: int
    lits: Tuple[int, ...]
    kind: str
    chain: Optional[ResolutionChain] = None


class Proof:
    """A resolution proof: original clauses, learned clauses and chains."""

    def __init__(self) -> None:
        self._clauses: List[ProofClause] = []
        self._empty_chain: Optional[ResolutionChain] = None

    # -- construction (used by the solver) -----------------------------------

    def add_original(self, lits: Sequence[int]) -> int:
        cid = len(self._clauses)
        self._clauses.append(ProofClause(cid, tuple(lits), ORIGINAL))
        return cid

    def add_learned(self, lits: Sequence[int], chain: ResolutionChain) -> int:
        cid = len(self._clauses)
        self._clauses.append(ProofClause(cid, tuple(lits), LEARNED, chain))
        return cid

    def set_empty_clause(self, chain: ResolutionChain) -> None:
        self._empty_chain = chain

    # -- queries --------------------------------------------------------------

    @property
    def has_refutation(self) -> bool:
        return self._empty_chain is not None

    @property
    def empty_chain(self) -> ResolutionChain:
        if self._empty_chain is None:
            raise SolverError("the proof does not contain a refutation")
        return self._empty_chain

    def clause(self, cid: int) -> ProofClause:
        return self._clauses[cid]

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self):
        return iter(self._clauses)

    def original_clauses(self) -> List[ProofClause]:
        return [c for c in self._clauses if c.kind == ORIGINAL]

    def learned_clauses(self) -> List[ProofClause]:
        return [c for c in self._clauses if c.kind == LEARNED]

    # -- validation ------------------------------------------------------------

    def replay_chain(self, chain: ResolutionChain) -> Set[int]:
        """Replay a chain and return the derived clause as a literal set.

        Raises :class:`SolverError` if any resolution step is ill-formed
        (pivot missing from one of the operands).
        """
        if not chain.antecedents:
            raise SolverError("empty resolution chain")
        if len(chain.pivots) != len(chain.antecedents) - 1:
            raise SolverError("chain pivot/antecedent length mismatch")
        current: Set[int] = set(self._clauses[chain.antecedents[0]].lits)
        for cid, pivot in zip(chain.antecedents[1:], chain.pivots):
            other = set(self._clauses[cid].lits)
            current = resolve(current, other, pivot)
        return current

    def check(self) -> bool:
        """Verify every recorded chain, including the final refutation.

        Returns ``True`` when every learned clause is derived exactly by its
        chain and the empty-clause chain derives the empty clause.  Intended
        for tests; linear in the proof size.
        """
        for clause in self._clauses:
            if clause.kind != LEARNED:
                continue
            derived = self.replay_chain(clause.chain)
            if derived != set(clause.lits):
                raise SolverError(
                    f"chain of clause {clause.cid} derives {sorted(derived)} "
                    f"but the clause is {sorted(clause.lits)}"
                )
        if self._empty_chain is not None:
            derived = self.replay_chain(self._empty_chain)
            if derived:
                raise SolverError(
                    f"refutation chain derives {sorted(derived)}, not the empty clause"
                )
        return True


def resolve(clause_a: Set[int], clause_b: Set[int], pivot: int) -> Set[int]:
    """Resolve two clauses (literal sets) on ``pivot`` (a variable)."""
    if pivot in clause_a and -pivot in clause_b:
        positive, negative = clause_a, clause_b
    elif -pivot in clause_a and pivot in clause_b:
        positive, negative = clause_b, clause_a
    else:
        raise SolverError(f"pivot {pivot} does not occur with both polarities")
    result = (positive - {pivot}) | (negative - {-pivot})
    return result
