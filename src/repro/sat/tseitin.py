"""Clausal (Tseitin) encodings of Boolean gates.

Each function receives DIMACS literals and appends to a :class:`CNF` the
clauses asserting that the output literal is equivalent to the gate applied
to its inputs.  These encoders are the building blocks for translating AIGs
(:mod:`repro.aig.cnf`), the bi-decomposition matrix (formula (2) of the
paper) and the ``fN``/``fT`` constraint circuits into CNF.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sat.cnf import CNF, check_literal


def encode_and(cnf: CNF, out: int, inputs: Sequence[int]) -> None:
    """Assert ``out <-> AND(inputs)``.  An empty conjunction is true."""
    check_literal(out)
    inputs = [check_literal(l) for l in inputs]
    if not inputs:
        cnf.add_unit(out)
        return
    for lit in inputs:
        cnf.add_clause((-out, lit))
    cnf.add_clause(tuple(-lit for lit in inputs) + (out,))


def encode_or(cnf: CNF, out: int, inputs: Sequence[int]) -> None:
    """Assert ``out <-> OR(inputs)``.  An empty disjunction is false."""
    check_literal(out)
    inputs = [check_literal(l) for l in inputs]
    if not inputs:
        cnf.add_unit(-out)
        return
    for lit in inputs:
        cnf.add_clause((-lit, out))
    cnf.add_clause(tuple(inputs) + (-out,))


def encode_xor(cnf: CNF, out: int, a: int, b: int) -> None:
    """Assert ``out <-> a XOR b``."""
    check_literal(out)
    check_literal(a)
    check_literal(b)
    cnf.add_clause((-out, a, b))
    cnf.add_clause((-out, -a, -b))
    cnf.add_clause((out, -a, b))
    cnf.add_clause((out, a, -b))


def encode_equiv(cnf: CNF, a: int, b: int) -> None:
    """Assert ``a <-> b``."""
    check_literal(a)
    check_literal(b)
    cnf.add_clause((-a, b))
    cnf.add_clause((a, -b))


def encode_iff(cnf: CNF, out: int, a: int, b: int) -> None:
    """Assert ``out <-> (a <-> b)`` (an XNOR gate)."""
    encode_xor(cnf, out, a, -b)


def encode_ite(cnf: CNF, out: int, sel: int, then_lit: int, else_lit: int) -> None:
    """Assert ``out <-> (sel ? then_lit : else_lit)``."""
    for lit in (out, sel, then_lit, else_lit):
        check_literal(lit)
    cnf.add_clause((-sel, -then_lit, out))
    cnf.add_clause((-sel, then_lit, -out))
    cnf.add_clause((sel, -else_lit, out))
    cnf.add_clause((sel, else_lit, -out))
    # Redundant but propagation-strengthening clauses.
    cnf.add_clause((-then_lit, -else_lit, out))
    cnf.add_clause((then_lit, else_lit, -out))


def encode_implies(cnf: CNF, a: int, b: int) -> None:
    """Assert ``a -> b``."""
    check_literal(a)
    check_literal(b)
    cnf.add_clause((-a, b))


def encode_relaxed_equiv(cnf: CNF, a: int, b: int, relax: int) -> None:
    """Assert ``(a <-> b) OR relax`` — the paper's relaxation clauses.

    Formula (2) of the paper attaches a control variable to each pair of
    original/instantiated circuit inputs: when the control variable is false
    the two copies are forced equal, when it is true the equality is relaxed
    and the variable may differ between the copies.
    """
    check_literal(a)
    check_literal(b)
    check_literal(relax)
    cnf.add_clause((-a, b, relax))
    cnf.add_clause((a, -b, relax))
